//! The string-keyed scheme registry: one place that knows how to build
//! every routing scheme in the workspace.
//!
//! A [`SchemeRegistry`] maps CLI names to boxed
//! [`SchemeBuilder`]s. [`SchemeRegistry::with_defaults`] registers every
//! scheme the workspace implements end to end, under exactly the names the
//! harness binaries accept in their `--schemes` flags:
//!
//! | key | scheme | source |
//! |-----|--------|--------|
//! | `warmup` | the `(3+ε)` warm-up scheme | `routing-core` |
//! | `thm10` | Theorem 10, `(2+ε, 1)` (unweighted graphs) | `routing-core` |
//! | `thm11` | Theorem 11, `(5+ε)` | `routing-core` |
//! | `tz2` | Thorup–Zwick `(4k−5)`, `k = 2` (stretch 3) | `routing-baselines` |
//! | `tz3` | Thorup–Zwick `(4k−5)`, `k = 3` (stretch 7) | `routing-baselines` |
//! | `exact` | full-table shortest-path routing (stretch 1) | `routing-baselines` |
//! | `spanner` | full tables on a greedy 3-spanner | `routing-baselines` |
//! | `thm13` | Theorem 13, multilevel `(3+2/ℓ+ε, 2)` at `ℓ = 2` | `routing-core` |
//! | `thm15` | Theorem 15, multilevel `(3+2/ℓ+ε, 2)` at `ℓ = 4` | `routing-core` |
//! | `thm16k3` | Theorem 16, `(4k−7+ε)` at `k = 3` | `routing-baselines` |
//!
//! Registering a new scheme costs one [`SchemeBuilder`] implementation and
//! one [`SchemeRegistry::register`] call; every registry-driven binary
//! (`scaling`, `churn`, `table1`, …) then discovers it with no further
//! edits. The registry enforces the naming invariant the whole workspace
//! leans on — a built scheme's [`DynScheme::name`] equals its registry key
//! — at build time, so `--schemes` flags, harness output and registry keys
//! cannot drift apart.
//!
//! # Example
//!
//! ```
//! use compact_routing::registry::SchemeRegistry;
//! use compact_routing::core::BuildContext;
//! use compact_routing::graph::generators::{Family, WeightModel};
//! use compact_routing::model::simulate;
//! use compact_routing::graph::VertexId;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = Family::ErdosRenyi.generate(150, WeightModel::Unit, &mut rng);
//! let registry = SchemeRegistry::with_defaults();
//!
//! // Build by name; the result is a type-erased Box<dyn DynScheme>.
//! let ctx = BuildContext { seed: 13, threads: 1, ..BuildContext::default() };
//! let scheme = registry.build("warmup", &g, &ctx)?;
//! assert_eq!(scheme.name(), "warmup");
//!
//! // The erased scheme routes through the same simulator as typed ones.
//! let out = simulate(&g, scheme.as_ref(), VertexId(0), VertexId(149))?;
//! assert_eq!(out.destination(), VertexId(149));
//!
//! // Unknown names surface as BuildError::UnknownScheme, listing nothing.
//! assert!(registry.build("thm12", &g, &ctx).is_err());
//! # Ok(())
//! # }
//! ```

use routing_baselines::{ExactBuilder, SpannerBuilder, Thm16Builder, TzBuilder};
use routing_core::{
    BuildContext, BuildError, SchemeBuilder, Thm10Builder, Thm11Builder, Thm13Builder,
    Thm15Builder, WarmupBuilder,
};
use routing_graph::Graph;
use routing_model::DynScheme;

/// An ordered, string-keyed collection of [`SchemeBuilder`]s.
///
/// Iteration order is registration order, so `--schemes all` sweeps and
/// table rows come out in a stable, documented order.
#[derive(Default)]
pub struct SchemeRegistry {
    entries: Vec<Box<dyn SchemeBuilder>>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemeRegistry { entries: Vec::new() }
    }

    /// The default registry: every end-to-end scheme in the workspace,
    /// registered under its CLI name (see the module docs for the table).
    pub fn with_defaults() -> Self {
        let mut r = SchemeRegistry::new();
        r.register(Box::new(WarmupBuilder));
        r.register(Box::new(Thm10Builder));
        r.register(Box::new(Thm11Builder));
        r.register(Box::new(TzBuilder::new(2)));
        r.register(Box::new(TzBuilder::new(3)));
        r.register(Box::new(ExactBuilder));
        r.register(Box::new(SpannerBuilder::default()));
        // The Theorem 13/15/16 schemes are appended after the seed seven so
        // artifact rows produced by older registries keep their positions.
        r.register(Box::new(Thm13Builder));
        r.register(Box::new(Thm15Builder));
        r.register(Box::new(Thm16Builder::new(3)));
        r
    }

    /// Registers a builder under its [`SchemeBuilder::key`], replacing any
    /// previous builder with the same key (so applications can override a
    /// default registration).
    pub fn register(&mut self, builder: Box<dyn SchemeBuilder>) {
        if let Some(slot) = self.entries.iter_mut().find(|b| b.key() == builder.key()) {
            *slot = builder;
        } else {
            self.entries.push(builder);
        }
    }

    /// The builder registered under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&dyn SchemeBuilder> {
        self.entries.iter().find(|b| b.key() == key).map(Box::as_ref)
    }

    /// Whether a builder is registered under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// The registered keys, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|b| b.key()).collect()
    }

    /// Builds the scheme registered under `key` and verifies the naming
    /// invariant (built name == registry key).
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownScheme`] when no builder is registered under
    /// `key`; otherwise whatever the builder reports. A name/key mismatch
    /// is reported as [`BuildError::BadParameter`] — it means a registered
    /// builder violates the [`SchemeBuilder`] contract.
    pub fn build(
        &self,
        key: &str,
        g: &Graph,
        ctx: &BuildContext,
    ) -> Result<Box<dyn DynScheme>, BuildError> {
        let builder = self
            .get(key)
            .ok_or_else(|| BuildError::UnknownScheme { name: key.to_string() })?;
        // Applied here, once, for every builder — the worker-thread count is
        // dispatch policy, not per-scheme knowledge (and it never changes
        // what gets built, only wall-clock).
        ctx.apply_threads();
        let scheme = builder.build(g, ctx)?;
        if scheme.name() != key {
            return Err(BuildError::BadParameter {
                what: format!(
                    "registry invariant violated: builder {key:?} built a scheme named {:?}",
                    scheme.name()
                ),
            });
        }
        Ok(scheme)
    }
}

impl std::fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeRegistry").field("names", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::generators::{Family, WeightModel};

    #[test]
    fn default_registry_has_the_documented_names_in_order() {
        let r = SchemeRegistry::with_defaults();
        assert_eq!(
            r.names(),
            vec![
                "warmup", "thm10", "thm11", "tz2", "tz3", "exact", "spanner", "thm13", "thm15",
                "thm16k3"
            ]
        );
        assert!(r.contains("tz2"));
        assert!(r.contains("thm13"));
        assert!(!r.contains("thm14"));
        assert!(format!("{r:?}").contains("warmup"));
    }

    #[test]
    fn every_default_scheme_builds_and_is_named_after_its_key() {
        // Small unweighted instance: valid input for every registered
        // scheme, including thm10 (which rejects weighted graphs).
        let mut rng = StdRng::seed_from_u64(5);
        let g = Family::ErdosRenyi.generate(60, WeightModel::Unit, &mut rng);
        let r = SchemeRegistry::with_defaults();
        let ctx = BuildContext { seed: 9, threads: 1, ..BuildContext::default() };
        for key in r.names() {
            let scheme = r.build(key, &g, &ctx).unwrap_or_else(|e| panic!("{key}: {e}"));
            assert_eq!(scheme.name(), key);
            assert_eq!(scheme.n(), 60);
        }
    }

    #[test]
    fn unknown_keys_are_reported_as_unknown_scheme() {
        let r = SchemeRegistry::with_defaults();
        let g = routing_graph::generators::path(4);
        let err = r.build("thm12", &g, &BuildContext::default()).unwrap_err();
        assert!(matches!(err, BuildError::UnknownScheme { .. }));
        assert!(err.to_string().contains("thm12"));
    }

    #[test]
    fn re_registration_replaces_in_place() {
        let mut r = SchemeRegistry::with_defaults();
        let before: Vec<String> = r.names().iter().map(|s| s.to_string()).collect();
        // Override the spanner registration with a k=3 builder.
        r.register(Box::new(SpannerBuilder { k: 3 }));
        assert_eq!(r.names(), before, "overriding must not reorder or duplicate");
    }
}
