//! # compact-routing
//!
//! A reproduction of Roditty & Tov, *New routing techniques and their
//! applications* (PODC 2015), as a Rust workspace. This facade crate
//! re-exports the public API of the member crates so applications can depend
//! on a single crate:
//!
//! * [`par`] — the std-only scoped-thread executor every preprocessing
//!   phase fans out over (`set_threads` / `par_map`); results are
//!   bit-identical for every thread count.
//! * [`graph`] — graph substrate (CSR graphs with fixed ports, shortest
//!   paths, synthetic generators, exact APSP behind the
//!   [`graph::DistanceOracle`] trait, and the scalable
//!   [`graph::SampledDistances`] ground truth).
//! * [`model`] — the labeled fixed-port routing model: the
//!   [`model::RoutingScheme`] trait, the message simulator, and
//!   stretch/space statistics.
//! * [`tree`] — Lemma 3 tree routing.
//! * [`vicinity`] — vicinities `B(u, ℓ)`, hitting sets, colorings and
//!   Thorup–Zwick centers.
//! * [`core`] — the paper's techniques (Lemmas 7/8) and routing schemes
//!   (Theorems 10, 11, 13, 15, 16 plus the `(3+ε)` warm-up).
//! * [`baselines`] — Thorup–Zwick compact routing and distance oracles,
//!   exact routing, and greedy spanners, used as comparison points.
//! * [`churn`] — dynamic-churn workloads: seeded churn schedules, stale-table
//!   degradation measurement, and rebuild policies with cost accounting.
//! * [`registry`] — the string-keyed [`registry::SchemeRegistry`]: one
//!   `build(name, graph, ctx) -> Box<dyn DynScheme>` surface over every
//!   scheme above, the dispatch point of every harness binary.
//!
//! # Example
//!
//! ```
//! use compact_routing::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::erdos_renyi(150, 0.05, generators::WeightModel::Unit, &mut rng);
//! let scheme = SchemeThreePlusEps::build(&g, &Params::default(), &mut rng)?;
//! let out = simulate(&g, &scheme, VertexId(0), VertexId(149))?;
//! println!("routed over {} hops with weight {}", out.hops, out.weight);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod registry;

pub use routing_baselines as baselines;
pub use routing_churn as churn;
pub use routing_core as core;
pub use routing_graph as graph;
pub use routing_model as model;
pub use routing_par as par;
pub use routing_tree as tree;
pub use routing_vicinity as vicinity;

/// Convenient re-exports of the items most applications need.
pub mod prelude {
    pub use crate::registry::SchemeRegistry;
    pub use routing_churn::{
        run_churn, ChurnExperimentConfig, ChurnPlanConfig, RebuildPolicy, RemovalMode,
    };
    pub use routing_core::{
        BuildContext, BuildError, Params, SchemeBuilder, SchemeThreePlusEps,
    };
    pub use routing_graph::generators;
    pub use routing_graph::{
        DistanceOracle, Graph, GraphBuilder, SampledDistances, VertexId, Weight,
    };
    // `DynScheme` is deliberately *not* in the prelude: every scheme
    // implements both it and `RoutingScheme`, so importing both traits
    // makes plain method calls (`scheme.table_words(v)`) ambiguous. Method
    // calls on `Box<dyn DynScheme>` resolve without the trait in scope;
    // import `routing_model::DynScheme` explicitly where the trait itself
    // is named.
    pub use routing_model::{simulate, Decision, RouteError, RoutingScheme};
}
