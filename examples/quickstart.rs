//! Quickstart: build the paper's headline `(5+ε)`-stretch scheme on a small
//! weighted network, route a few messages, and compare against exact
//! distances.
//!
//! Run with: `cargo run --release --example quickstart`

use compact_routing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_core::SchemeFivePlusEps;
use routing_graph::apsp::DistanceMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // A weighted sparse random network with 400 routers.
    let g = generators::erdos_renyi(
        400,
        8.0 / 400.0,
        generators::WeightModel::Uniform { lo: 1, hi: 50 },
        &mut rng,
    );
    println!("network: {} routers, {} links", g.n(), g.m());

    // Preprocess the Theorem 11 scheme (5+eps stretch, ~n^{1/3} tables).
    let params = Params::with_epsilon(0.25);
    let scheme = SchemeFivePlusEps::build(&g, &params, &mut rng)?;
    let max_table = g.vertices().map(|v| scheme.table_words(v)).max().unwrap_or(0);
    println!(
        "preprocessed {}: largest routing table = {} words (n = {})",
        scheme.name(),
        max_table,
        g.n()
    );

    // Route a handful of messages and compare with exact distances.
    let exact = DistanceMatrix::new(&g);
    for (u, v) in [(0u32, 399u32), (17, 230), (255, 3), (101, 202)] {
        let (u, v) = (VertexId(u), VertexId(v));
        let out = simulate(&g, &scheme, u, v)?;
        let d = exact.dist(u, v).expect("connected");
        println!(
            "{u} -> {v}: routed weight {} over {} hops, exact distance {}, stretch {:.3}",
            out.weight,
            out.hops,
            d,
            out.weight as f64 / d as f64
        );
    }
    Ok(())
}
