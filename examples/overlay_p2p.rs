//! Scenario: routing in an unweighted peer-to-peer overlay with scale-free
//! degree structure (hubs and leaves). Uses the Theorem 10 `(2+ε, 1)` scheme
//! — the right choice when hop count is what matters and near-optimal paths
//! are required — and inspects the affine `(2+ε)·d + 1` guarantee directly.
//!
//! Run with: `cargo run --release --example overlay_p2p`

use compact_routing::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routing_core::SchemeTwoPlusEps;
use routing_graph::apsp::DistanceMatrix;
use routing_model::stats::StretchStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400;
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::barabasi_albert(n, 4, generators::WeightModel::Unit, &mut rng);
    println!("overlay: {} peers, {} connections", g.n(), g.m());

    let params = Params::with_epsilon(0.5);
    let scheme = SchemeTwoPlusEps::build(&g, &params, &mut rng)?;
    let exact = DistanceMatrix::new(&g);

    let mut stats = StretchStats::new();
    for _ in 0..5000 {
        let u = VertexId(rng.gen_range(0..n as u32));
        let v = VertexId(rng.gen_range(0..n as u32));
        if u == v {
            continue;
        }
        let out = simulate(&g, &scheme, u, v)?;
        stats.record(out.weight, exact.dist(u, v).expect("connected"));
    }
    println!(
        "routed {} lookups: mean stretch {:.3}, p95 {:.3}, worst {:.3}",
        stats.len(),
        stats.mean_multiplicative().unwrap_or(1.0),
        stats.percentile_multiplicative(95.0).unwrap_or(1.0),
        stats.max_multiplicative().unwrap_or(1.0)
    );
    println!(
        "affine guarantee (2+eps)d + 1 holds: {}",
        stats.check_affine_bound(2.0 + 2.0 * params.epsilon, 1.0)
    );
    println!(
        "fraction of lookups on an exactly shortest path: {:.1}%",
        100.0 * stats.fraction_exact().unwrap_or(0.0)
    );
    let max_table = g.vertices().map(|v| scheme.table_words(v)).max().unwrap_or(0);
    println!("largest per-peer table: {max_table} words (full tables would be {} words)", n - 1);
    Ok(())
}
