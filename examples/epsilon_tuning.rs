//! Scenario: choosing `ε`. The `1/ε` factor in the table bounds is the knob
//! an operator turns: smaller `ε` means longer stored sequences (more state)
//! and tighter paths. This example sweeps `ε` on a grid-like metro network
//! and prints the realized trade-off for the warm-up scheme.
//!
//! Run with: `cargo run --release --example epsilon_tuning`

use compact_routing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_core::SchemeThreePlusEps;
use routing_graph::apsp::DistanceMatrix;
use routing_model::eval::{evaluate, PairSelection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::grid(18, 18);
    println!("metro grid: {} stations, {} segments", g.n(), g.m());
    let exact = DistanceMatrix::new(&g);

    println!("{:>8} {:>12} {:>12} {:>10} {:>10}", "epsilon", "table max", "table mean", "max str", "mean str");
    for &eps in &[2.0, 1.0, 0.5, 0.25] {
        let mut rng = StdRng::seed_from_u64(5);
        let scheme = SchemeThreePlusEps::build(&g, &Params::with_epsilon(eps), &mut rng)?;
        let report = evaluate(&g, &scheme, &exact, PairSelection::Sampled(3000), &mut rng)?;
        println!(
            "{:>8} {:>12} {:>12.1} {:>10.3} {:>10.3}",
            eps,
            report.table.max(),
            report.table.mean(),
            report.stretch.max_multiplicative().unwrap_or(1.0),
            report.stretch.mean_multiplicative().unwrap_or(1.0)
        );
    }
    Ok(())
}
