//! Scenario: an ISP backbone. Geometric graphs model physically-laid fibre
//! (links exist between nearby points of presence, weights are latencies).
//! The example compares the table size a PoP router needs under the paper's
//! `(5+ε)` scheme, the warm-up `(3+ε)` scheme, the Thorup–Zwick baseline and
//! exact routing — the trade-off a network operator would actually look at.
//!
//! Run with: `cargo run --release --example isp_backbone`

use compact_routing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_baselines::{ExactScheme, TzRoutingScheme};
use routing_core::{SchemeFivePlusEps, SchemeThreePlusEps};
use routing_graph::apsp::DistanceMatrix;
use routing_model::eval::{evaluate, PairSelection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 350;
    let mut rng = StdRng::seed_from_u64(99);
    // Points of presence in a plane; link latency 1..40 ms.
    let g = generators::random_geometric(
        n,
        (10.0 / (std::f64::consts::PI * n as f64)).sqrt(),
        generators::WeightModel::Uniform { lo: 1, hi: 40 },
        &mut rng,
    );
    println!("backbone: {} PoPs, {} links", g.n(), g.m());
    let exact = DistanceMatrix::new(&g);
    let params = Params::with_epsilon(0.25);

    let thm11 = SchemeFivePlusEps::build(&g, &params, &mut rng)?;
    let warmup = SchemeThreePlusEps::build(&g, &params, &mut rng)?;
    let tz2 = TzRoutingScheme::build(&g, 2, &mut rng)?;
    let full = ExactScheme::build(&g)?;

    println!("{:<28} {:>10} {:>12} {:>10} {:>10}", "scheme", "max table", "mean table", "max str", "mean str");
    let show = |name: &str, report: routing_model::eval::EvalReport| {
        println!(
            "{:<28} {:>10} {:>12.1} {:>10.3} {:>10.3}",
            name,
            report.table.max(),
            report.table.mean(),
            report.stretch.max_multiplicative().unwrap_or(1.0),
            report.stretch.mean_multiplicative().unwrap_or(1.0)
        );
    };
    let sel = PairSelection::Sampled(3000);
    show("Thm 11 (5+eps)", evaluate(&g, &thm11, &exact, sel, &mut rng)?);
    show("warm-up (3+eps)", evaluate(&g, &warmup, &exact, sel, &mut rng)?);
    show("Thorup-Zwick k=2 (3)", evaluate(&g, &tz2, &exact, sel, &mut rng)?);
    show("exact shortest path", evaluate(&g, &full, &exact, sel, &mut rng)?);

    println!("\nreading: the 5+eps scheme trades a little stretch for per-PoP state far below the 3-stretch schemes, which is the paper's point.");
    Ok(())
}
