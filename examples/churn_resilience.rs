//! Churn resilience: what 8%-per-round node churn does to a deployed
//! Thorup–Zwick router, and what each rebuild policy buys back.
//!
//! The scheme's tables are built once on the base overlay; every round a
//! seeded churn process removes nodes (here: a targeted attack on the
//! highest-degree nodes, the adversary under which compact routing decays
//! fastest), lets some capacity rejoin, and flaps a few links. Messages are
//! then routed through the **stale** tables on the **mutated** overlay.
//!
//! Run with: `cargo run --release --example churn_resilience`

use compact_routing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_baselines::TzRoutingScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let g = generators::erdos_renyi_avg_degree(500, 8.0, generators::WeightModel::Unit, &mut rng);
    println!("overlay: {} nodes, {} links", g.n(), g.m());

    let plan = ChurnPlanConfig {
        rounds: 5,
        remove_frac: 0.08,
        add_frac: 0.5,
        edge_remove_frac: 0.02,
        edge_add_frac: 0.02,
        mode: RemovalMode::Targeted,
        seed: 42,
    };

    for policy in [
        RebuildPolicy::Never,
        RebuildPolicy::EveryK(2),
        RebuildPolicy::ReachabilityBelow(0.9),
    ] {
        let cfg = ChurnExperimentConfig { pairs_per_round: 1500, sources_per_round: 0, policy, seed: 7 };
        let result = run_churn(&g, &plan, &cfg, |g: &Graph| {
            let mut rng = StdRng::seed_from_u64(11);
            Ok(Box::new(TzRoutingScheme::build(g, 2, &mut rng)?) as _)
        })?;

        println!(
            "\npolicy {:<15} (initial build {:.0} ms)",
            result.policy, result.build_ms
        );
        for r in &result.rounds {
            println!(
                "  round {}: {:>3} nodes alive, reachability {:>5.1}%, mean stretch {:.3}{}",
                r.round,
                r.alive,
                100.0 * r.stale.reachability(),
                r.stale.stretch.mean_multiplicative().unwrap_or(1.0),
                if r.rebuilt {
                    format!(
                        " -> rebuilt on {} nodes in {:.0} ms, reachability back to {:.0}%",
                        r.post.as_ref().map_or(0, |p| p.n),
                        r.rebuild_ms,
                        100.0 * r.post.as_ref().map_or(0.0, |p| p.reachability),
                    )
                } else {
                    String::new()
                },
            );
        }
        println!(
            "  => final reachability {:.1}%, {} rebuilds costing {:.0} ms total",
            100.0 * result.final_reachability(),
            result.rebuild_count(),
            result.total_rebuild_ms(),
        );
    }
    Ok(())
}
