//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — implemented as a
//! straightforward wall-clock timer: each benchmark is warmed up once, then
//! run in timed batches, and the mean/min per-iteration times are printed.
//! There is no statistical analysis, plotting, or HTML report; the numbers
//! are honest `std::time::Instant` measurements suitable for relative
//! comparisons within one machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs one benchmark that receives a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, |b| f(b, input));
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier with a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }

    /// Creates an id carrying only a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { name: String::new(), param: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `payload`, collecting up to the configured number of samples or
    /// until the time budget runs out, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // One warm-up run (also primes caches and lazy statics).
        black_box(payload());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(payload());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size, measurement_time };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        smoke();
        let id = BenchmarkId::new("n", 10);
        assert_eq!(id.to_string(), "n/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
