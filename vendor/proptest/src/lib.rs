//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API surface this workspace's property tests use — the
//! [`proptest!`] macro with `pat in strategy` bindings and a
//! `#![proptest_config(...)]` header, [`Strategy`] with `prop_map`, range
//! and tuple strategies, and `prop_assert!`/`prop_assert_eq!` — running each
//! property over a deterministic, per-test seeded stream of cases instead
//! of the real crate's shrinking engine.
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a fixed seed derived from the test's name, so
//!   failures are always reproducible (there is no `PROPTEST_CASES`
//!   environment handling and no persistence file);
//! * there is no shrinking — the failing case's values are whatever the
//!   assertion message shows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod prelude;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// The deterministic generator driving each property (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream depends only on `name` (typically
    /// the test function's name), so every run draws the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut state: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

/// A generator of values for one property binding (mirrors proptest's
/// `Strategy`, without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// A strategy that always yields a clone of one value (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.uniform(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.uniform(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Asserts a condition inside a property (maps to `assert!`; real proptest
/// would instead record the failure for shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::sample_value(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_sample_in_bounds");
        for _ in 0..200 {
            let a = (3usize..9).sample_value(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1u64..=4).sample_value(&mut rng);
            assert!((1..=4).contains(&b));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::deterministic("tuples_and_map_compose");
        for _ in 0..100 {
            assert!(strat.sample_value(&mut rng) < 20);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: bindings, config, and prop_assert all work.
        #[test]
        fn macro_smoke(x in 0usize..50, (lo, hi) in (0u64..10, 10u64..20)) {
            prop_assert!(x < 50);
            prop_assert!(lo < hi);
            prop_assert_eq!(x, x);
        }
    }
}
