//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! workspace's `serde` stand-in without depending on `syn`/`quote` (the
//! build environment has no crates.io access). The item is parsed directly
//! from the `proc_macro` token stream; the supported shapes are exactly the
//! ones this workspace uses:
//!
//! * structs with named fields → `Value::Map` in declaration order,
//! * newtype structs → transparent (the inner value), matching serde,
//! * tuple structs with 2+ fields → `Value::Seq`,
//! * unit structs → `Value::Null`,
//! * enums → serde_json's externally tagged representation
//!   (`"Variant"` for unit variants, `{"Variant": ...}` otherwise).
//!
//! Generic types are intentionally unsupported (a clear compile-time panic
//! explains why); no workspace type needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __fields = ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}",
        item.name
    )
    .parse()
    .expect("serde_derive stub generated invalid Rust")
}

/// Derives the stand-in `serde::Deserialize` (an empty marker impl; nothing
/// in this workspace deserializes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

fn serialize_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{ty}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n")
        }
        VariantShape::Tuple(1) => format!(
            "{ty}::{vn}(__f0) => ::serde::Value::Map(::std::vec![({vn:?}.to_string(), \
             ::serde::Serialize::to_value(__f0))]),\n"
        ),
        VariantShape::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Value::Map(::std::vec![({vn:?}.to_string(), \
                 ::serde::Value::Seq(::std::vec![{}]))]),\n",
                binders.join(", "),
                items.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!("__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));\n")
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {} }} => {{\n let mut __fields = ::std::vec::Vec::new();\n \
                 {pushes}::serde::Value::Map(::std::vec![({vn:?}.to_string(), \
                 ::serde::Value::Map(__fields))])\n }},\n",
                fields.join(", ")
            )
        }
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type {name} is not supported; write a manual impl");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::TupleStruct(count_top_level_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item { name, shape: Shape::UnitStruct }
            }
            other => panic!("serde_derive stub: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive stub: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for a `{other}`"),
    }
}

/// Advances past leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the names in order.
/// Commas inside parenthesized types are invisible (they sit in a `Group`);
/// commas inside angle-bracket generics are skipped by depth counting.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:`, found {other}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple-struct body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Parses enum variants: `Name`, `Name(T, ...)`, or `Name { a: T, ... }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
