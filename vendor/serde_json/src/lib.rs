//! Offline stand-in for `serde_json`.
//!
//! Renders the stand-in `serde::Value` data model as JSON text, with the
//! same entry points this workspace uses from the real crate:
//! [`to_string`], [`to_string_pretty`], and an [`Error`] type.
//! Serialization through this path cannot actually fail (the data model is
//! already self-describing), so the `Result` return types exist purely for
//! signature compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. Kept for signature compatibility with the real
/// crate; the stand-in serializer never produces one.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization failed: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-readable JSON with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point or
                // exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&Wrapper(v)).unwrap(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::Int(-3)]))]);
        let s = to_string_pretty(&Wrapper(v)).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    -3\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
