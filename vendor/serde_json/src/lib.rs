//! Offline stand-in for `serde_json`.
//!
//! Renders the stand-in `serde::Value` data model as JSON text, with the
//! same entry points this workspace uses from the real crate:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and an [`Error`] type.
//! Serialization through this path cannot actually fail (the data model is
//! already self-describing), so those `Result` return types exist purely for
//! signature compatibility. Parsing ([`from_str`]) returns the untyped
//! [`Value`] tree — callers map it onto their structs by hand, since the
//! `serde::Deserialize` stand-in is a marker trait with no visitor machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-readable JSON with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point or
                // exponent so they round-trip as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Parses JSON text into the untyped [`Value`] tree.
///
/// Numbers without a fraction or exponent parse as [`Value::UInt`] /
/// [`Value::Int`]; everything else numeric parses as [`Value::Float`] —
/// matching what the serializer above emits, so values round-trip.
///
/// # Errors
///
/// Returns an [`Error`] naming the byte offset of the first syntax problem.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error { message: format!("{message} at byte {}", self.pos) }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by the
                            // serializer above; reject them rather than
                            // decode them wrongly.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&Wrapper(v)).unwrap(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::Int(-3)]))]);
        let s = to_string_pretty(&Wrapper(v)).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    -3\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("\"a\\nb\\u0041\"").unwrap(), Value::Str("a\nbA".into()));
    }

    #[test]
    fn parses_containers_and_accessors() {
        let v = from_str(r#"{"a": [1, null, {"b": "x"}], "c": -2.5}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(-2.5));
        let seq = v.get("a").and_then(Value::as_seq).unwrap();
        assert_eq!(seq[0].as_u64(), Some(1));
        assert!(seq[1].is_null());
        assert_eq!(seq[2].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_serializer_output() {
        let v = Value::Map(vec![
            ("kind".into(), Value::Str("scheme".into())),
            ("n".into(), Value::UInt(1000)),
            ("build_ms".into(), Value::Float(12.0)),
            ("scheme".into(), Value::Null),
            ("neg".into(), Value::Int(-3)),
            ("phases".into(), Value::Seq(vec![Value::Float(0.5)])),
        ]);
        let compact = to_string(&Wrapper(v.clone())).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&Wrapper(v.clone())).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
    }
}
