//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde this workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits usable in `#[derive(...)]` position, backed by a
//! small self-describing [`Value`] data model instead of serde's
//! serializer-visitor machinery. The companion `serde_json` stand-in renders
//! a [`Value`] as JSON text.
//!
//! The derive macros live in the `serde_derive` proc-macro crate and are
//! re-exported here, so `use serde::{Serialize, Deserialize}` works exactly
//! as with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the union of everything JSON can
/// express).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Seq(Vec<Value>),
    /// An object: ordered field-name/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`] by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean of a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any numeric variant widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// A non-negative integer variant as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can be converted into a [`Value`].
///
/// This replaces serde's `Serialize` trait; `#[derive(Serialize)]` generates
/// an implementation that maps structs to [`Value::Map`], newtype structs to
/// their transparent inner value, tuple structs to [`Value::Seq`], and enums
/// to the externally tagged representation serde_json uses.
pub trait Serialize {
    /// Converts `self` into the serialized data model.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`.
///
/// Deserialization is not exercised anywhere in this workspace; the derive
/// macro emits an empty implementation so that `#[derive(Deserialize)]`
/// compiles and trait bounds of the form `T: Deserialize` can be written.
pub trait Deserialize {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_values() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::Str("x".into()));
    }

    #[test]
    fn containers() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(Some(1u32).to_value(), Value::UInt(1));
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Seq(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u32, "a").to_value(),
            Value::Seq(vec![Value::UInt(1), Value::Str("a".into())])
        );
    }
}
