//! Sequence-related sampling helpers (`SliceRandom`).

use crate::{Rng, SampleRange};

/// Extension methods for slices: random element choice and in-place
/// Fisher–Yates shuffling.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Returns a uniformly chosen reference, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns a uniformly chosen mutable reference, or `None` for an empty
    /// slice.
    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_range(rng))
        }
    }

    fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_range(rng);
            self.get_mut(i)
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_range(rng);
            self.swap(i, j);
        }
    }
}
