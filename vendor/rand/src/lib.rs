//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate reimplements exactly the API subset the workspace uses, with
//! the same module layout (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`, `rand::seq::SliceRandom`). All generators are
//! deterministic given their seed — the only property the experiment
//! harness and tests rely on. The core generator is xoshiro256++ seeded via
//! SplitMix64, which is statistically strong enough for synthetic-graph
//! generation and sampling (it is the same construction the real `rand`
//! crate's small RNGs use).
//!
//! Nothing here is cryptographic and nothing claims stream compatibility
//! with the real `rand` crate; seeds produce self-consistent, reproducible
//! streams within this workspace only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real `rand` crate).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (the `SampleRange` trait of the real
/// `rand` crate).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform value in `0..span` (`span > 0`) via Lemire-style widening
/// multiplication, which avoids the modulo bias of naive reduction.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T` (e.g.
    /// `rng.gen::<f64>()` for a uniform draw in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
