//! A minimal, std-only parallel executor for the embarrassingly parallel
//! fan-outs of the preprocessing phases: per-source Dijkstra runs, per-vertex
//! ball searches, per-landmark tree constructions.
//!
//! # Design
//!
//! The executor is deliberately *not* a work-stealing runtime. Every
//! [`par_map_index`] call spawns scoped threads ([`std::thread::scope`]) that
//! claim contiguous index chunks from a shared atomic counter and run the
//! user's closure on each index. Chunked claiming gives dynamic load
//! balancing (a thread that drew cheap vertices simply claims the next chunk)
//! without queues, channels, or vendored dependencies — the work items here
//! are individual graph searches costing `O(m + n log n)` each, so the cost
//! of one `fetch_add` per chunk is noise.
//!
//! # Determinism
//!
//! Results are always assembled **in index order**, so for a pure closure the
//! output is byte-for-byte identical to the sequential
//! `(0..n).map(f).collect()` regardless of the thread count. This is the
//! invariant the scheme builders rely on: a table built with `--threads 8`
//! must be *bit-identical* to one built with `--threads 1` for the same seed
//! (randomness never crosses a thread boundary — sampling happens on the
//! caller's thread, only deterministic searches fan out). The property tests
//! in `tests/properties.rs` assert exactly this.
//!
//! # Configuring the thread count
//!
//! The executor reads a process-wide thread count ([`threads`]) that
//! defaults to [`available_threads`] (the hardware parallelism) and can be
//! overridden with [`set_threads`] — the `--threads` flag of the experiment
//! binaries does just that. `threads() == 1` bypasses spawning entirely and
//! runs the closure on the calling thread, so single-threaded runs have zero
//! executor overhead.
//!
//! # Example
//!
//! ```
//! // Square the numbers 0..1000 on all available cores.
//! let squares = routing_par::par_map_index(1000, |i| i * i);
//! assert_eq!(squares[31], 961);
//! // Identical to the sequential result, whatever the thread count.
//! assert_eq!(squares, (0..1000).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread count; `0` means "not set, use hardware parallelism".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Observer hooks around the parallel fan-out, for telemetry layers that
/// need to attribute worker-thread work back to the caller (the span
/// profiler in `routing-obs` aggregates each worker's span tree under the
/// span open at the fork site).
///
/// Plain `fn` pointers, not trait objects: `routing-obs` depends on this
/// crate, so the hooks must be registered without this crate knowing any
/// observer type — and a `fn` call on the uninstalled `None` path costs one
/// `OnceLock` load per `par_map_*` call, nothing per work item.
#[derive(Clone, Copy)]
pub struct ParHooks {
    /// Called once on the caller's thread before workers spawn; the
    /// returned token is handed to every worker's `worker_start`.
    pub fork: fn() -> u64,
    /// Called on each worker thread before it claims work.
    pub worker_start: fn(u64),
    /// Called on each worker thread after its last chunk, before the scope
    /// joins it (the observer's last chance to flush thread-local state).
    pub worker_end: fn(),
    /// Called once on the caller's thread at fork time: a human-readable
    /// name for the fork site (e.g. the open span path in the profiler),
    /// used to attribute worker panics. `None` when the observer has no
    /// name to offer — the executor then falls back to the caller's
    /// source location.
    pub fork_name: fn() -> Option<String>,
}

static HOOKS: OnceLock<ParHooks> = OnceLock::new();

/// Registers the process-wide [`ParHooks`]. The first registration wins
/// (returns `true`); later calls are ignored (`false`) — hooks are a
/// process-lifetime observer, not a swappable strategy.
pub fn set_par_hooks(hooks: ParHooks) -> bool {
    HOOKS.set(hooks).is_ok()
}

/// The parallelism the hardware offers ([`std::thread::available_parallelism`]),
/// falling back to 1 when the platform cannot report it.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Sets the process-wide thread count used by [`par_map_index`] and
/// [`par_map`]. Values are clamped to at least 1; `set_threads(1)` forces
/// fully sequential execution.
///
/// Because the computations dispatched through this crate are deterministic
/// in their inputs, changing the thread count never changes any result —
/// only wall-clock time.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The currently configured thread count: the last [`set_threads`] value, or
/// [`available_threads`] if never set.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => available_threads(),
        n => n,
    }
}

/// Applies `f` to every index in `0..n` and returns the results in index
/// order, fanning the work out over [`threads`] scoped threads.
///
/// Equivalent to `(0..n).map(f).collect()` — including byte-for-byte when
/// `f` is pure — but wall-clock scales with the core count. Panics in `f`
/// propagate to the caller (the scope re-raises them on join).
#[track_caller]
pub fn par_map_index<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_index_with(threads(), n, f)
}

/// [`par_map_index`] with an explicit thread count, ignoring the global
/// setting. Used by the scaling harness to compare `threads=1` against
/// `threads=T` inside one process without racing on the global.
#[track_caller]
pub fn par_map_index_with<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // The scratch executor with a unit scratch — one chunk-claiming loop to
    // maintain instead of two.
    par_map_scratch_with(threads, n, || (), |_, i| f(i))
}

/// Applies `f` to every element of `items` in parallel, returning results in
/// input order. See [`par_map_index`] for the determinism guarantee.
#[track_caller]
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_index(items.len(), |i| f(&items[i]))
}

/// [`par_map_index`] with a per-worker scratch workspace: every worker calls
/// `init()` **once** and then reuses that value across all the indices it
/// processes, passing it to `f` by mutable reference.
///
/// This is the fan-out primitive of the allocation-free search kernel: a
/// worker builds one `SearchScratch` (a few `O(n)` arrays plus a heap) and
/// amortizes it over its whole share of the work items, instead of paying
/// the allocation per item. `threads() == 1` runs on the calling thread with
/// a single scratch and zero executor overhead.
///
/// Determinism: results are assembled in index order exactly like
/// [`par_map_index`], so as long as `f(scratch, i)` returns the same value
/// for every (freshly initialized or reused) scratch — which epoch-stamped
/// workspaces guarantee — the output is byte-for-byte identical to the
/// sequential `(0..n).map(...)` for every thread count.
#[track_caller]
pub fn par_map_scratch<S, U, I, F>(n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    par_map_scratch_with(threads(), n, init, f)
}

/// [`par_map_scratch`] with an explicit thread count, ignoring the global
/// setting (the harness uses this to compare `threads=1` against
/// `threads=T` inside one process).
#[track_caller]
pub fn par_map_scratch_with<S, U, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let caller = std::panic::Location::caller();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    // Small chunks give load balancing; 8 chunks per worker keeps the tail
    // short while bounding claim traffic to O(workers) atomic ops.
    let chunk = n.div_ceil(workers * 8).max(1);
    let counter = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    // Telemetry hooks: fork on the caller's thread (captures its context
    // into a token), start/end on each worker. One OnceLock load per
    // par-call when no observer is installed.
    let hooks = HOOKS.get();
    let fork_token = hooks.map_or(0, |h| (h.fork)());
    // Fork-site name for panic attribution: the observer's span path when
    // one is open, else the caller's source location (via #[track_caller]).
    let fork_name = hooks.and_then(|h| (h.fork_name)());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    if let Some(h) = hooks {
                        (h.worker_start)(fork_token);
                    }
                    let mut scratch = init();
                    let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = counter.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        local.push((start, (start..end).map(|i| f(&mut scratch, i)).collect()));
                    }
                    // Poison-tolerant: the Vec under the mutex is never left
                    // half-updated (extend appends whole chunks), and a
                    // panicked sibling is re-raised below anyway.
                    done.lock().unwrap_or_else(|p| p.into_inner()).extend(local);
                    if let Some(h) = hooks {
                        (h.worker_end)();
                    }
                })
            })
            .collect();
        // Explicit joins so a worker panic is re-raised *named*: the bare
        // scope join would propagate an anonymous "scoped thread panicked".
        for handle in handles {
            if let Err(payload) = handle.join() {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let site = fork_name.clone().unwrap_or_else(|| caller.to_string());
                // lint:allow(panic-budget): deliberate propagation — a worker panic must surface at the fork site, now attributably
                panic!("worker panicked at fork site `{site}`: {detail}");
            }
        }
    });
    let mut chunks = done.into_inner().unwrap_or_else(|p| p.into_inner());
    chunks.sort_unstable_by_key(|&(start, _)| start);
    debug_assert_eq!(chunks.iter().map(|(_, c)| c.len()).sum::<usize>(), n);
    let mut out = Vec::with_capacity(n);
    for (_, mut c) in chunks {
        out.append(&mut c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let expect: Vec<usize> = (0..997).map(|i| i * 7 + 3).collect();
        for t in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_index_with(t, 997, |i| i * 7 + 3), expect, "threads={t}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(par_map_index_with(8, 0, |i| i).is_empty());
        assert_eq!(par_map_index_with(8, 1, |i| i + 1), vec![1]);
        assert_eq!(par_map_index_with(8, 2, |i| i), vec![0, 1]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<String> = (0..100).map(|i| format!("v{i}")).collect();
        let lens = par_map(&items, |s| s.len());
        assert_eq!(lens[0], 2);
        assert_eq!(lens[10], 3);
        assert_eq!(lens.len(), 100);
    }

    #[test]
    fn global_thread_count_round_trips() {
        // Other tests in this binary do not touch the global, so this is
        // race-free in practice; results are thread-count independent anyway.
        let before = threads();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0); // clamps to 1
        assert_eq!(threads(), 1);
        set_threads(before);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn scratch_reuse_matches_sequential_for_every_thread_count() {
        // The scratch counts how many items this worker has processed; the
        // result must not depend on it (mirroring how an epoch-stamped
        // search workspace keeps results independent of reuse).
        let expect: Vec<usize> = (0..503).map(|i| i * 3 + 1).collect();
        for t in [1, 2, 4, 16] {
            let out = par_map_scratch_with(
                t,
                503,
                || 0usize,
                |seen, i| {
                    *seen += 1;
                    assert!(*seen >= 1);
                    i * 3 + 1
                },
            );
            assert_eq!(out, expect, "threads={t}");
        }
    }

    #[test]
    fn scratch_init_runs_once_per_worker_sequentially() {
        let inits = AtomicUsize::new(0);
        let out = par_map_scratch_with(
            1,
            100,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i| i,
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(out.len(), 100);
        assert!(par_map_scratch_with(4, 0, || 0, |_: &mut i32, i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "worker panicked at fork site")]
    fn worker_panics_propagate() {
        let _ = par_map_index_with(4, 64, |i| {
            if i == 33 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_payload_is_preserved_in_message() {
        let _ = par_map_index_with(2, 16, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn fork_site_names_the_caller_location_without_hooks() {
        // No observer hooks installed in this test binary, so the fork-site
        // name must fall back to this file's #[track_caller] location.
        let result = std::panic::catch_unwind(|| {
            let _ = par_map_index_with(2, 8, |i| {
                if i == 3 {
                    panic!("kapow");
                }
                i
            });
        });
        let payload = result.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("renamed panic carries a String payload");
        assert!(msg.contains("fork site"), "{msg}");
        assert!(msg.contains("lib.rs"), "fallback names the caller file: {msg}");
        assert!(msg.contains("kapow"), "original payload preserved: {msg}");
    }
}
