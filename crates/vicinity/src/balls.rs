//! Vertex vicinities `B(u, ℓ)` and the Lemma 2 ball router.
//!
//! Every vertex stores, for each of its `ℓ` closest vertices `v`, the first
//! edge (as a port) of a shortest path towards `v`. Property 1 (if
//! `v ∈ B(u, ℓ)` and `w` lies on a shortest `u`–`v` path then `v ∈ B(w, ℓ)`)
//! guarantees that greedily following these first edges delivers the message
//! on a shortest path — this is Lemma 2 of the paper and the building block
//! of both new routing techniques.

use std::collections::HashMap;

use routing_graph::shortest_path::{ball, Ball};
use routing_graph::{Graph, Port, VertexId, Weight};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};

/// The balls `B(u, ℓ)` of every vertex, with the routing information of
/// Lemma 2 (first-hop port towards every member).
#[derive(Debug, Clone)]
pub struct BallTable {
    ell: usize,
    balls: Vec<Ball>,
    /// `ports[u][v]` = port at `u` on a shortest path towards ball member `v`.
    ports: Vec<HashMap<VertexId, Port>>,
}

impl BallTable {
    /// Computes `B(u, ℓ)` for every vertex `u` of `g`, together with the
    /// first-hop ports Lemma 2 stores. The per-vertex ball searches are
    /// independent, so they fan out over [`routing_par::threads`] threads;
    /// the resulting table is identical for every thread count.
    pub fn build(g: &Graph, ell: usize) -> Self {
        let per_vertex: Vec<(Ball, HashMap<VertexId, Port>)> =
            routing_par::par_map_index(g.n(), |i| {
                let u = VertexId(i as u32);
                let b = ball(g, u, ell);
                let mut port_map = HashMap::with_capacity(b.len());
                for &(v, _) in b.members() {
                    if v == u {
                        continue;
                    }
                    let hop = b.first_hop(v).expect("non-center members have a first hop");
                    let port = g.port_to(u, hop).expect("first hop is a neighbour");
                    port_map.insert(v, port);
                }
                (b, port_map)
            });
        let mut balls = Vec::with_capacity(g.n());
        let mut ports = Vec::with_capacity(g.n());
        for (b, port_map) in per_vertex {
            balls.push(b);
            ports.push(port_map);
        }
        BallTable { ell, balls, ports }
    }

    /// The ball size parameter `ℓ` the table was built with.
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// The ball of `u`.
    pub fn ball(&self, u: VertexId) -> &Ball {
        &self.balls[u.index()]
    }

    /// Returns true if `v ∈ B(u, ℓ)`.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.balls[u.index()].contains(v)
    }

    /// Distance from `u` to `v` if `v ∈ B(u, ℓ)`.
    pub fn dist(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.balls[u.index()].dist_to(v)
    }

    /// The first hop of a shortest path from `u` to `v`, if `v ∈ B(u, ℓ)`
    /// and `v != u`.
    pub fn first_hop(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        self.balls[u.index()].first_hop(v)
    }

    /// The port at `u` on a shortest path towards ball member `v`.
    pub fn first_port(&self, u: VertexId, v: VertexId) -> Option<Port> {
        self.ports[u.index()].get(&v).copied()
    }

    /// The space Lemma 2 charges to `u`, in `O(log n)`-bit words: one id, one
    /// distance and one port word per ball member other than `u` itself.
    pub fn words_at(&self, u: VertexId) -> usize {
        3 * (self.balls[u.index()].len().saturating_sub(1))
    }

    /// Number of vertices covered by the table.
    pub fn len(&self) -> usize {
        self.balls.len()
    }

    /// True if the table covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty()
    }
}

/// The standalone Lemma 2 routing scheme: routes exactly (stretch 1) between
/// any `u` and any `v ∈ B(u, ℓ)`, and reports an error for destinations
/// outside the source's ball.
///
/// The full schemes of the paper embed the same tables; this standalone
/// wrapper exists so Lemma 2 can be tested and benchmarked in isolation.
#[derive(Debug, Clone)]
pub struct BallRoutingScheme {
    name: String,
    table: BallTable,
    n: usize,
}

impl BallRoutingScheme {
    /// Builds the scheme with balls of size `ℓ`.
    pub fn new(g: &Graph, ell: usize) -> Self {
        BallRoutingScheme {
            name: format!("ball-routing(l={ell})"),
            table: BallTable::build(g, ell),
            n: g.n(),
        }
    }

    /// Access to the underlying ball table.
    pub fn table(&self) -> &BallTable {
        &self.table
    }
}

/// Header for ball routing: nothing needs to be carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallHeader;

impl HeaderSize for BallHeader {
    fn words(&self) -> usize {
        0
    }
}

impl RoutingScheme for BallRoutingScheme {
    type Label = VertexId;
    type Header = BallHeader;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> VertexId {
        v
    }

    fn init_header(&self, source: VertexId, dest: &VertexId) -> Result<BallHeader, RouteError> {
        if source != *dest && !self.table.contains(source, *dest) {
            return Err(RouteError::MissingInformation {
                at: source,
                what: format!("{dest} is outside B({source}, {})", self.table.ell()),
            });
        }
        Ok(BallHeader)
    }

    fn decide(
        &self,
        at: VertexId,
        _header: &mut BallHeader,
        dest: &VertexId,
    ) -> Result<Decision, RouteError> {
        if at == *dest {
            return Ok(Decision::Deliver);
        }
        self.table
            .first_port(at, *dest)
            .map(Decision::Forward)
            .ok_or_else(|| RouteError::MissingInformation {
                at,
                what: format!("{dest} is outside B({at}, {}) during forwarding", self.table.ell()),
            })
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.table.words_at(v)
    }

    fn label_words(&self, _v: VertexId) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::generators;
    use routing_graph::shortest_path::dijkstra;
    use routing_model::simulate;

    #[test]
    fn ball_table_membership_and_first_hops() {
        let g = generators::grid(5, 5);
        let t = BallTable::build(&g, 6);
        assert_eq!(t.len(), 25);
        assert!(!t.is_empty());
        assert_eq!(t.ell(), 6);
        for u in g.vertices() {
            assert!(t.contains(u, u));
            assert_eq!(t.ball(u).len(), 6);
            assert_eq!(t.words_at(u), 15);
            for &(v, d) in t.ball(u).members() {
                assert_eq!(t.dist(u, v), Some(d));
                if v != u {
                    let hop = t.first_hop(u, v).unwrap();
                    assert!(g.has_edge(u, hop));
                    let port = t.first_port(u, v).unwrap();
                    assert_eq!(g.neighbor_at(u, port).to, hop);
                }
            }
        }
    }

    #[test]
    fn property_1_holds_with_tie_breaking() {
        // Property 1: v in B(u, l) and w on a shortest u-v path => v in B(w, l).
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::erdos_renyi(70, 0.08, generators::WeightModel::Unit, &mut rng);
        let ell = 9;
        let t = BallTable::build(&g, ell);
        for u in g.vertices() {
            let sp = dijkstra(&g, u);
            for &(v, _) in t.ball(u).members() {
                if v == u {
                    continue;
                }
                for w in sp.path_to(v).unwrap() {
                    assert!(
                        t.contains(w, v),
                        "property 1 violated: {v} in B({u}) but not in B({w})"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_2_routes_on_shortest_paths() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(
            60,
            0.07,
            generators::WeightModel::Uniform { lo: 1, hi: 5 },
            &mut rng,
        );
        let scheme = BallRoutingScheme::new(&g, 12);
        for u in g.vertices() {
            let sp = dijkstra(&g, u);
            for &(v, d) in scheme.table().ball(u).members().to_vec().iter() {
                let out = simulate(&g, &scheme, u, v).unwrap();
                assert_eq!(out.weight, d, "ball routing must be exact");
                assert_eq!(Some(out.weight), sp.dist(v));
            }
        }
    }

    #[test]
    fn destinations_outside_the_ball_are_rejected() {
        let g = generators::path(30);
        let scheme = BallRoutingScheme::new(&g, 3);
        let err = simulate(&g, &scheme, VertexId(0), VertexId(29)).unwrap_err();
        assert!(matches!(err, RouteError::MissingInformation { .. }));
    }

    #[test]
    fn scheme_reports_sizes() {
        let g = generators::cycle(12);
        let scheme = BallRoutingScheme::new(&g, 5);
        assert_eq!(RoutingScheme::n(&scheme), 12);
        assert!(scheme.name().contains("ball-routing"));
        for v in g.vertices() {
            assert_eq!(scheme.table_words(v), 3 * 4);
            assert_eq!(scheme.label_words(v), 1);
        }
    }
}
