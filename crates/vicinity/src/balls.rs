//! Vertex vicinities `B(u, ℓ)` and the Lemma 2 ball router.
//!
//! Every vertex stores, for each of its `ℓ` closest vertices `v`, the first
//! edge (as a port) of a shortest path towards `v`. Property 1 (if
//! `v ∈ B(u, ℓ)` and `w` lies on a shortest `u`–`v` path then `v ∈ B(w, ℓ)`)
//! guarantees that greedily following these first edges delivers the message
//! on a shortest path — this is Lemma 2 of the paper and the building block
//! of both new routing techniques.
//!
//! # Memory layout
//!
//! The table is stored **flat**: all `n` balls share four parallel arrays
//! indexed through one CSR offset table, instead of one `Ball` object plus
//! one `HashMap` per vertex. Per vertex `u` the table keeps
//!
//! * its members `(v, d(u, v))` in `(distance, id)` settle order (what
//!   [`BallView::members`] exposes and the sequence builders iterate), with
//!   the first hop towards each member alongside, and
//! * the same members as **id-sorted** `(v, port, d(u, v))` triples, so the
//!   query-path operations — [`BallTable::contains`], [`BallTable::dist`],
//!   [`BallTable::first_port`] — are one binary search over a contiguous
//!   slice instead of a hash lookup per call.
//!
//! Building runs one *bounded* ball search per vertex
//! ([`SearchScratch::ball_into`], which stops after `ℓ` settled vertices) on
//! a per-worker reusable workspace, so the build allocates nothing per
//! vertex beyond the table itself.

use routing_graph::scratch::SearchScratch;
use routing_graph::{Graph, Port, VertexId, Weight};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};

/// Sentinel port stored for the ball's center (which has no first hop).
const NO_PORT: Port = Port(u32::MAX);

/// The balls `B(u, ℓ)` of every vertex, with the routing information of
/// Lemma 2 (first-hop port towards every member), in flat CSR form.
#[derive(Debug, Clone)]
pub struct BallTable {
    ell: usize,
    /// `offsets[u]..offsets[u+1]` indexes the member arrays for vertex `u`.
    offsets: Vec<u32>,
    /// Members with distances, per vertex in `(distance, id)` settle order
    /// (center first).
    members: Vec<(VertexId, Weight)>,
    /// First hop from the center towards each member, aligned with
    /// `members` (`None` for the center).
    first_hops: Vec<Option<VertexId>>,
    /// Per vertex: the same members as id-sorted `(member, port, distance)`
    /// triples — the binary-searched query path.
    lookup: Vec<(VertexId, Port, Weight)>,
    /// The radius `r_u(ℓ)` of every ball.
    radius: Vec<Weight>,
}

impl BallTable {
    /// Computes `B(u, ℓ)` for every vertex `u` of `g`, together with the
    /// first-hop ports Lemma 2 stores. The per-vertex bounded ball searches
    /// are independent, so they fan out over [`routing_par::threads`]
    /// threads, each worker reusing one search workspace; the resulting
    /// table is identical for every thread count.
    pub fn build(g: &Graph, ell: usize) -> Self {
        let _span = routing_obs::span("balls");
        let n = g.n();
        type PerVertex = (Vec<(VertexId, Weight)>, Vec<Option<VertexId>>, Vec<Port>, Weight);
        let per_vertex: Vec<PerVertex> = routing_par::par_map_scratch(
            n,
            || SearchScratch::for_graph(g),
            |scratch, i| {
                let u = VertexId(i as u32);
                let radius = scratch.ball_into(g, u, ell);
                let members = scratch.order().to_vec();
                let mut first_hops = Vec::with_capacity(members.len());
                let mut ports = Vec::with_capacity(members.len());
                for &(v, _) in &members {
                    if v == u {
                        first_hops.push(None);
                        ports.push(NO_PORT);
                    } else {
                        let hop =
                            scratch.first_hop(v).expect("non-center members have a first hop");
                        first_hops.push(Some(hop));
                        ports.push(g.port_to(u, hop).expect("first hop is a neighbour"));
                    }
                }
                (members, first_hops, ports, radius)
            },
        );

        let total: usize = per_vertex.iter().map(|(m, _, _, _)| m.len()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut members = Vec::with_capacity(total);
        let mut first_hops = Vec::with_capacity(total);
        let mut lookup = Vec::with_capacity(total);
        let mut radius = Vec::with_capacity(n);
        offsets.push(0u32);
        let mut sorted: Vec<(VertexId, Port, Weight)> = Vec::new();
        for (m, fh, ports, r) in per_vertex {
            sorted.clear();
            sorted.extend(m.iter().zip(&ports).map(|(&(v, d), &p)| (v, p, d)));
            sorted.sort_unstable_by_key(|&(v, _, _)| v);
            lookup.extend_from_slice(&sorted);
            members.extend(m);
            first_hops.extend(fh);
            radius.push(r);
            offsets.push(members.len() as u32);
        }
        BallTable { ell, offsets, members, first_hops, lookup, radius }
    }

    /// The ball size parameter `ℓ` the table was built with.
    pub fn ell(&self) -> usize {
        self.ell
    }

    #[inline]
    fn range(&self, u: VertexId) -> std::ops::Range<usize> {
        self.offsets[u.index()] as usize..self.offsets[u.index() + 1] as usize
    }

    /// A borrowed view of the ball of `u`.
    pub fn ball(&self, u: VertexId) -> BallView<'_> {
        BallView { table: self, u }
    }

    /// The id-sorted `(member, port, distance)` triple for `v` in `B(u, ℓ)`,
    /// found by binary search.
    #[inline]
    fn entry(&self, u: VertexId, v: VertexId) -> Option<(VertexId, Port, Weight)> {
        let slice = &self.lookup[self.range(u)];
        slice
            .binary_search_by_key(&v, |&(m, _, _)| m)
            .ok()
            .map(|i| slice[i])
    }

    /// Returns true if `v ∈ B(u, ℓ)`.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.entry(u, v).is_some()
    }

    /// Distance from `u` to `v` if `v ∈ B(u, ℓ)`.
    pub fn dist(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.entry(u, v).map(|(_, _, d)| d)
    }

    /// The first hop of a shortest path from `u` to `v`, if `v ∈ B(u, ℓ)`
    /// and `v != u`.
    pub fn first_hop(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        self.ball(u).first_hop(v)
    }

    /// The port at `u` on a shortest path towards ball member `v`.
    pub fn first_port(&self, u: VertexId, v: VertexId) -> Option<Port> {
        self.entry(u, v).and_then(|(_, p, _)| (p != NO_PORT).then_some(p))
    }

    /// The space Lemma 2 charges to `u`, in `O(log n)`-bit words: one id, one
    /// distance and one port word per ball member other than `u` itself.
    pub fn words_at(&self, u: VertexId) -> usize {
        3 * (self.range(u).len().saturating_sub(1))
    }

    /// Number of vertices covered by the table.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the table covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() <= 1
    }
}

/// A borrowed view of one ball `B(u, ℓ)` inside a [`BallTable`].
///
/// Mirrors the API of the owned [`routing_graph::shortest_path::Ball`], but
/// reads straight from the table's flat arrays; membership-style queries are
/// binary searches over the id-sorted member slice.
#[derive(Debug, Clone, Copy)]
pub struct BallView<'a> {
    table: &'a BallTable,
    u: VertexId,
}

impl BallView<'_> {
    /// The center vertex `u`.
    pub fn center(&self) -> VertexId {
        self.u
    }

    /// Number of members (including the center).
    pub fn len(&self) -> usize {
        self.table.range(self.u).len()
    }

    /// True if the ball contains only its center or is empty.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Members in `(distance, id)` order, the center first.
    pub fn members(&self) -> &[(VertexId, Weight)] {
        &self.table.members[self.table.range(self.u)]
    }

    /// Returns true if `v` is in the ball.
    pub fn contains(&self, v: VertexId) -> bool {
        self.table.contains(self.u, v)
    }

    /// Distance from the center to member `v`, or `None` if `v` is not in
    /// the ball.
    pub fn dist_to(&self, v: VertexId) -> Option<Weight> {
        self.table.dist(self.u, v)
    }

    /// The rank of `v` in the `(distance, id)` order (0 for the center), or
    /// `None` if `v` is not a member. Because balls are nested, `rank(v) < k`
    /// is exactly the membership test `v ∈ B(u, k)` for any `k` up to this
    /// ball's size.
    pub fn rank(&self, v: VertexId) -> Option<usize> {
        let d = self.table.dist(self.u, v)?;
        self.members()
            .binary_search_by(|&(m, md)| (md, m).cmp(&(d, v)))
            .ok()
    }

    /// The first hop of a shortest path from the center to member `v`
    /// (`None` if `v` is not a member or is the center itself).
    pub fn first_hop(&self, v: VertexId) -> Option<VertexId> {
        let rank = self.rank(v)?;
        self.table.first_hops[self.table.range(self.u)][rank]
    }

    /// The largest distance value `r` such that every vertex at distance
    /// exactly `r` from the center is inside the ball (the paper's
    /// `r_u(ℓ)`).
    pub fn radius(&self) -> Weight {
        self.table.radius[self.u.index()]
    }

    /// The largest distance of any member.
    pub fn max_dist(&self) -> Weight {
        self.members().last().map(|&(_, d)| d).unwrap_or(0)
    }
}

/// The standalone Lemma 2 routing scheme: routes exactly (stretch 1) between
/// any `u` and any `v ∈ B(u, ℓ)`, and reports an error for destinations
/// outside the source's ball.
///
/// The full schemes of the paper embed the same tables; this standalone
/// wrapper exists so Lemma 2 can be tested and benchmarked in isolation.
#[derive(Debug, Clone)]
pub struct BallRoutingScheme {
    name: String,
    table: BallTable,
    n: usize,
}

impl BallRoutingScheme {
    /// Builds the scheme with balls of size `ℓ`.
    pub fn new(g: &Graph, ell: usize) -> Self {
        BallRoutingScheme {
            name: format!("ball-routing(l={ell})"),
            table: BallTable::build(g, ell),
            n: g.n(),
        }
    }

    /// Access to the underlying ball table.
    pub fn table(&self) -> &BallTable {
        &self.table
    }
}

/// Header for ball routing: nothing needs to be carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallHeader;

impl HeaderSize for BallHeader {
    fn words(&self) -> usize {
        0
    }
}

impl RoutingScheme for BallRoutingScheme {
    type Label = VertexId;
    type Header = BallHeader;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> VertexId {
        v
    }

    fn init_header(&self, source: VertexId, dest: &VertexId) -> Result<BallHeader, RouteError> {
        if source != *dest && !self.table.contains(source, *dest) {
            return Err(RouteError::MissingInformation {
                at: source,
                what: format!("{dest} is outside B({source}, {})", self.table.ell()),
            });
        }
        Ok(BallHeader)
    }

    fn decide(
        &self,
        at: VertexId,
        _header: &mut BallHeader,
        dest: &VertexId,
    ) -> Result<Decision, RouteError> {
        if at == *dest {
            return Ok(Decision::Deliver);
        }
        self.table
            .first_port(at, *dest)
            .map(Decision::Forward)
            .ok_or_else(|| RouteError::MissingInformation {
                at,
                what: format!("{dest} is outside B({at}, {}) during forwarding", self.table.ell()),
            })
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.table.words_at(v)
    }

    fn label_words(&self, _v: VertexId) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::generators;
    use routing_graph::shortest_path::{ball, dijkstra};
    use routing_model::simulate;

    #[test]
    fn ball_table_membership_and_first_hops() {
        let g = generators::grid(5, 5);
        let t = BallTable::build(&g, 6);
        assert_eq!(t.len(), 25);
        assert!(!t.is_empty());
        assert_eq!(t.ell(), 6);
        for u in g.vertices() {
            assert!(t.contains(u, u));
            assert_eq!(t.ball(u).len(), 6);
            assert_eq!(t.words_at(u), 15);
            for &(v, d) in t.ball(u).members() {
                assert_eq!(t.dist(u, v), Some(d));
                if v != u {
                    let hop = t.first_hop(u, v).unwrap();
                    assert!(g.has_edge(u, hop));
                    let port = t.first_port(u, v).unwrap();
                    assert_eq!(g.neighbor_at(u, port).to, hop);
                }
            }
        }
    }

    #[test]
    fn flat_table_matches_standalone_balls() {
        // The CSR table must agree with the owned Ball API member for
        // member: same order, ranks, radii, hops.
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::erdos_renyi(
            60,
            0.08,
            generators::WeightModel::Uniform { lo: 1, hi: 7 },
            &mut rng,
        );
        let t = BallTable::build(&g, 8);
        for u in g.vertices() {
            let owned = ball(&g, u, 8);
            let view = t.ball(u);
            assert_eq!(view.members(), owned.members());
            assert_eq!(view.radius(), owned.radius());
            assert_eq!(view.max_dist(), owned.max_dist());
            assert_eq!(view.center(), owned.center());
            assert_eq!(view.is_empty(), owned.is_empty());
            for v in g.vertices() {
                assert_eq!(view.contains(v), owned.contains(v));
                assert_eq!(view.dist_to(v), owned.dist_to(v));
                assert_eq!(view.rank(v), owned.rank(v));
                assert_eq!(view.first_hop(v), owned.first_hop(v));
            }
        }
    }

    #[test]
    fn rank_boundaries_and_nested_ball_monotonicity() {
        // The Theorem 13/15 substrate: one stored ball answers membership
        // at every level because rank(v) < k  ⟺  v ∈ B(u, k).
        let mut rng = StdRng::seed_from_u64(29);
        let g = generators::erdos_renyi(
            50,
            0.1,
            generators::WeightModel::Uniform { lo: 1, hi: 9 },
            &mut rng,
        );
        let big = BallTable::build(&g, 16);
        for u in g.vertices() {
            let view = big.ball(u);
            // The center always has rank 0.
            assert_eq!(view.rank(u), Some(0));
            // Members occupy exactly the ranks 0..len, each exactly once.
            let mut seen = vec![false; view.len()];
            for &(v, _) in view.members() {
                let r = view.rank(v).unwrap();
                assert!(r < view.len() && !seen[r], "rank {r} out of range or duplicated");
                seen[r] = true;
            }
            // Non-members have no rank.
            for v in g.vertices() {
                if !view.contains(v) {
                    assert_eq!(view.rank(v), None);
                }
            }
        }
        // Nested-ball monotonicity: for every smaller size k, the k-ball is
        // exactly the rank-< k prefix of the big ball — same members, same
        // ranks.
        for k in [1usize, 4, 9, 16] {
            let small = BallTable::build(&g, k);
            for u in g.vertices() {
                let sv = small.ball(u);
                let bv = big.ball(u);
                for v in g.vertices() {
                    let in_prefix = bv.rank(v).is_some_and(|r| r < k);
                    assert_eq!(
                        sv.contains(v),
                        in_prefix,
                        "rank-derived level-{k} membership differs for ({u}, {v})"
                    );
                    if sv.contains(v) {
                        assert_eq!(sv.rank(v), bv.rank(v), "rank changed between sizes");
                    }
                }
            }
        }
    }

    #[test]
    fn property_1_holds_with_tie_breaking() {
        // Property 1: v in B(u, l) and w on a shortest u-v path => v in B(w, l).
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::erdos_renyi(70, 0.08, generators::WeightModel::Unit, &mut rng);
        let ell = 9;
        let t = BallTable::build(&g, ell);
        for u in g.vertices() {
            let sp = dijkstra(&g, u);
            for &(v, _) in t.ball(u).members() {
                if v == u {
                    continue;
                }
                for w in sp.path_to(v).unwrap() {
                    assert!(
                        t.contains(w, v),
                        "property 1 violated: {v} in B({u}) but not in B({w})"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_2_routes_on_shortest_paths() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(
            60,
            0.07,
            generators::WeightModel::Uniform { lo: 1, hi: 5 },
            &mut rng,
        );
        let scheme = BallRoutingScheme::new(&g, 12);
        for u in g.vertices() {
            let sp = dijkstra(&g, u);
            for &(v, d) in scheme.table().ball(u).members().to_vec().iter() {
                let out = simulate(&g, &scheme, u, v).unwrap();
                assert_eq!(out.weight, d, "ball routing must be exact");
                assert_eq!(Some(out.weight), sp.dist(v));
            }
        }
    }

    #[test]
    fn destinations_outside_the_ball_are_rejected() {
        let g = generators::path(30);
        let scheme = BallRoutingScheme::new(&g, 3);
        let err = simulate(&g, &scheme, VertexId(0), VertexId(29)).unwrap_err();
        assert!(matches!(err, RouteError::MissingInformation { .. }));
    }

    #[test]
    fn scheme_reports_sizes() {
        let g = generators::cycle(12);
        let scheme = BallRoutingScheme::new(&g, 5);
        assert_eq!(RoutingScheme::n(&scheme), 12);
        assert!(scheme.name().contains("ball-routing"));
        for v in g.vertices() {
            assert_eq!(scheme.table_words(v), 3 * 4);
            assert_eq!(scheme.label_words(v), 1);
        }
    }
}
