//! Thorup–Zwick centers (Lemma 4), landmarks, clusters and bunches.
//!
//! For a landmark set `A ⊆ V`:
//!
//! * `p_A(v)` is the landmark nearest to `v` (ties by id) and
//!   `d(v, A) = d(v, p_A(v))`;
//! * the **cluster** of `w` is `C_A(w) = { v : d(w, v) < d(v, A) }`;
//! * the **bunch** of `v` is `B_A(v) = { w : d(w, v) < d(v, A) }`, i.e.
//!   `w ∈ B_A(v) ⇔ v ∈ C_A(w)`.
//!
//! Lemma 4 (Thorup–Zwick): for any `s` one can sample `A` with expected size
//! `O(s log n)` such that every cluster has at most `4n/s` vertices.
//! [`sample_centers_bounded`] implements the iterative resampling algorithm
//! that guarantees the cluster bound deterministically (it keeps adding
//! centers until every cluster is small enough).

use std::collections::HashMap;

use rand::Rng;

use routing_graph::shortest_path::{multi_source_dijkstra, RestrictedTree};
use routing_graph::{Graph, SearchScratch, VertexId, Weight, INFINITY};

/// A landmark set `A` together with the nearest-landmark data of every
/// vertex.
#[derive(Debug, Clone)]
pub struct Landmarks {
    members: Vec<VertexId>,
    is_member: Vec<bool>,
    dist: Vec<Weight>,
    nearest: Vec<Option<VertexId>>,
}

impl Landmarks {
    /// Builds the landmark structure for an explicit set `A` (duplicates are
    /// removed). Runs one multi-source Dijkstra.
    pub fn new(g: &Graph, set: Vec<VertexId>) -> Self {
        let mut members = set;
        members.sort_unstable();
        members.dedup();
        let mut is_member = vec![false; g.n()];
        for &a in &members {
            is_member[a.index()] = true;
        }
        let (dist, nearest) = if members.is_empty() {
            (vec![INFINITY; g.n()], vec![None; g.n()])
        } else {
            let ms = multi_source_dijkstra(g, &members);
            (
                g.vertices().map(|v| ms.dist(v).unwrap_or(INFINITY)).collect(),
                g.vertices().map(|v| ms.nearest(v)).collect(),
            )
        };
        Landmarks { members, is_member, dist, nearest }
    }

    /// The landmark vertices, sorted by id.
    pub fn members(&self) -> &[VertexId] {
        &self.members
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if `A` is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns true if `v ∈ A`.
    pub fn contains(&self, v: VertexId) -> bool {
        self.is_member[v.index()]
    }

    /// `d(v, A)`, or `None` when `A` is empty or unreachable from `v`.
    pub fn dist_to_set(&self, v: VertexId) -> Option<Weight> {
        let d = self.dist[v.index()];
        (d != INFINITY).then_some(d)
    }

    /// The nearest landmark `p_A(v)`.
    pub fn nearest(&self, v: VertexId) -> Option<VertexId> {
        self.nearest[v.index()]
    }

    /// The per-vertex bound slice `d(·, A)` used by
    /// [`routing_graph::shortest_path::cluster_dijkstra`] (`INFINITY` where
    /// `A` is unreachable, so clusters degenerate to full reachability when
    /// `A` is empty).
    pub fn bound_slice(&self) -> &[Weight] {
        &self.dist
    }
}

/// Samples a landmark set per Lemma 4: every cluster `C_A(w)` has at most
/// `(4n/s).ceil()` vertices, and `|A| = O(s log n)` in expectation.
///
/// The algorithm is Thorup–Zwick's `center(G, s)`: repeatedly sample each
/// still-violating vertex with probability `s / |W|`, recompute clusters, and
/// keep only the vertices whose clusters are still too large. Sampling is
/// driven by `rng`, but the returned set always satisfies the cluster bound.
pub fn sample_centers_bounded<R: Rng>(g: &Graph, s: usize, rng: &mut R) -> Landmarks {
    let _span = routing_obs::span("centers");
    let n = g.n();
    let s = s.clamp(1, n.max(1));
    let limit = (4 * n).div_ceil(s);
    let mut a: Vec<VertexId> = Vec::new();
    let mut w: Vec<VertexId> = g.vertices().collect();

    // Guard against pathological loops: |A| can never usefully exceed n.
    while !w.is_empty() && a.len() < n {
        let p = (s as f64 / w.len() as f64).min(1.0);
        let mut newly: Vec<VertexId> = w.iter().copied().filter(|_| rng.gen::<f64>() < p).collect();
        if newly.is_empty() {
            // Force progress: add the smallest-id violating vertex.
            newly.push(w[0]);
        }
        a.extend(newly);
        let landmarks = Landmarks::new(g, a.clone());
        a = landmarks.members().to_vec();
        // The per-vertex cluster-size checks dominate the sampling loop; they
        // are independent restricted searches, so fan them out over
        // per-worker scratch workspaces (only the settled count is needed,
        // so no tree is materialized at all). Sampling itself stays on this
        // thread, keeping rng consumption (and thus the chosen set)
        // identical for every thread count.
        let too_large: Vec<bool> = routing_par::par_map_scratch(
            n,
            || SearchScratch::for_graph(g),
            |scratch, v| {
                scratch.cluster_into(g, VertexId(v as u32), landmarks.bound_slice());
                scratch.order().len() > limit
            },
        );
        w = g.vertices().filter(|v| too_large[v.index()]).collect();
        if a.len() == n {
            break;
        }
    }
    Landmarks::new(g, a)
}

/// Computes the cluster tree `T_{C_A(w)}` of every vertex `w`, indexed by
/// vertex id. One restricted search per vertex, run in parallel.
pub fn all_clusters(g: &Graph, landmarks: &Landmarks) -> Vec<RestrictedTree> {
    let _span = routing_obs::span("clusters");
    routing_par::par_map_scratch(
        g.n(),
        || SearchScratch::for_graph(g),
        |scratch, w| {
            scratch.cluster_into(g, VertexId(w as u32), landmarks.bound_slice());
            RestrictedTree::from_scratch(scratch)
        },
    )
}

/// Inverts clusters into bunches: `bunches(g, clusters)[v]` lists every
/// `(w, d(w, v))` with `w ∈ B_A(v)`, sorted by distance then id.
pub fn bunches(g: &Graph, clusters: &[RestrictedTree]) -> Vec<Vec<(VertexId, Weight)>> {
    let _span = routing_obs::span("bunches");
    let mut out: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); g.n()];
    for tree in clusters {
        let w = tree.root();
        for &(v, d) in tree.members() {
            // The root itself is a member of its restricted tree but
            // d(w, w) = 0 < d(w, A) only holds when w is not a landmark;
            // keep the membership test faithful to the definition.
            out[v.index()].push((w, d));
        }
    }
    for bunch in &mut out {
        bunch.sort_unstable_by_key(|&(w, d)| (d, w));
    }
    out
}

/// Convenience: the largest cluster size for a landmark set.
pub fn max_cluster_size(g: &Graph, landmarks: &Landmarks) -> usize {
    routing_par::par_map_scratch(
        g.n(),
        || SearchScratch::for_graph(g),
        |scratch, w| {
            scratch.cluster_into(g, VertexId(w as u32), landmarks.bound_slice());
            scratch.order().len()
        },
    )
    .into_iter()
    .max()
    .unwrap_or(0)
}

/// Picks `k` vertices uniformly at random (without replacement) — the
/// "expected size" sampling used when the cluster bound is not needed.
pub fn sample_uniform<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<VertexId> {
    use rand::seq::SliceRandom;
    let mut ids: Vec<VertexId> = g.vertices().collect();
    ids.shuffle(rng);
    ids.truncate(k.min(g.n()));
    ids.sort_unstable();
    ids
}

/// Membership map `vertex -> position` for a sorted landmark list; used by
/// schemes that need to index per-landmark arrays.
// lint:allow(det-hash-iter): position lookup over a sorted list; callers enumerate the list itself, never this map
pub fn index_of(members: &[VertexId]) -> HashMap<VertexId, usize> {
    members.iter().enumerate().map(|(i, &v)| (v, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::generators;
    use routing_graph::shortest_path::dijkstra;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn landmarks_nearest_and_distance() {
        let g = generators::path(10);
        let lm = Landmarks::new(&g, vec![VertexId(0), VertexId(9)]);
        assert_eq!(lm.len(), 2);
        assert!(!lm.is_empty());
        assert!(lm.contains(VertexId(9)));
        assert!(!lm.contains(VertexId(5)));
        assert_eq!(lm.dist_to_set(VertexId(3)), Some(3));
        assert_eq!(lm.nearest(VertexId(3)), Some(VertexId(0)));
        assert_eq!(lm.nearest(VertexId(6)), Some(VertexId(9)));
        // Tie at vertex 4 and 5? d(4,0)=4, d(4,9)=5 -> 0; d(5,0)=5=d(5,9)=4 -> 9 is closer.
        assert_eq!(lm.nearest(VertexId(4)), Some(VertexId(0)));
    }

    #[test]
    fn empty_landmarks_have_infinite_distance() {
        let g = generators::path(4);
        let lm = Landmarks::new(&g, vec![]);
        assert!(lm.is_empty());
        assert_eq!(lm.dist_to_set(VertexId(2)), None);
        assert_eq!(lm.nearest(VertexId(2)), None);
        assert!(lm.bound_slice().iter().all(|&d| d == INFINITY));
    }

    #[test]
    fn duplicate_landmarks_are_removed() {
        let g = generators::path(4);
        let lm = Landmarks::new(&g, vec![VertexId(1), VertexId(1), VertexId(3)]);
        assert_eq!(lm.members(), &[VertexId(1), VertexId(3)]);
    }

    #[test]
    fn cluster_and_bunch_duality() {
        let mut r = rng();
        let g = generators::erdos_renyi(60, 0.08, generators::WeightModel::Unit, &mut r);
        let lm = Landmarks::new(&g, sample_uniform(&g, 8, &mut r));
        let clusters = all_clusters(&g, &lm);
        let bunches = bunches(&g, &clusters);
        // w in B(v) iff v in C(w), and the recorded distance is d(w, v).
        for v in g.vertices() {
            for &(w, d) in &bunches[v.index()] {
                assert!(clusters[w.index()].contains(v));
                let sp = dijkstra(&g, w);
                assert_eq!(sp.dist(v), Some(d));
            }
        }
        // Definition check: v in C(w) iff d(w,v) < d(v,A).
        for w in g.vertices() {
            let sp = dijkstra(&g, w);
            for v in g.vertices() {
                let in_cluster = clusters[w.index()].contains(v);
                let expected = match lm.dist_to_set(v) {
                    Some(da) => sp.dist(v).map(|d| d < da).unwrap_or(false),
                    None => sp.dist(v).is_some(),
                };
                // The root is always a member of its restricted tree even
                // when the strict inequality fails for it (w == v case).
                if w == v {
                    continue;
                }
                assert_eq!(in_cluster, expected, "cluster membership of {v} in C({w})");
            }
        }
    }

    #[test]
    fn landmark_clusters_contain_only_root() {
        let g = generators::grid(5, 5);
        let lm = Landmarks::new(&g, vec![VertexId(12)]);
        let clusters = all_clusters(&g, &lm);
        // The cluster of the landmark itself contains just the root (no v has
        // d(w,v) < d(v,A) when w in A).
        assert_eq!(clusters[12].len(), 1);
    }

    #[test]
    fn sample_centers_respects_cluster_bound() {
        let mut r = rng();
        let g = generators::erdos_renyi(120, 0.05, generators::WeightModel::Unit, &mut r);
        let s = 12;
        let lm = sample_centers_bounded(&g, s, &mut r);
        let limit = (4 * g.n()).div_ceil(s);
        assert!(max_cluster_size(&g, &lm) <= limit);
        assert!(!lm.is_empty());
        // The set should be far from the whole vertex set.
        assert!(lm.len() < g.n() / 2, "landmark set unexpectedly large: {}", lm.len());
    }

    #[test]
    fn sample_centers_on_tiny_graph() {
        let g = generators::path(3);
        let mut r = rng();
        let lm = sample_centers_bounded(&g, 1, &mut r);
        let limit = 4 * g.n();
        assert!(max_cluster_size(&g, &lm) <= limit);
    }

    #[test]
    fn uniform_sampling_is_sorted_and_bounded() {
        let g = generators::cycle(30);
        let mut r = rng();
        let s = sample_uniform(&g, 10, &mut r);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        let all = sample_uniform(&g, 100, &mut r);
        assert_eq!(all.len(), 30);
        let idx = index_of(&s);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[&s[3]], 3);
    }
}
