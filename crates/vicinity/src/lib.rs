//! Vertex vicinities, hitting sets, colorings, and Thorup–Zwick centers —
//! the combinatorial substrates of Section 2 of Roditty & Tov (PODC 2015).
//!
//! Each module implements one numbered lemma of the paper:
//!
//! * [`balls`] — **Property 1 / Lemma 2** (ball routing). The vicinity
//!   `B(u, ℓ)` is the set of the `ℓ` vertices closest to `u` (ties broken
//!   by vertex id, the paper's lexicographic rule). Property 1: if
//!   `v ∈ B(u, ℓ)` then `v ∈ B(w, ℓ)` for every `w` on a shortest `u–v`
//!   path — so storing, at every vertex, the first-hop port of a shortest
//!   path to each of its `ℓ` closest vertices (`3ℓ` words) suffices to
//!   forward hop-by-hop inside a vicinity on exact shortest paths
//!   ([`BallTable`], [`BallRoutingScheme`]).
//! * [`hitting`] — **Lemma 5** (hitting sets). For any collection of sets
//!   each of size ≥ `s`, a set of size `Õ(n/s)` hitting all of them exists;
//!   both the deterministic greedy set-cover construction and the
//!   randomized sample-and-patch construction are provided
//!   ([`hitting_set_greedy`], [`hitting_set_random`]). The schemes hit the
//!   vicinities `B(u, q̃)` to obtain their temporary-target sets.
//! * [`coloring`] — **Lemma 6** (colorings). A `q`-coloring of `V` such
//!   that every given (large enough) set contains every color and the color
//!   classes stay balanced ([`Coloring`]); Theorem 10's scheme uses it to
//!   split `V` into `q` color classes that every big vicinity intersects.
//! * [`centers`] — **Lemma 4** (Thorup–Zwick centers, from STOC'01). A
//!   landmark set `A` of expected size `Õ(n/s)` such that every cluster
//!   `C_A(w) = {v : d(w, v) < d(v, A)}` has at most `4n/s` vertices
//!   ([`sample_centers_bounded`]), plus the derived bunches
//!   `B(v) = {w : d(v, w) < d(v, A)}`, clusters, and nearest-landmark data
//!   `(p_A(v), d(v, A))` ([`Landmarks`]). These drive the `(5+ε)` scheme of
//!   Theorem 11 and the Thorup–Zwick baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balls;
pub mod centers;
pub mod coloring;
pub mod hitting;

pub use balls::{BallRoutingScheme, BallTable, BallView};
pub use centers::{all_clusters, bunches, sample_centers_bounded, Landmarks};
pub use coloring::{Coloring, ColoringError};
pub use hitting::{hitting_set_greedy, hitting_set_random};
