//! Vertex vicinities, hitting sets, colorings, and Thorup–Zwick centers —
//! the combinatorial substrates of Section 2 of Roditty & Tov (PODC 2015).
//!
//! * [`balls`] — the vicinity `B(u, ℓ)` of every vertex plus the Lemma 2
//!   ball router (store the first edge of a shortest path to each of the `ℓ`
//!   closest vertices; Property 1 makes hop-by-hop forwarding correct).
//! * [`hitting`] — Lemma 5: a set of size `Õ(n/s)` hitting every given set
//!   of size ≥ `s`, with both a deterministic greedy and a randomized
//!   construction.
//! * [`coloring`] — Lemma 6: a `q`-coloring of `V` such that every given
//!   (large enough) set contains every color, and color classes stay
//!   balanced.
//! * [`centers`] — Lemma 4: a landmark set `A` such that every cluster
//!   `C_A(w)` has at most `4n/s` vertices, plus bunches, clusters, and the
//!   nearest-landmark data (`p_A(v)`, `d(v, A)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balls;
pub mod centers;
pub mod coloring;
pub mod hitting;

pub use balls::{BallRoutingScheme, BallTable};
pub use centers::{all_clusters, bunches, sample_centers_bounded, Landmarks};
pub use coloring::{Coloring, ColoringError};
pub use hitting::{hitting_set_greedy, hitting_set_random};
