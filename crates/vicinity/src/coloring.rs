//! The coloring of Lemma 6 (Abraham–Gavoille–Malkhi–Nisan–Thorup): a
//! `q`-coloring of `V` such that
//!
//! 1. every given set `S_i` (of size at least `α·q·log n`) contains a vertex
//!    of every color, and
//! 2. every color class has `O(n/q)` vertices.
//!
//! The paper argues that a uniformly random coloring satisfies both
//! requirements with high probability. At the small `n` of the experiments
//! the constants matter, so the construction here validates the random
//! coloring and, if some set misses some color, runs a bounded repair loop
//! (recolor a vertex whose color is over-represented inside the deficient
//! set) before giving up. The harness's ablation experiment compares repair
//! on/off.

use std::error::Error;
use std::fmt;

use rand::Rng;

use routing_graph::VertexId;

/// Failure to build a Lemma 6 coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringError {
    /// Index of a set that misses at least one color after all retries.
    pub set_index: usize,
    /// A color that the set misses.
    pub missing_color: u32,
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coloring failed: set {} contains no vertex of color {} (sets may be smaller than q log n)",
            self.set_index, self.missing_color
        )
    }
}

impl Error for ColoringError {}

/// A `q`-coloring of the vertex set.
#[derive(Debug, Clone)]
pub struct Coloring {
    q: u32,
    colors: Vec<u32>,
}

impl Coloring {
    /// Builds a uniformly random `q`-coloring (no validation).
    pub fn random<R: Rng>(n: usize, q: u32, rng: &mut R) -> Self {
        let q = q.max(1);
        let colors = (0..n).map(|_| rng.gen_range(0..q)).collect();
        Coloring { q, colors }
    }

    /// Builds a coloring satisfying Lemma 6 with respect to `sets`:
    /// every set must end up containing every color.
    ///
    /// Strategy: sample a random coloring; if validation fails, retry up to
    /// `retries` times; on the last attempt run a repair pass that recolors
    /// over-represented vertices inside deficient sets.
    ///
    /// # Errors
    ///
    /// Returns [`ColoringError`] if even the repaired coloring leaves some
    /// set without some color — which can only happen when some set has
    /// fewer than `q` vertices.
    pub fn build_for_sets<R: Rng>(
        n: usize,
        q: u32,
        sets: &[Vec<VertexId>],
        retries: usize,
        rng: &mut R,
    ) -> Result<Self, ColoringError> {
        let q = q.max(1);
        let mut last = None;
        for _ in 0..retries.max(1) {
            let c = Coloring::random(n, q, rng);
            if c.first_violation(sets).is_none() {
                return Ok(c);
            }
            last = Some(c);
        }
        let mut c = last.unwrap_or_else(|| Coloring::random(n, q, rng));
        c.repair(sets, 4 * sets.len().max(1));
        match c.first_violation(sets) {
            None => Ok(c),
            Some((set_index, missing_color)) => Err(ColoringError { set_index, missing_color }),
        }
    }

    /// The number of colors `q`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Number of colored vertices.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// True if no vertices are colored.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of `v`.
    pub fn color(&self, v: VertexId) -> u32 {
        self.colors[v.index()]
    }

    /// The vertices of color `j` (the partition class `U_{j}`).
    pub fn class(&self, j: u32) -> Vec<VertexId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == j)
            .map(|(v, _)| VertexId(v as u32))
            .collect()
    }

    /// All color classes, indexed by color.
    pub fn classes(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.q as usize];
        for (v, &c) in self.colors.iter().enumerate() {
            out[c as usize].push(VertexId(v as u32));
        }
        out
    }

    /// The size of the largest color class.
    pub fn max_class_size(&self) -> usize {
        self.classes().iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns the first `(set index, missing color)` violation of
    /// requirement 1, or `None` if every set contains every color.
    pub fn first_violation(&self, sets: &[Vec<VertexId>]) -> Option<(usize, u32)> {
        for (i, set) in sets.iter().enumerate() {
            let mut present = vec![false; self.q as usize];
            for &v in set {
                present[self.color(v) as usize] = true;
            }
            if let Some(c) = present.iter().position(|&p| !p) {
                return Some((i, c as u32));
            }
        }
        None
    }

    /// In-place repair pass: for up to `max_steps` iterations, find a set
    /// missing a color and recolor one of its vertices whose current color
    /// appears at least twice in that set.
    fn repair(&mut self, sets: &[Vec<VertexId>], max_steps: usize) {
        for _ in 0..max_steps {
            let Some((set_idx, missing)) = self.first_violation(sets) else {
                return;
            };
            let set = &sets[set_idx];
            let mut count = vec![0usize; self.q as usize];
            for &v in set {
                count[self.color(v) as usize] += 1;
            }
            // Recolor a vertex whose color is the most over-represented in
            // this set, so we do not create a new violation inside the set.
            let candidate = set
                .iter()
                .copied()
                .filter(|&v| count[self.color(v) as usize] >= 2)
                .max_by_key(|&v| count[self.color(v) as usize]);
            match candidate {
                Some(v) => self.colors[v.index()] = missing,
                None => return, // set smaller than q: unrepairable
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn interval_sets(n: usize, size: usize) -> Vec<Vec<VertexId>> {
        (0..n)
            .map(|i| (0..size).map(|j| VertexId(((i + j) % n) as u32)).collect())
            .collect()
    }

    #[test]
    fn random_coloring_uses_q_colors_and_balances() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Coloring::random(1000, 10, &mut rng);
        assert_eq!(c.q(), 10);
        assert_eq!(c.len(), 1000);
        assert!(!c.is_empty());
        assert!(c.colors.iter().all(|&x| x < 10));
        // Requirement 2 (balance): with n/q = 100 expected, the largest class
        // should stay within a small constant factor.
        assert!(c.max_class_size() < 200, "max class {}", c.max_class_size());
        let classes = c.classes();
        assert_eq!(classes.iter().map(Vec::len).sum::<usize>(), 1000);
    }

    #[test]
    fn build_for_sets_covers_every_color() {
        let n = 400;
        let q = 8;
        let sets = interval_sets(n, 80); // comfortably larger than q log n would demand at this scale
        let mut rng = StdRng::seed_from_u64(7);
        let c = Coloring::build_for_sets(n, q, &sets, 4, &mut rng).unwrap();
        assert!(c.first_violation(&sets).is_none());
        for set in &sets {
            for color in 0..q {
                assert!(set.iter().any(|&v| c.color(v) == color));
            }
        }
    }

    #[test]
    fn repair_kicks_in_for_tight_sets() {
        // Sets of size exactly q: random coloring almost surely misses some
        // color, so the repair loop has to fix them.
        let n = 64;
        let q = 4;
        let sets = interval_sets(n, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let c = Coloring::build_for_sets(n, q, &sets, 2, &mut rng).unwrap();
        assert!(c.first_violation(&sets).is_none());
    }

    #[test]
    fn impossible_sets_error() {
        // A set smaller than q can never contain all q colors.
        let sets = vec![vec![VertexId(0), VertexId(1)]];
        let mut rng = StdRng::seed_from_u64(3);
        let err = Coloring::build_for_sets(10, 5, &sets, 2, &mut rng).unwrap_err();
        assert_eq!(err.set_index, 0);
        assert!(err.to_string().contains("set 0"));
    }

    #[test]
    fn class_lookup_matches_color() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = Coloring::random(50, 5, &mut rng);
        for j in 0..5 {
            for v in c.class(j) {
                assert_eq!(c.color(v), j);
            }
        }
    }

    #[test]
    fn coloring_with_one_color() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = Coloring::random(10, 1, &mut rng);
        assert!(c.colors.iter().all(|&x| x == 0));
        assert_eq!(c.max_class_size(), 10);
    }
}
