//! Hitting sets (Lemma 5): given sets `S_1, ..., S_k ⊆ V` each of size at
//! least `s`, find a set `H` of size `Õ(n/s)` intersecting every `S_i`.
//!
//! Two constructions are provided:
//!
//! * [`hitting_set_greedy`] — the deterministic greedy set-cover argument
//!   (Aingworth–Chekuri–Indyk–Motwani, Dor–Halperin–Zwick): repeatedly pick
//!   the vertex contained in the largest number of not-yet-hit sets.
//! * [`hitting_set_random`] — sample each vertex independently with
//!   probability `Θ(ln k / s)` and patch any set the sample missed.
//!
//! The experiment harness compares the two as an ablation (they trade
//! determinism against hitting-set size in practice).

use rand::Rng;

use routing_graph::VertexId;

/// Deterministic greedy hitting set.
///
/// `n` is the size of the universe `V = {0, ..., n-1}`; every element of the
/// given sets must be a valid vertex id. Empty input sets are ignored (they
/// cannot be hit).
pub fn hitting_set_greedy(n: usize, sets: &[Vec<VertexId>]) -> Vec<VertexId> {
    let mut hit = vec![false; sets.len()];
    // occurrences[v] = indices of the sets containing v.
    let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, set) in sets.iter().enumerate() {
        if set.is_empty() {
            hit[i] = true;
        }
        for &v in set {
            occurrences[v.index()].push(i);
        }
    }
    let mut remaining = hit.iter().filter(|&&h| !h).count();
    let mut result = Vec::new();
    // Count of unhit sets containing each vertex.
    let mut gain: Vec<usize> = occurrences.iter().map(Vec::len).collect();
    while remaining > 0 {
        let best = (0..n).max_by_key(|&v| (gain[v], std::cmp::Reverse(v))).expect("n > 0");
        if gain[best] == 0 {
            // Defensive: cannot happen when every unhit set is non-empty.
            break;
        }
        result.push(VertexId(best as u32));
        for &set_idx in &occurrences[best] {
            if !hit[set_idx] {
                hit[set_idx] = true;
                remaining -= 1;
                for &w in &sets[set_idx] {
                    gain[w.index()] = gain[w.index()].saturating_sub(1);
                }
            }
        }
    }
    result.sort_unstable();
    result
}

/// Randomized hitting set: include each vertex with probability
/// `min(1, c·ln(max(k, 2)) / s)` where `s` is the smallest input-set size,
/// then add one arbitrary element from every set the sample missed.
///
/// The result always hits every non-empty set; the patching step makes the
/// construction Las Vegas rather than Monte Carlo.
pub fn hitting_set_random<R: Rng>(n: usize, sets: &[Vec<VertexId>], rng: &mut R) -> Vec<VertexId> {
    let s = sets.iter().filter(|s| !s.is_empty()).map(Vec::len).min().unwrap_or(1).max(1);
    let k = sets.len().max(2) as f64;
    let p = ((2.0 * k.ln()) / s as f64).min(1.0);
    let mut chosen = vec![false; n];
    for v in 0..n {
        if rng.gen::<f64>() < p {
            chosen[v] = true;
        }
    }
    for set in sets {
        if set.is_empty() {
            continue;
        }
        if !set.iter().any(|v| chosen[v.index()]) {
            // Patch: add the smallest-id element so the result is still a
            // deterministic function of (sample, input).
            let v = set.iter().min().expect("set is non-empty");
            chosen[v.index()] = true;
        }
    }
    (0..n).filter(|&v| chosen[v]).map(|v| VertexId(v as u32)).collect()
}

/// Returns true if `candidate` intersects every non-empty set.
///
/// The candidate is sorted once and every membership probe is a binary
/// search over that slice — no per-check hash set is materialized.
pub fn hits_all(candidate: &[VertexId], sets: &[Vec<VertexId>]) -> bool {
    let mut lookup: Vec<VertexId> = candidate.to_vec();
    lookup.sort_unstable();
    sets.iter()
        .filter(|s| !s.is_empty())
        .all(|s| s.iter().any(|v| lookup.binary_search(v).is_ok()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sets_of_balls(n: usize, s: usize) -> Vec<Vec<VertexId>> {
        // Set i = {i, i+1, ..., i+s-1} mod n — every set has size s.
        (0..n)
            .map(|i| (0..s).map(|j| VertexId(((i + j) % n) as u32)).collect())
            .collect()
    }

    #[test]
    fn greedy_hits_everything_and_is_small() {
        let n = 100;
        let s = 10;
        let sets = sets_of_balls(n, s);
        let h = hitting_set_greedy(n, &sets);
        assert!(hits_all(&h, &sets));
        // Greedy is within a log factor of n/s = 10.
        assert!(h.len() <= 3 * (n / s) * ((n as f64).ln().ceil() as usize).max(1));
        // Sorted and unique.
        assert!(h.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn greedy_ignores_empty_sets() {
        let sets = vec![vec![], vec![VertexId(3)], vec![]];
        let h = hitting_set_greedy(5, &sets);
        assert_eq!(h, vec![VertexId(3)]);
    }

    #[test]
    fn greedy_with_no_sets_is_empty() {
        let h = hitting_set_greedy(10, &[]);
        assert!(h.is_empty());
    }

    #[test]
    fn random_hits_everything() {
        let n = 200;
        let s = 20;
        let sets = sets_of_balls(n, s);
        let mut rng = StdRng::seed_from_u64(5);
        let h = hitting_set_random(n, &sets, &mut rng);
        assert!(hits_all(&h, &sets));
        // Should be well below n (expected ~ n * 2 ln(n)/s ≈ 106 worst-ish);
        // just check it is not the whole universe.
        assert!(h.len() < n);
    }

    #[test]
    fn random_is_deterministic_given_seed() {
        let sets = sets_of_balls(60, 8);
        let a = hitting_set_random(60, &sets, &mut StdRng::seed_from_u64(9));
        let b = hitting_set_random(60, &sets, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn random_patches_missed_sets() {
        // With probability so low nothing gets sampled, the patch step must
        // still cover every set.
        let sets = vec![vec![VertexId(7), VertexId(8)], vec![VertexId(1)]];
        let mut rng = StdRng::seed_from_u64(1);
        let h = hitting_set_random(1000, &sets, &mut rng);
        assert!(hits_all(&h, &sets));
    }

    #[test]
    fn hits_all_detects_misses() {
        let sets = vec![vec![VertexId(1)], vec![VertexId(2)]];
        assert!(!hits_all(&[VertexId(1)], &sets));
        assert!(hits_all(&[VertexId(1), VertexId(2)], &sets));
    }
}
