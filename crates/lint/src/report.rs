//! Human-readable and JSON rendering of a lint run.

use serde::Serialize;

use crate::budget::BudgetMap;
use crate::rules::{Finding, Severity};

/// JSON shape of one finding (flat strings/numbers only — keeps the vendored
/// derive happy and the report easy to consume from scripts).
#[derive(Serialize)]
pub struct JsonFinding {
    pub rule: String,
    pub krate: String,
    pub file: String,
    pub line: usize,
    pub severity: String,
    pub message: String,
    pub reason: Option<String>,
}

/// JSON shape of one budget row.
#[derive(Serialize)]
pub struct JsonBudgetRow {
    pub krate: String,
    pub rule: String,
    pub current: usize,
    pub committed: usize,
}

/// Top-level JSON report.
#[derive(Serialize)]
pub struct JsonReport {
    pub errors: usize,
    pub warnings: usize,
    pub allowed: usize,
    pub findings: Vec<JsonFinding>,
    pub budget: Vec<JsonBudgetRow>,
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Allowed => "allowed",
    }
}

/// Counts findings by severity: `(errors, warnings, allowed)`.
pub fn tally(findings: &[Finding]) -> (usize, usize, usize) {
    let mut e = 0;
    let mut w = 0;
    let mut a = 0;
    for f in findings {
        match f.severity {
            Severity::Error => e += 1,
            Severity::Warning => w += 1,
            Severity::Allowed => a += 1,
        }
    }
    (e, w, a)
}

/// Builds the JSON report structure.
pub fn to_json(findings: &[Finding], current: &BudgetMap, committed: &BudgetMap) -> JsonReport {
    let (errors, warnings, allowed) = tally(findings);
    let mut keys: Vec<&(String, String)> = current.keys().chain(committed.keys()).collect();
    keys.sort();
    keys.dedup();
    JsonReport {
        errors,
        warnings,
        allowed,
        findings: findings
            .iter()
            .map(|f| JsonFinding {
                rule: f.rule.to_string(),
                krate: f.krate.clone(),
                file: f.file.clone(),
                line: f.line,
                severity: severity_str(f.severity).to_string(),
                message: f.message.clone(),
                reason: f.reason.clone(),
            })
            .collect(),
        budget: keys
            .into_iter()
            .map(|k| JsonBudgetRow {
                krate: k.0.clone(),
                rule: k.1.clone(),
                current: *current.get(k).unwrap_or(&0),
                committed: *committed.get(k).unwrap_or(&0),
            })
            .collect(),
    }
}

/// Renders the human report: errors and warnings one per line, then a
/// summary. `Allowed` findings are summarized, not listed (they are the
/// justified steady state, visible in full via `--json`).
pub fn render_human(findings: &[Finding], deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in findings {
        if f.severity == Severity::Allowed {
            continue;
        }
        let loc = if f.line > 0 { format!("{}:{}", f.file, f.line) } else { f.file.clone() };
        out.push_str(&format!(
            "{}[{}] {}: {}\n",
            severity_str(f.severity),
            f.rule,
            loc,
            f.message
        ));
    }
    let (errors, warnings, allowed) = tally(findings);
    out.push_str(&format!(
        "lint: {errors} error(s), {warnings} warning(s){}, {allowed} allowed finding(s) within budget\n",
        if deny_warnings && warnings > 0 { " (denied)" } else { "" }
    ));
    out
}
