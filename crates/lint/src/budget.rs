//! The committed lint budget and its ratchet semantics.
//!
//! `lint-budget.txt` at the workspace root records, per `(crate, rule)`, how
//! many findings the tree is *allowed* to carry: pragma-justified
//! determinism sites plus raw non-hot-path panic sites. CI compares the
//! current counts against the committed file:
//!
//! * current > committed ⇒ **error** — the budget never grows silently;
//! * current < committed ⇒ **warning** suggesting `--update-budget` — the
//!   ratchet should be tightened to lock in the improvement;
//! * `--update-budget` rewrites the file to the current counts.
//!
//! Hot-path panic findings and un-pragma'd determinism findings are hard
//! errors and never appear here — the budget tracks the *justified* residue,
//! not an escape hatch.

use std::collections::BTreeMap;

use crate::rules::{Finding, PANIC_HOT_PATH, Severity};

/// Budget key: `(crate, rule)`. BTreeMap keeps the file and the comparison
/// deterministic.
pub type BudgetMap = BTreeMap<(String, String), usize>;

const HEADER: &str = "\
# Lint budget: allowed findings per (crate, rule), maintained by
# `cargo run -p routing-lint -- --update-budget`. CI fails if any count
# grows; shrinking counts produce a suggestion to re-run --update-budget.
# Format: <crate> <rule> <count>, sorted.
";

/// Tallies budgeted findings (everything with `Severity::Allowed`).
pub fn current_counts(findings: &[Finding]) -> BudgetMap {
    let mut map = BudgetMap::new();
    for f in findings {
        debug_assert!(f.rule != PANIC_HOT_PATH || f.severity == Severity::Error);
        if f.severity == Severity::Allowed {
            *map.entry((f.krate.clone(), f.rule.to_string())).or_insert(0) += 1;
        }
    }
    map
}

/// Parses a budget file. Lines: `<crate> <rule> <count>`; `#` comments and
/// blank lines ignored. Returns `Err` with a description on malformed lines.
pub fn parse(text: &str) -> Result<BudgetMap, String> {
    let mut map = BudgetMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(krate), Some(rule), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("line {}: expected `<crate> <rule> <count>`", i + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("line {}: count `{count}` is not a number", i + 1))?;
        if map.insert((krate.to_string(), rule.to_string()), count).is_some() {
            return Err(format!("line {}: duplicate entry for {krate} {rule}", i + 1));
        }
    }
    Ok(map)
}

/// Serializes a budget map in the committed format.
pub fn render(map: &BudgetMap) -> String {
    let mut out = String::from(HEADER);
    for ((krate, rule), count) in map {
        out.push_str(&format!("{krate} {rule} {count}\n"));
    }
    out
}

/// Compares current counts against the committed budget, appending findings.
pub fn compare(current: &BudgetMap, committed: &BudgetMap, findings: &mut Vec<Finding>) {
    let mut keys: Vec<&(String, String)> = current.keys().chain(committed.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let (krate, rule) = key;
        let now = *current.get(key).unwrap_or(&0);
        let budget = *committed.get(key).unwrap_or(&0);
        if now > budget {
            findings.push(Finding {
                rule: crate::rules::PANIC_BUDGET,
                krate: krate.clone(),
                file: "lint-budget.txt".to_string(),
                line: 0,
                severity: Severity::Error,
                message: format!(
                    "budget exceeded for ({krate}, {rule}): {now} findings > committed {budget}"
                ),
                reason: None,
            });
        } else if now < budget {
            findings.push(Finding {
                rule: crate::rules::PANIC_BUDGET,
                krate: krate.clone(),
                file: "lint-budget.txt".to_string(),
                line: 0,
                severity: Severity::Warning,
                message: format!(
                    "budget slack for ({krate}, {rule}): {now} findings < committed {budget}; \
                     run `cargo run -p routing-lint -- --update-budget` to ratchet down"
                ),
                reason: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allowed(krate: &str, rule: &'static str) -> Finding {
        Finding {
            rule,
            krate: krate.to_string(),
            file: "x.rs".to_string(),
            line: 1,
            severity: Severity::Allowed,
            message: String::new(),
            reason: None,
        }
    }

    #[test]
    fn roundtrip() {
        let f = vec![
            allowed("a", crate::rules::PANIC_BUDGET),
            allowed("a", crate::rules::PANIC_BUDGET),
            allowed("b", crate::rules::DET_HASH_ITER),
        ];
        let map = current_counts(&f);
        let parsed = parse(&render(&map)).unwrap();
        assert_eq!(map, parsed);
        assert_eq!(parsed[&("a".to_string(), "panic-budget".to_string())], 2);
    }

    #[test]
    fn increase_is_error_decrease_is_warning() {
        let current = current_counts(&[allowed("a", crate::rules::PANIC_BUDGET)]);
        let committed = parse("a panic-budget 2\nb det-hash-iter 0\n").unwrap();
        let mut findings = Vec::new();
        compare(&current, &committed, &mut findings);
        assert!(findings.iter().any(|f| f.severity == Severity::Warning));
        assert!(!findings.iter().any(|f| f.severity == Severity::Error));

        let committed = parse("a panic-budget 0\n").unwrap();
        let mut findings = Vec::new();
        compare(&current, &committed, &mut findings);
        assert!(findings.iter().any(|f| f.severity == Severity::Error));
    }

    #[test]
    fn malformed_budget_rejected() {
        assert!(parse("a panic-budget notanumber\n").is_err());
        assert!(parse("a panic-budget\n").is_err());
        assert!(parse("a panic-budget 1\na panic-budget 2\n").is_err());
    }
}
