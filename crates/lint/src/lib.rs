//! # routing-lint — std-only workspace static analysis
//!
//! A lightweight tokenizer/line analyzer (no `syn`, no external parser —
//! consistent with the offline `vendor/` ethos) that walks every workspace
//! crate and enforces the invariants the rest of the workspace only checks
//! at runtime:
//!
//! | rule | kind | what it pins |
//! |------|------|--------------|
//! | `det-hash-iter` | pragma-gated | no `HashMap`/`HashSet` in build-path crates without a reasoned pragma (iteration order would break bit-identical twin builds) |
//! | `det-wall-clock` | pragma-gated | no `Instant::now`/`SystemTime` in build-path crates |
//! | `det-unseeded-rng` | pragma-gated | no entropy-seeded RNG construction in build-path crates |
//! | `panic-hot-path` | hard | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in designated hot-path modules; pragmas are **not** honored |
//! | `panic-budget` | budgeted | remaining panic sites per (crate, rule) ratcheted through `lint-budget.txt` — may shrink, never grow |
//! | `forbid-unsafe` | hard | every crate root keeps `#![forbid(unsafe_code)]` |
//! | `pragma-grammar` | hard/warn | every `lint:allow` carries a rule id and non-empty reason; unused pragmas warn |
//! | `registry-coherence` | hard | registry keys == `SCHEME_METAS` rows == `src/registry.rs` doc table == README/ARCHITECTURE key lists; CI runs the lint |
//!
//! Build-path crates (`routing-par`, `routing-graph`, `routing-tree`,
//! `routing-vicinity`, `routing-core`, `routing-baselines`) are the ones
//! whose output feeds the bit-identical build invariant; serving/bench/obs
//! crates may use wall-clock and hashing freely.
//!
//! Pragma grammar: `// lint:allow(<rule-id>): <reason>` — either trailing on
//! the offending line or a standalone comment directly above it. The reason
//! is mandatory and should say why the construct cannot leak nondeterminism
//! (e.g. "keyed lookups only, never iterated").
//!
//! `#[cfg(test)]` items, `tests/`, and doc comments are exempt from all
//! per-line rules; `vendor/` and `target/` are not scanned at all.

#![forbid(unsafe_code)]

pub mod budget;
pub mod coherence;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use rules::{Finding, Severity};

/// Options for a full workspace pass.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Promote warnings to run failures (CI mode).
    pub deny_warnings: bool,
    /// Rewrite `lint-budget.txt` to the current counts instead of comparing.
    pub update_budget: bool,
}

/// Result of a full workspace pass.
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub current_budget: budget::BudgetMap,
    pub committed_budget: budget::BudgetMap,
    /// Process exit code the run should produce under `options`.
    pub exit_code: i32,
}

/// Collects the `.rs` files under `dir`, sorted for deterministic output.
fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn workspace_error(message: String) -> Finding {
    Finding {
        rule: rules::REGISTRY_COHERENCE,
        krate: "workspace".to_string(),
        file: String::new(),
        line: 0,
        severity: Severity::Error,
        message,
        reason: None,
    }
}

/// Runs every rule over the workspace rooted at `root`. Pure with respect to
/// the tree except for `--update-budget`, which rewrites `lint-budget.txt`.
pub fn run_workspace(root: &Path, options: &Options) -> Outcome {
    let mut findings: Vec<Finding> = Vec::new();

    // ---- per-file rules over every crate ----
    for spec in rules::WORKSPACE_CRATES {
        let src_dir = root.join(spec.src_dir);
        let files = match rust_files(&src_dir) {
            Ok(f) => f,
            Err(e) => {
                findings.push(workspace_error(format!(
                    "cannot walk {}: {e}",
                    src_dir.display()
                )));
                continue;
            }
        };
        let mut root_seen = false;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    findings.push(workspace_error(format!("cannot read {rel}: {e}")));
                    continue;
                }
            };
            let fa = scan::analyze(&text, rules::hot_scope(&rel));
            let mut consumed = vec![false; fa.pragmas.len()];
            rules::scan_file(spec, &rel, &fa, &mut findings, &mut consumed);
            if rel == spec.root {
                root_seen = true;
                rules::check_forbid_unsafe(spec, &fa, &mut findings);
            }
        }
        if !root_seen {
            findings.push(workspace_error(format!(
                "crate root {} not found while scanning {}",
                spec.root, spec.name
            )));
        }
    }

    // ---- registry / doc / CI coherence ----
    let keys = coherence::runtime_keys();
    coherence::check_metas(&keys, &mut findings);
    match fs::read_to_string(root.join("src/registry.rs")) {
        Ok(text) => coherence::check_registry_doc_table(&text, &keys, &mut findings),
        Err(e) => findings.push(workspace_error(format!("cannot read src/registry.rs: {e}"))),
    }
    for file in ["README.md", "docs/ARCHITECTURE.md"] {
        match fs::read_to_string(root.join(file)) {
            Ok(text) => coherence::check_doc_key_lists(file, &text, &keys, &mut findings),
            Err(e) => findings.push(workspace_error(format!("cannot read {file}: {e}"))),
        }
    }
    match fs::read_to_string(root.join(".github/workflows/ci.yml")) {
        Ok(text) => coherence::check_ci_runs_lint(&text, &mut findings),
        Err(e) => findings.push(workspace_error(format!("cannot read ci.yml: {e}"))),
    }

    // ---- budget ratchet ----
    let current = budget::current_counts(&findings);
    let budget_path = root.join("lint-budget.txt");
    let committed = if options.update_budget {
        if let Err(e) = fs::write(&budget_path, budget::render(&current)) {
            findings.push(workspace_error(format!("cannot write lint-budget.txt: {e}")));
        }
        current.clone()
    } else {
        match fs::read_to_string(&budget_path) {
            Ok(text) => match budget::parse(&text) {
                Ok(map) => map,
                Err(e) => {
                    findings.push(workspace_error(format!("lint-budget.txt: {e}")));
                    budget::BudgetMap::new()
                }
            },
            Err(_) => {
                findings.push(workspace_error(
                    "lint-budget.txt is missing; run `cargo run -p routing-lint -- --update-budget` and commit it"
                        .to_string(),
                ));
                budget::BudgetMap::new()
            }
        }
    };
    if !options.update_budget {
        budget::compare(&current, &committed, &mut findings);
    }

    let (errors, warnings, _) = report::tally(&findings);
    let exit_code =
        if errors > 0 || (options.deny_warnings && warnings > 0) { 1 } else { 0 };
    Outcome { findings, current_budget: current, committed_budget: committed, exit_code }
}

/// Locates the workspace root: `dir` itself if it holds the workspace
/// manifest, else walking up. The heuristic is the `[workspace]` manifest
/// plus `crates/` — good enough for both `cargo run` at the root and the
/// in-process test (whose CWD is the crate dir).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() && d.join("crates").is_dir() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
