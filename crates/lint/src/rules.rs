//! Rule catalog and per-file rule matching.
//!
//! Three rule *kinds* with different enforcement semantics:
//!
//! * **Pragma-gated** (the `det-*` determinism family): every match in a
//!   build-path crate is an error unless the line carries a
//!   `// lint:allow(rule): reason` pragma; pragma'd matches are counted in
//!   the committed budget file so the justified population is ratcheted too.
//! * **Budgeted** (`panic-budget`): matches outside hot paths are not
//!   individually erroneous, but the per-(crate, rule) count is compared to
//!   the committed budget — above ⇒ error, below ⇒ suggestion to tighten.
//! * **Hard** (`panic-hot-path`, `forbid-unsafe`, `pragma-grammar`,
//!   `registry-coherence`): always an error; pragmas are *not* honored —
//!   there is deliberately no annotation that lets a panic back into a
//!   hot-path module.

use crate::scan::{FileAnalysis, HotScope, find_token};

/// Rule identifiers (stable strings: used in pragmas and the budget file).
pub const DET_HASH_ITER: &str = "det-hash-iter";
pub const DET_WALL_CLOCK: &str = "det-wall-clock";
pub const DET_UNSEEDED_RNG: &str = "det-unseeded-rng";
pub const PANIC_HOT_PATH: &str = "panic-hot-path";
pub const PANIC_BUDGET: &str = "panic-budget";
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
pub const PRAGMA_GRAMMAR: &str = "pragma-grammar";
pub const REGISTRY_COHERENCE: &str = "registry-coherence";

/// All rule ids, for pragma validation and documentation.
pub const ALL_RULES: &[&str] = &[
    DET_HASH_ITER,
    DET_WALL_CLOCK,
    DET_UNSEEDED_RNG,
    PANIC_HOT_PATH,
    PANIC_BUDGET,
    FORBID_UNSAFE,
    PRAGMA_GRAMMAR,
    REGISTRY_COHERENCE,
];

/// Rules a `lint:allow` pragma may name (the pragma-gated family plus
/// `panic-budget`, where a pragma documents a site without excusing it from
/// the count).
pub const PRAGMA_RULES: &[&str] =
    &[DET_HASH_ITER, DET_WALL_CLOCK, DET_UNSEEDED_RNG, PANIC_BUDGET];

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run unconditionally.
    Error,
    /// Fails the run only under `--deny-warnings`.
    Warning,
    /// Informational: a pragma-justified or budgeted match. Never fails the
    /// run by itself, but feeds the budget counts.
    Allowed,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub krate: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line; 0 for file- or workspace-level findings.
    pub line: usize,
    pub severity: Severity,
    pub message: String,
    /// Pragma reason, for `Allowed` findings justified by annotation.
    pub reason: Option<String>,
}

/// A workspace crate the lint walks.
pub struct CrateSpec {
    /// Package name as findings and the budget file report it.
    pub name: &'static str,
    /// Source directory, workspace-relative (`src` for the facade crate).
    pub src_dir: &'static str,
    /// Crate-root file, workspace-relative (checked for `#![forbid(unsafe_code)]`).
    pub root: &'static str,
    /// Determinism rules apply (preprocessing/build-path crates only: these
    /// feed the bit-identical twin-build invariant).
    pub build_path: bool,
}

/// Every crate the pass covers. `vendor/` stand-ins are external code and the
/// `target/` tree is generated; neither is scanned.
pub const WORKSPACE_CRATES: &[CrateSpec] = &[
    CrateSpec { name: "compact-routing", src_dir: "src", root: "src/lib.rs", build_path: false },
    CrateSpec { name: "routing-par", src_dir: "crates/par/src", root: "crates/par/src/lib.rs", build_path: true },
    CrateSpec { name: "routing-obs", src_dir: "crates/obs/src", root: "crates/obs/src/lib.rs", build_path: false },
    CrateSpec { name: "routing-graph", src_dir: "crates/graph/src", root: "crates/graph/src/lib.rs", build_path: true },
    CrateSpec { name: "routing-model", src_dir: "crates/model/src", root: "crates/model/src/lib.rs", build_path: false },
    CrateSpec { name: "routing-tree", src_dir: "crates/tree/src", root: "crates/tree/src/lib.rs", build_path: true },
    CrateSpec { name: "routing-vicinity", src_dir: "crates/vicinity/src", root: "crates/vicinity/src/lib.rs", build_path: true },
    CrateSpec { name: "routing-core", src_dir: "crates/core/src", root: "crates/core/src/lib.rs", build_path: true },
    CrateSpec { name: "routing-baselines", src_dir: "crates/baselines/src", root: "crates/baselines/src/lib.rs", build_path: true },
    CrateSpec { name: "routing-churn", src_dir: "crates/churn/src", root: "crates/churn/src/lib.rs", build_path: false },
    CrateSpec { name: "routing-serve", src_dir: "crates/serve/src", root: "crates/serve/src/lib.rs", build_path: false },
    CrateSpec { name: "routing-bench", src_dir: "crates/bench/src", root: "crates/bench/src/lib.rs", build_path: false },
    CrateSpec { name: "routing-lint", src_dir: "crates/lint/src", root: "crates/lint/src/lib.rs", build_path: false },
];

/// Hard panic-ban scopes, keyed by workspace-relative file path. These are
/// the routed-query hot paths: `graph::scratch` (query scratchpad),
/// `model::simulate_lean*` + `record_delivery` (zero-alloc simulation),
/// `serve::engine`/`snapshot` (the serving data plane), and the `obs`
/// disabled paths (span/metric fast-outs that run even when telemetry is
/// off).
pub const HOT_PATHS: &[(&str, HotScope)] = &[
    ("crates/graph/src/scratch.rs", HotScope::File),
    ("crates/model/src/simulator.rs", HotScope::FnPrefixes(&["simulate_lean", "record_delivery"])),
    ("crates/serve/src/engine.rs", HotScope::File),
    ("crates/serve/src/snapshot.rs", HotScope::File),
    ("crates/obs/src/profile.rs", HotScope::FnPrefixes(&["span", "profiling_enabled"])),
    ("crates/obs/src/metrics.rs", HotScope::FnPrefixes(&["metrics_enabled", "inc", "add"])),
];

/// Returns the hot scope for a workspace-relative path, if designated.
pub fn hot_scope(rel_path: &str) -> Option<HotScope> {
    HOT_PATHS.iter().find(|(p, _)| *p == rel_path).map(|(_, s)| *s)
}

/// Panic-family tokens. `(`/`!` suffixes pin call/macro syntax so
/// `unwrap_or`, `expect_err`, and `#[should_panic(..)]` do not match.
/// `assert!`/`debug_assert!` are deliberately NOT forbidden: they document
/// invariants and compile out (debug) or fail loudly on logic errors, which
/// is the desired behavior even on hot paths.
const PANIC_TOKENS: &[&str] =
    &["unwrap(", "expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Wall-clock tokens (nondeterministic inputs to a build path).
const WALL_CLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime"];

/// Unseeded-RNG constructors. The vendored `rand` stand-in only exposes
/// `seed_from_u64`, so matches can only appear if someone reintroduces an
/// entropy-seeded constructor — exactly the regression this rule pins.
const UNSEEDED_RNG_TOKENS: &[&str] =
    &["from_entropy", "thread_rng", "OsRng", "from_os_rng"];

/// Runs the per-line rules over one analyzed file. Pushes findings and
/// records which pragmas were consumed (index into `fa.pragmas`).
pub fn scan_file(
    spec: &CrateSpec,
    rel_path: &str,
    fa: &FileAnalysis,
    findings: &mut Vec<Finding>,
    consumed: &mut [bool],
) {
    for line in &fa.lines {
        if line.in_test {
            continue;
        }
        let trimmed = line.code.trim_start();
        let is_import = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");

        // Panic family: hard error in hot regions, budgeted elsewhere.
        for token in PANIC_TOKENS {
            if find_token(&line.code, token).is_some() {
                let display = token.trim_end_matches('(');
                if line.hot {
                    findings.push(Finding {
                        rule: PANIC_HOT_PATH,
                        krate: spec.name.to_string(),
                        file: rel_path.to_string(),
                        line: line.number,
                        severity: Severity::Error,
                        message: format!(
                            "`{display}` in a designated hot-path region (pragmas are not honored here)"
                        ),
                        reason: None,
                    });
                } else {
                    let reason = pragma_reason(fa, line.pragma, PANIC_BUDGET, consumed);
                    findings.push(Finding {
                        rule: PANIC_BUDGET,
                        krate: spec.name.to_string(),
                        file: rel_path.to_string(),
                        line: line.number,
                        severity: Severity::Allowed,
                        message: format!("`{display}` outside hot paths (counted against the budget)"),
                        reason,
                    });
                }
            }
        }

        if !spec.build_path {
            continue;
        }

        // det-hash-iter: any non-import HashMap/HashSet mention. A line
        // scanner cannot see the `for (k, v) in &map` iteration itself (no
        // type name on that line), so the rule anchors on the declaration /
        // construction / type-mention sites and the pragma reason must argue
        // the map's *whole usage* never leaks iteration order.
        if !is_import {
            for token in ["HashMap", "HashSet"] {
                if find_token(&line.code, token).is_some() {
                    push_gated(
                        findings, fa, line, spec, rel_path, DET_HASH_ITER, consumed,
                        format!("`{token}` in a build-path crate: iteration order is nondeterministic"),
                    );
                    break; // one finding per line even if both tokens appear
                }
            }
        }

        for token in WALL_CLOCK_TOKENS {
            if find_token(&line.code, token).is_some() {
                push_gated(
                    findings, fa, line, spec, rel_path, DET_WALL_CLOCK, consumed,
                    format!("`{token}` in a build-path crate: wall-clock is nondeterministic input"),
                );
            }
        }
        for token in UNSEEDED_RNG_TOKENS {
            if find_token(&line.code, token).is_some() {
                push_gated(
                    findings, fa, line, spec, rel_path, DET_UNSEEDED_RNG, consumed,
                    format!("`{token}` in a build-path crate: entropy-seeded RNG breaks twin-build identity"),
                );
            }
        }
    }

    // Pragma hygiene for this file: malformed pragmas are hard errors;
    // pragmas naming unknown/non-pragma rules are hard errors; pragmas that
    // matched no finding are warnings (stale annotations rot).
    for m in &fa.malformed {
        findings.push(Finding {
            rule: PRAGMA_GRAMMAR,
            krate: spec.name.to_string(),
            file: rel_path.to_string(),
            line: m.line,
            severity: Severity::Error,
            message: format!("malformed lint:allow pragma: {}", m.detail),
            reason: None,
        });
    }
    for (i, p) in fa.pragmas.iter().enumerate() {
        if !PRAGMA_RULES.contains(&p.rule.as_str()) {
            let hint = if ALL_RULES.contains(&p.rule.as_str()) {
                "this rule does not honor pragmas"
            } else {
                "unknown rule id"
            };
            findings.push(Finding {
                rule: PRAGMA_GRAMMAR,
                krate: spec.name.to_string(),
                file: rel_path.to_string(),
                line: p.line,
                severity: Severity::Error,
                message: format!("lint:allow({}): {hint}", p.rule),
                reason: None,
            });
        } else if !consumed[i] {
            findings.push(Finding {
                rule: PRAGMA_GRAMMAR,
                krate: spec.name.to_string(),
                file: rel_path.to_string(),
                line: p.line,
                severity: Severity::Warning,
                message: format!(
                    "unused lint:allow({}) pragma: no matching finding on the governed line",
                    p.rule
                ),
                reason: None,
            });
        }
    }
}

/// Looks up (and consumes) a pragma for `rule` on the line, returning its
/// reason.
fn pragma_reason(
    fa: &FileAnalysis,
    pragma: Option<usize>,
    rule: &str,
    consumed: &mut [bool],
) -> Option<String> {
    let idx = pragma?;
    if fa.pragmas[idx].rule == rule {
        consumed[idx] = true;
        Some(fa.pragmas[idx].reason.clone())
    } else {
        None
    }
}

/// Pushes a pragma-gated determinism finding: `Allowed` when justified,
/// `Error` otherwise.
#[allow(clippy::too_many_arguments)]
fn push_gated(
    findings: &mut Vec<Finding>,
    fa: &FileAnalysis,
    line: &crate::scan::LineInfo,
    spec: &CrateSpec,
    rel_path: &str,
    rule: &'static str,
    consumed: &mut [bool],
    message: String,
) {
    let reason = pragma_reason(fa, line.pragma, rule, consumed);
    let severity = if reason.is_some() { Severity::Allowed } else { Severity::Error };
    let message = if reason.is_some() {
        message
    } else {
        format!("{message}; annotate `// lint:allow({rule}): <reason>` or restructure")
    };
    findings.push(Finding {
        rule,
        krate: spec.name.to_string(),
        file: rel_path.to_string(),
        line: line.number,
        severity,
        message,
        reason,
    });
}

/// Checks the crate root for `#![forbid(unsafe_code)]`.
pub fn check_forbid_unsafe(
    spec: &CrateSpec,
    root_analysis: &FileAnalysis,
    findings: &mut Vec<Finding>,
) {
    let has = root_analysis
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !has {
        findings.push(Finding {
            rule: FORBID_UNSAFE,
            krate: spec.name.to_string(),
            file: spec.root.to_string(),
            line: 0,
            severity: Severity::Error,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            reason: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::analyze;

    fn run(src: &str, build_path: bool, hot: Option<HotScope>) -> Vec<Finding> {
        let spec = CrateSpec {
            name: "fixture",
            src_dir: "fixture/src",
            root: "fixture/src/lib.rs",
            build_path,
        };
        let fa = analyze(src, hot);
        let mut findings = Vec::new();
        let mut consumed = vec![false; fa.pragmas.len()];
        scan_file(&spec, "fixture/src/lib.rs", &fa, &mut findings, &mut consumed);
        findings
    }

    fn errors<'a>(f: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
        f.iter().filter(|x| x.rule == rule && x.severity == Severity::Error).collect()
    }

    // ---- det-hash-iter ----

    #[test]
    fn det_hash_positive() {
        let f = run("fn build() { let m = std::collections::HashMap::new(); }\n", true, None);
        let e = errors(&f, DET_HASH_ITER);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].line, 1);
    }

    #[test]
    fn det_hash_negative_pragma_and_imports_and_non_build_path() {
        let pragma =
            "fn b() { let m = HashMap::new(); } // lint:allow(det-hash-iter): keyed lookups only\n";
        assert!(errors(&run(pragma, true, None), DET_HASH_ITER).is_empty());
        let import = "use std::collections::HashMap;\n";
        assert!(errors(&run(import, true, None), DET_HASH_ITER).is_empty());
        let non_build = "fn b() { let m = HashMap::new(); }\n";
        assert!(errors(&run(non_build, false, None), DET_HASH_ITER).is_empty());
    }

    // ---- det-wall-clock ----

    #[test]
    fn det_wall_clock_positive() {
        let f = run("fn b() { let t = Instant::now(); }\n", true, None);
        assert_eq!(errors(&f, DET_WALL_CLOCK).len(), 1);
    }

    #[test]
    fn det_wall_clock_negative() {
        let f = run(
            "fn b() { let t = Instant::now(); } // lint:allow(det-wall-clock): diag only, not in output\n",
            true,
            None,
        );
        assert!(errors(&f, DET_WALL_CLOCK).is_empty());
        assert!(f.iter().any(|x| x.severity == Severity::Allowed && x.rule == DET_WALL_CLOCK));
    }

    // ---- det-unseeded-rng ----

    #[test]
    fn det_unseeded_rng_positive() {
        let f = run("fn b() { let r = SmallRng::from_entropy(); }\n", true, None);
        assert_eq!(errors(&f, DET_UNSEEDED_RNG).len(), 1);
    }

    #[test]
    fn det_unseeded_rng_negative_seeded_ok() {
        let f = run("fn b() { let r = SmallRng::seed_from_u64(42); }\n", true, None);
        assert!(errors(&f, DET_UNSEEDED_RNG).is_empty());
    }

    // ---- panic-hot-path / panic-budget ----

    #[test]
    fn panic_hot_path_positive_even_with_pragma() {
        let src = "fn f() { x.unwrap(); } // lint:allow(panic-budget): pragmas don't excuse hot paths\n";
        let f = run(src, false, Some(HotScope::File));
        assert_eq!(errors(&f, PANIC_HOT_PATH).len(), 1);
    }

    #[test]
    fn panic_hot_path_negative_unwrap_or_and_tests_ok() {
        let src = "fn f() { x.unwrap_or(0); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let f = run(src, false, Some(HotScope::File));
        assert!(errors(&f, PANIC_HOT_PATH).is_empty());
    }

    #[test]
    fn panic_budget_counts_outside_hot_paths() {
        let f = run("fn f() { x.unwrap(); y.expect(\"m\"); }\n", false, None);
        let budgeted: Vec<_> = f.iter().filter(|x| x.rule == PANIC_BUDGET).collect();
        assert_eq!(budgeted.len(), 2);
        assert!(budgeted.iter().all(|x| x.severity == Severity::Allowed));
    }

    // ---- forbid-unsafe ----

    #[test]
    fn forbid_unsafe_positive_and_negative() {
        let spec = CrateSpec {
            name: "fixture",
            src_dir: "fixture/src",
            root: "fixture/src/lib.rs",
            build_path: false,
        };
        let mut f = Vec::new();
        check_forbid_unsafe(&spec, &analyze("pub fn x() {}\n", None), &mut f);
        assert_eq!(errors(&f, FORBID_UNSAFE).len(), 1);
        let mut f2 = Vec::new();
        check_forbid_unsafe(&spec, &analyze("#![forbid(unsafe_code)]\npub fn x() {}\n", None), &mut f2);
        assert!(f2.is_empty());
    }

    // ---- pragma-grammar ----

    #[test]
    fn pragma_grammar_positive_malformed_unknown_unused() {
        let malformed = run("let x = 1; // lint:allow(det-hash-iter) no colon\n", true, None);
        assert_eq!(errors(&malformed, PRAGMA_GRAMMAR).len(), 1);

        let unknown = run("let m = HashMap::new(); // lint:allow(not-a-rule): whatever\n", true, None);
        assert!(!errors(&unknown, PRAGMA_GRAMMAR).is_empty());

        let unused = run("let x = 1; // lint:allow(det-hash-iter): nothing here matches\n", true, None);
        assert!(unused
            .iter()
            .any(|x| x.rule == PRAGMA_GRAMMAR && x.severity == Severity::Warning));
    }

    #[test]
    fn pragma_grammar_negative_consumed_pragma_is_clean() {
        let f = run(
            "let m = HashMap::new(); // lint:allow(det-hash-iter): lookup-only table\n",
            true,
            None,
        );
        assert!(errors(&f, PRAGMA_GRAMMAR).is_empty());
        assert!(!f.iter().any(|x| x.rule == PRAGMA_GRAMMAR));
    }
}
