//! `lint` — the workspace static-analysis binary.
//!
//! ```text
//! cargo run -p routing-lint -- [--root DIR] [--deny-warnings]
//!                              [--update-budget] [--json PATH]
//! ```
//!
//! Exit codes: 0 clean (warnings allowed unless denied), 1 findings failed
//! the run, 2 usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use routing_lint::{find_root, report, run_workspace, Options};

const USAGE: &str = "\
usage: lint [--root DIR] [--deny-warnings] [--update-budget] [--json PATH]
  --root DIR        workspace root (default: auto-detect from CWD)
  --deny-warnings   promote warnings (budget slack, unused pragmas) to failures
  --update-budget   rewrite lint-budget.txt to the current counts
  --json PATH       also write a machine-readable JSON report
";

fn main() -> ExitCode {
    let mut options = Options::default();
    let mut root_arg: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => options.deny_warnings = true,
            "--update-budget" => options.update_budget = true,
            "--root" => match args.next() {
                Some(d) => root_arg = Some(PathBuf::from(d)),
                None => return usage_error("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("lint: cannot locate the workspace root; pass --root DIR");
            return ExitCode::from(2);
        }
    };

    let outcome = run_workspace(&root, &options);

    if let Some(path) = json_path {
        let json = report::to_json(
            &outcome.findings,
            &outcome.current_budget,
            &outcome.committed_budget,
        );
        match serde_json::to_string_pretty(&json) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            Err(e) => {
                eprintln!("lint: JSON serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    print!("{}", report::render_human(&outcome.findings, options.deny_warnings));
    if options.update_budget {
        println!(
            "lint: wrote lint-budget.txt ({} budget rows)",
            outcome.current_budget.len()
        );
    } else {
        // Show the budget position so a green run still reports the ratchet.
        let spent: usize = outcome.current_budget.values().sum();
        let cap: usize = outcome.committed_budget.values().sum();
        println!("lint: budget position {spent}/{cap} across {} (crate, rule) rows",
            budget_rows(&outcome));
    }
    ExitCode::from(outcome.exit_code as u8)
}

fn budget_rows(outcome: &routing_lint::Outcome) -> usize {
    let mut keys: Vec<&(String, String)> = outcome
        .current_budget
        .keys()
        .chain(outcome.committed_budget.keys())
        .collect();
    keys.sort();
    keys.dedup();
    keys.len()
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lint: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
