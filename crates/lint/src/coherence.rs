//! Registry / doc / CI coherence checks.
//!
//! Ground truth for the scheme-key universe is the *running code*: the
//! ordered name list of `SchemeRegistry::with_defaults()` (this crate links
//! the real registry rather than re-listing the keys, so the lint cannot
//! itself drift). Against that the rule checks:
//!
//! * the harness `SCHEME_METAS` rows cover the registry in order (the same
//!   invariant `assert_meta_covers_registry` enforces at binary startup —
//!   duplicated here so drift fails in CI before any binary runs);
//! * the scheme table in `src/registry.rs`'s module docs lists exactly the
//!   registered keys in order;
//! * every "full key list" in README.md and docs/ARCHITECTURE.md matches —
//!   a *full list* being any run of backticked identifiers (or one
//!   comma-separated backticked span) containing at least five registry
//!   keys, which skips intentional subsets like `--schemes` defaults;
//! * `.github/workflows/ci.yml` actually runs this lint with
//!   `--deny-warnings` (the lint's registry check replaced the old
//!   registry-key grep there, so CI must keep invoking it).

use crate::rules::{Finding, REGISTRY_COHERENCE, Severity};

fn error(file: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: REGISTRY_COHERENCE,
        krate: "workspace".to_string(),
        file: file.to_string(),
        line,
        severity: Severity::Error,
        message,
        reason: None,
    }
}

/// The registry keys as the running code reports them, in registration order.
pub fn runtime_keys() -> Vec<String> {
    compact_routing::registry::SchemeRegistry::with_defaults()
        .names()
        .into_iter()
        .map(|s| s.to_string())
        .collect()
}

/// Checks SCHEME_METAS against the registry keys (ordered).
pub fn check_metas(keys: &[String], findings: &mut Vec<Finding>) {
    let meta_keys: Vec<&str> = routing_bench::SCHEME_METAS.iter().map(|m| m.key).collect();
    if meta_keys != keys.iter().map(String::as_str).collect::<Vec<_>>() {
        findings.push(error(
            "crates/bench/src/lib.rs",
            0,
            format!(
                "SCHEME_METAS keys {meta_keys:?} disagree with registry keys {keys:?} (order matters)"
            ),
        ));
    }
}

/// Checks the module-doc scheme table in `src/registry.rs`: rows of the form
/// ``//! | `key` | ... |`` must list exactly the registry keys, in order.
pub fn check_registry_doc_table(text: &str, keys: &[String], findings: &mut Vec<Finding>) {
    let mut table_keys: Vec<(usize, String)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("//! | `") else { continue };
        let Some(end) = rest.find('`') else { continue };
        table_keys.push((i + 1, rest[..end].to_string()));
    }
    let listed: Vec<&str> = table_keys.iter().map(|(_, k)| k.as_str()).collect();
    if listed != keys.iter().map(String::as_str).collect::<Vec<_>>() {
        let line = table_keys.first().map(|(l, _)| *l).unwrap_or(0);
        findings.push(error(
            "src/registry.rs",
            line,
            format!(
                "module-doc scheme table lists {listed:?} but the registry registers {keys:?}"
            ),
        ));
    }
}

/// Extracts candidate key lists from markdown-ish text: runs of consecutive
/// backticked single identifiers separated only by commas/whitespace, plus
/// single backticked spans containing a comma-separated list. Returns
/// `(line, tokens)` per candidate.
pub fn extract_key_lists(text: &str) -> Vec<(usize, Vec<String>)> {
    // Locate backtick spans with their line numbers.
    let mut spans: Vec<(usize, usize, String)> = Vec::new(); // (byte_start, line, content)
    let mut line = 1usize;
    let mut open: Option<(usize, usize)> = None; // (byte index after `, line)
    for (i, c) in text.char_indices() {
        if c == '\n' {
            line += 1;
        }
        if c == '`' {
            match open.take() {
                None => open = Some((i + 1, line)),
                Some((start, start_line)) => {
                    spans.push((start, start_line, text[start..i].to_string()));
                }
            }
        }
    }

    let ident_ok = |s: &str| {
        !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-')
    };
    let mut out: Vec<(usize, Vec<String>)> = Vec::new();
    let mut run: Vec<String> = Vec::new();
    let mut run_line = 0usize;
    let mut prev_end: Option<usize> = None;
    let flush = |run: &mut Vec<String>, run_line: usize, out: &mut Vec<(usize, Vec<String>)>| {
        if run.len() >= 2 {
            out.push((run_line, std::mem::take(run)));
        } else {
            run.clear();
        }
    };
    for (start, span_line, content) in &spans {
        // A single span holding a comma list is its own candidate.
        if content.contains(',') {
            flush(&mut run, run_line, &mut out);
            let tokens: Vec<String> =
                content.split(',').map(|t| t.trim().to_string()).collect();
            if tokens.iter().all(|t| ident_ok(t)) {
                out.push((*span_line, tokens));
            }
            prev_end = Some(start + content.len() + 1);
            continue;
        }
        if !ident_ok(content) {
            flush(&mut run, run_line, &mut out);
            prev_end = Some(start + content.len() + 1);
            continue;
        }
        let gap_ok = match prev_end {
            Some(end) if !run.is_empty() => text[end..start - 1]
                .chars()
                .all(|c| c == ',' || c.is_whitespace()),
            _ => false,
        };
        if !gap_ok {
            flush(&mut run, run_line, &mut out);
            run_line = *span_line;
        }
        run.push(content.clone());
        prev_end = Some(start + content.len() + 1);
    }
    flush(&mut run, run_line, &mut out);
    out
}

/// Checks one doc file: every candidate list containing ≥ 5 registry keys
/// must equal the registry key list exactly (same order, nothing extra).
pub fn check_doc_key_lists(
    file: &str,
    text: &str,
    keys: &[String],
    findings: &mut Vec<Finding>,
) {
    let key_set: Vec<&str> = keys.iter().map(String::as_str).collect();
    let mut full_lists = 0usize;
    for (line, tokens) in extract_key_lists(text) {
        let hits = tokens.iter().filter(|t| key_set.contains(&t.as_str())).count();
        if hits < 5 {
            continue; // intentional subset (e.g. a --schemes default)
        }
        full_lists += 1;
        if tokens != keys {
            findings.push(error(
                file,
                line,
                format!(
                    "scheme key list {tokens:?} disagrees with the registry {keys:?} (order matters)"
                ),
            ));
        }
    }
    if full_lists == 0 {
        findings.push(error(
            file,
            0,
            "no full scheme-key list found; the doc must enumerate every registered scheme"
                .to_string(),
        ));
    }
}

/// Checks that CI still runs the lint in deny mode.
pub fn check_ci_runs_lint(ci_text: &str, findings: &mut Vec<Finding>) {
    let runs = ci_text.contains("-p routing-lint") && ci_text.contains("--deny-warnings");
    if !runs {
        findings.push(error(
            ".github/workflows/ci.yml",
            0,
            "CI does not run `cargo run -p routing-lint -- --deny-warnings`; the registry \
             coherence check (which replaced the old key grep) would never execute"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<String> {
        ["warmup", "thm10", "thm11", "tz2", "tz3"].iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn doc_table_positive_and_negative() {
        let good = "//! | `warmup` | x |\n//! | `thm10` | x |\n//! | `thm11` | x |\n//! | `tz2` | x |\n//! | `tz3` | x |\n";
        let mut f = Vec::new();
        check_registry_doc_table(good, &keys(), &mut f);
        assert!(f.is_empty());

        let stale = "//! | `warmup` | x |\n//! | `thm10` | x |\n";
        let mut f = Vec::new();
        check_registry_doc_table(stale, &keys(), &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, REGISTRY_COHERENCE);
    }

    #[test]
    fn backtick_run_extraction() {
        let text = "registers `warmup`, `thm10`, `thm11`, `tz2`,\n`tz3` — exactly those.\nDefault is `tz2,warmup` here.";
        let lists = extract_key_lists(text);
        assert!(lists.iter().any(|(_, t)| t.len() == 5 && t[0] == "warmup" && t[4] == "tz3"));
        assert!(lists.iter().any(|(_, t)| t == &["tz2", "warmup"]));
    }

    #[test]
    fn doc_key_lists_positive_and_negative() {
        let good = "All schemes: `warmup`, `thm10`, `thm11`, `tz2`, `tz3`.\nDefault: `tz2,warmup`.";
        let mut f = Vec::new();
        check_doc_key_lists("README.md", good, &keys(), &mut f);
        assert!(f.is_empty(), "{f:?}");

        // A full list that dropped a key (≥5 registry keys still matched
        // would be <5 here, so drop only reordering case): reorder instead.
        let reordered = "All schemes: `thm10`, `warmup`, `thm11`, `tz2`, `tz3`.";
        let mut f = Vec::new();
        check_doc_key_lists("README.md", reordered, &keys(), &mut f);
        assert_eq!(f.len(), 1);

        // Extra key appended to the full list.
        let extra = "All: `warmup`, `thm10`, `thm11`, `tz2`, `tz3`, `thm99`.";
        let mut f = Vec::new();
        check_doc_key_lists("README.md", extra, &keys(), &mut f);
        assert_eq!(f.len(), 1);

        // No full list at all.
        let missing = "Only `tz2` and `warmup` are mentioned.";
        let mut f = Vec::new();
        check_doc_key_lists("README.md", missing, &keys(), &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn ci_check_positive_and_negative() {
        let mut f = Vec::new();
        check_ci_runs_lint("run: cargo run --release -p routing-lint -- --deny-warnings", &mut f);
        assert!(f.is_empty());
        let mut f = Vec::new();
        check_ci_runs_lint("run: cargo test", &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn metas_match_runtime_registry() {
        // The real invariant on the real workspace: metas cover the registry.
        let keys = runtime_keys();
        let mut f = Vec::new();
        check_metas(&keys, &mut f);
        assert!(f.is_empty(), "{f:?}");
    }
}
