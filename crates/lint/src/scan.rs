//! Line-level Rust source scanner.
//!
//! The lint deliberately avoids a full parser (`syn` is not vendored and the
//! offline ethos of the workspace forbids adding it). Instead this module
//! does the minimum lexical work needed for reliable *token* matching:
//!
//! * strips `//` line comments, nested `/* */` block comments, ordinary and
//!   raw string literals, and char literals (while not being fooled by
//!   lifetimes such as `&'static str`), so rule tokens are only matched
//!   against real code;
//! * tracks brace depth per line, which lets later passes delimit regions:
//!   `#[cfg(test)]` items (excluded from all rules) and designated hot-path
//!   functions (subject to the hard panic ban);
//! * extracts `// lint:allow(rule): reason` pragmas from the comment text,
//!   attaching a standalone pragma comment to the next code-bearing line and
//!   a trailing pragma to its own line.
//!
//! The output is a [`FileAnalysis`]: one [`LineInfo`] per source line with
//! the stripped code, region flags, and any attached pragma. Rule matching
//! itself lives in `rules.rs`.

/// A `// lint:allow(rule): reason` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Rule id inside the parentheses (not yet validated against the rule
    /// table; `rules.rs` reports unknown ids).
    pub rule: String,
    /// Free-text justification after the colon. Grammar requires non-empty.
    pub reason: String,
    /// 1-based line the pragma comment itself sits on.
    pub line: usize,
}

/// A pragma comment that did not parse: reported as a `pragma-grammar` error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedPragma {
    pub line: usize,
    pub detail: String,
}

/// Per-line scan result.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// 1-based line number.
    pub number: usize,
    /// Source text with comments, string contents, and char literals blanked.
    pub code: String,
    /// Comment text of the line (line-comment body; used for pragma parsing).
    pub comment: String,
    /// Inside a `#[cfg(test)]` item (module, fn, or impl).
    pub in_test: bool,
    /// Inside a designated hot-path region (whole file or matched fn body).
    pub hot: bool,
    /// Pragma governing this line (own trailing pragma, or a standalone
    /// pragma comment directly above). Index into `FileAnalysis::pragmas`.
    pub pragma: Option<usize>,
}

/// Which part of a file the hard panic ban covers.
#[derive(Debug, Clone, Copy)]
pub enum HotScope {
    /// Every non-test line of the file.
    File,
    /// Only bodies of functions whose name starts with one of the prefixes.
    FnPrefixes(&'static [&'static str]),
}

/// Full scan of one source file.
#[derive(Debug)]
pub struct FileAnalysis {
    pub lines: Vec<LineInfo>,
    pub pragmas: Vec<Pragma>,
    pub malformed: Vec<MalformedPragma>,
}

/// Lexer state carried across lines (strings and block comments span lines).
enum Mode {
    Code,
    /// Nested block comment depth (Rust block comments nest).
    Block(usize),
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`.
    RawStr(usize),
}

/// Strips comments/strings from `text`, producing per-line (code, comment)
/// pairs. Comment text keeps only line-comment bodies — pragmas are required
/// to be `//` comments, so block-comment text is discarded.
fn strip(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw_line in text.lines() {
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(bytes.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < bytes.len() {
            match mode {
                Mode::Block(depth) => {
                    if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        i += 2; // skip the escaped char (works for \" and \\)
                    } else if bytes[i] == '"' {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == '"'
                        && i + 1 + hashes <= bytes.len()
                        && bytes[i + 1..i + 1 + hashes].iter().all(|c| *c == '#')
                    {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: keep body (minus the slashes and any
                        // doc-comment marker) for pragma parsing, then stop.
                        let mut body: String = bytes[i + 2..].iter().collect();
                        if body.starts_with('/') || body.starts_with('!') {
                            body.remove(0);
                        }
                        comment = body;
                        break;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&code)
                        && matches!(bytes.get(i + 1), Some('"') | Some('#'))
                    {
                        // r"..." or r#"..."# raw string.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            mode = Mode::RawStr(hashes);
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == 'b' && !prev_is_ident(&code) && bytes.get(i + 1) == Some(&'"') {
                        mode = Mode::Str;
                        code.push('"');
                        i += 2;
                    } else if c == '\'' {
                        // Char literal vs lifetime. A char literal is 'x' or
                        // an escape like '\n' / '\u{..}'; a lifetime is a '
                        // followed by an identifier with no closing quote.
                        if let Some(skip) = char_literal_len(&bytes[i..]) {
                            code.push('\'');
                            i += skip;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push((code, comment));
    }
    out
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `chars` (starting at a `'`) begins a char literal, returns its total
/// length in chars; `None` means it is a lifetime.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    debug_assert!(chars[0] == '\'');
    match chars.get(1)? {
        '\\' => {
            // Escape: scan to the closing quote (bounded — escapes are short).
            for (j, c) in chars.iter().enumerate().skip(2).take(10) {
                if *c == '\'' {
                    return Some(j + 1);
                }
            }
            None
        }
        _ => {
            if chars.get(2) == Some(&'\'') {
                Some(3)
            } else {
                None
            }
        }
    }
}

/// Parses a pragma out of a line comment body, if present. The comment must
/// *be* the pragma (start with `lint:allow` after whitespace) — prose that
/// merely mentions the pragma syntax, e.g. in doc comments, is not one.
fn parse_pragma(comment: &str, line: usize) -> Option<Result<Pragma, MalformedPragma>> {
    let trimmed = comment.trim_start();
    if !trimmed.starts_with("lint:allow") {
        return None;
    }
    let rest = &trimmed["lint:allow".len()..];
    let malformed = |detail: &str| {
        Some(Err(MalformedPragma { line, detail: detail.to_string() }))
    };
    let Some(rest) = rest.strip_prefix('(') else {
        return malformed("expected `(` after `lint:allow`");
    };
    let Some(close) = rest.find(')') else {
        return malformed("unclosed `(` in `lint:allow(...)`");
    };
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return malformed("empty rule id in `lint:allow(...)`");
    }
    let after = &rest[close + 1..];
    let Some(reason) = after.trim_start().strip_prefix(':') else {
        return malformed("expected `: <reason>` after `lint:allow(rule)`");
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return malformed("empty reason after `lint:allow(rule):`");
    }
    Some(Ok(Pragma { rule, reason, line }))
}

/// Region tracker state: a region entered at `close_depth` ends once brace
/// depth returns to that value.
struct Region {
    test: bool,
    hot: bool,
    close_depth: i64,
}

/// Scans one file's text. `hot` is the hard panic-ban scope for the file,
/// if any.
pub fn analyze(text: &str, hot: Option<HotScope>) -> FileAnalysis {
    let stripped = strip(text);
    let mut lines = Vec::with_capacity(stripped.len());
    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut malformed: Vec<MalformedPragma> = Vec::new();
    // Standalone pragma waiting for the next code-bearing line.
    let mut pending_pragma: Option<usize> = None;
    // `#[cfg(test)]` / hot-fn marker seen; waiting for the opening `{`.
    let mut pending_test = false;
    let mut pending_hot = false;
    let mut regions: Vec<Region> = Vec::new();
    let mut depth: i64 = 0;
    let whole_file_hot = matches!(hot, Some(HotScope::File));

    for (idx, (code, comment)) in stripped.iter().enumerate() {
        let number = idx + 1;
        let depth_start = depth;
        let opens = code.chars().filter(|c| *c == '{').count() as i64;
        let closes = code.chars().filter(|c| *c == '}').count() as i64;
        depth += opens - closes;

        // Pragma extraction.
        let own_pragma = match parse_pragma(comment, number) {
            Some(Ok(p)) => {
                pragmas.push(p);
                Some(pragmas.len() - 1)
            }
            Some(Err(m)) => {
                malformed.push(m);
                None
            }
            None => None,
        };
        let has_code = !code.trim().is_empty();
        let pragma = if own_pragma.is_some() && has_code {
            own_pragma // trailing pragma governs its own line
        } else if has_code {
            pending_pragma.take()
        } else {
            None
        };
        if own_pragma.is_some() && !has_code {
            pending_pragma = own_pragma; // standalone: governs next code line
        }

        // Region markers (detected on stripped code so strings can't fake
        // them). The cfg(test) form also covers `#[cfg(all(test, ...))]`.
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending_test = true;
        }
        if let Some(HotScope::FnPrefixes(prefixes)) = hot {
            if let Some(name) = fn_name(code) {
                if prefixes.iter().any(|p| name == *p || name.starts_with(p)) {
                    pending_hot = true;
                }
            }
        }
        // Region entry: the first `{` after a marker opens the region; a `;`
        // before any `{` cancels it (e.g. `#[cfg(test)] use ..;` or a
        // bodiless trait fn). A body opened AND closed on one line (e.g.
        // `mod tests { fn t() {} }`) covers just that line and pushes no
        // region.
        let mut line_test = false;
        let mut line_hot = false;
        if (pending_test || pending_hot) && opens > 0 {
            line_test = pending_test;
            line_hot = pending_hot;
            if depth > depth_start {
                regions.push(Region {
                    test: pending_test,
                    hot: pending_hot,
                    close_depth: depth_start,
                });
            }
            pending_test = false;
            pending_hot = false;
        } else if (pending_test || pending_hot) && code.contains(';') {
            pending_test = false;
            pending_hot = false;
        }

        let in_test = line_test || regions.iter().any(|r| r.test);
        let in_hot = whole_file_hot || line_hot || regions.iter().any(|r| r.hot);

        lines.push(LineInfo {
            number,
            code: code.clone(),
            comment: comment.clone(),
            in_test,
            hot: in_hot && !in_test,
            pragma,
        });

        // Region exit (after the closing line is attributed to the region).
        while regions.last().is_some_and(|r| depth <= r.close_depth) {
            regions.pop();
        }
    }

    FileAnalysis { lines, pragmas, malformed }
}

/// Extracts the name of a `fn` declared on this (stripped) line, if any.
fn fn_name(code: &str) -> Option<&str> {
    let mut search_from = 0;
    loop {
        let rel = code[search_from..].find("fn ")?;
        let at = search_from + rel;
        // Word boundary on the left (don't match `often `).
        let left_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok {
            let rest = code[at + 3..].trim_start();
            let end = rest
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            if end > 0 {
                return Some(&rest[..end]);
            }
        }
        search_from = at + 3;
    }
}

/// Word-boundary token search on stripped code. `token` may end with `(` or
/// `!` to pin call/macro syntax (e.g. `unwrap(` does not match `unwrap_or(`).
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let at = from + rel;
        let left_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + token.len();
        let right_needs_boundary =
            token.ends_with(|c: char| c.is_alphanumeric() || c == '_');
        let right_ok = !right_needs_boundary
            || !code[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if left_ok && right_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let fa = analyze("let x = 1; // HashMap here\n/* HashMap */ let y = 2;\n", None);
        assert!(!fa.lines[0].code.contains("HashMap"));
        assert!(fa.lines[0].comment.contains("HashMap"));
        assert!(!fa.lines[1].code.contains("HashMap"));
        assert!(fa.lines[1].code.contains("let y"));
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        let fa = analyze(
            "let s = \"unwrap( inside\"; let r = r#\"panic! inside\"#; s.len();\n",
            None,
        );
        assert!(find_token(&fa.lines[0].code, "unwrap(").is_none());
        assert!(find_token(&fa.lines[0].code, "panic!").is_none());
        assert!(fa.lines[0].code.contains("len()"));
    }

    #[test]
    fn multiline_string_masks_tokens() {
        let fa = analyze("let s = \"line one\nunwrap() here\nstill\"; done();\n", None);
        assert!(find_token(&fa.lines[1].code, "unwrap(").is_none());
        assert!(fa.lines[2].code.contains("done()"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let fa = analyze("fn f<'a>(x: &'a str) -> &'static str { x.unwrap() }\n", None);
        assert!(find_token(&fa.lines[0].code, "unwrap(").is_some());
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let fa = analyze(src, None);
        assert!(!fa.lines[0].in_test);
        assert!(fa.lines[3].in_test);
        assert!(!fa.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_rest_of_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() { x.unwrap(); }\n";
        let fa = analyze(src, None);
        assert!(!fa.lines[2].in_test);
    }

    #[test]
    fn fn_prefix_hot_scope() {
        let src = "fn simulate_lean(a: u32) {\n    x.unwrap();\n}\nfn other() {\n    y.unwrap();\n}\n";
        let fa = analyze(src, Some(HotScope::FnPrefixes(&["simulate_lean"])));
        assert!(fa.lines[1].hot);
        assert!(!fa.lines[4].hot);
    }

    #[test]
    fn trailing_and_standalone_pragmas_attach() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new(); // lint:allow(det-hash-iter): keyed lookups only\n// lint:allow(det-hash-iter): next line justified\nlet n: HashMap<u32, u32> = HashMap::new();\nlet o: HashMap<u32, u32> = HashMap::new();\n";
        let fa = analyze(src, None);
        assert!(fa.lines[1].pragma.is_some());
        assert!(fa.lines[2].pragma.is_none());
        assert!(fa.lines[3].pragma.is_some());
        assert!(fa.lines[4].pragma.is_none());
        assert_eq!(fa.pragmas.len(), 2);
    }

    #[test]
    fn malformed_pragma_reported() {
        let fa = analyze("// lint:allow(det-hash-iter) missing colon\nlet x = 1;\n", None);
        assert_eq!(fa.malformed.len(), 1);
        let fa2 = analyze("// lint:allow(det-hash-iter):\nlet x = 1;\n", None);
        assert_eq!(fa2.malformed.len(), 1, "empty reason must be malformed");
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("x.unwrap_or(0)", "unwrap(").is_none());
        assert!(find_token("x.unwrap()", "unwrap(").is_some());
        assert!(find_token("should_panic(expected)", "panic!").is_none());
        assert!(find_token("MyHashMapLike::new()", "HashMap").is_none());
        assert!(find_token("HashMap::new()", "HashMap").is_some());
    }
}
