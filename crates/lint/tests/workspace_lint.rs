//! Tier-1 gate: the shipped workspace passes `routing-lint` with warnings
//! denied, and the budget ratchet behaves end-to-end — growing a committed
//! count fails the run, shrinking one produces a re-ratchet suggestion.

use std::fs;
use std::path::{Path, PathBuf};

use routing_lint::rules::{self, Severity};
use routing_lint::{run_workspace, Options};

fn workspace_root() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().expect("workspace root resolves")
}

/// Restores the budget file's original bytes even if an assertion panics.
struct BudgetGuard {
    path: PathBuf,
    original: String,
}

impl BudgetGuard {
    fn new(root: &Path) -> Self {
        let path = root.join("lint-budget.txt");
        let original = fs::read_to_string(&path).expect("lint-budget.txt is committed");
        BudgetGuard { path, original }
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fs::write(&self.path, &self.original).expect("restore lint-budget.txt");
    }
}

/// Rewrites one budget row's count by `delta`, returning the patched text.
fn patch_first_row(original: &str, delta: i64) -> String {
    let mut patched = Vec::new();
    let mut done = false;
    for line in original.lines() {
        if !done && !line.starts_with('#') && !line.trim().is_empty() {
            let mut parts: Vec<&str> = line.split_whitespace().collect();
            let count: i64 = parts[2].parse().expect("count column parses");
            let new_count = (count + delta).max(0).to_string();
            parts[2] = &new_count;
            patched.push(parts.join(" "));
            done = true;
        } else {
            patched.push(line.to_string());
        }
    }
    assert!(done, "budget file has at least one data row");
    patched.join("\n") + "\n"
}

/// One sequential test: the interleavings all read/write the same committed
/// `lint-budget.txt`, so they must not run as parallel `#[test]`s.
#[test]
fn workspace_lint_and_budget_ratchet() {
    let root = workspace_root();
    let opts = Options { deny_warnings: true, update_budget: false };

    // (1) The shipped tree is clean under --deny-warnings.
    let outcome = run_workspace(&root, &opts);
    let loud: Vec<String> = outcome
        .findings
        .iter()
        .filter(|f| f.severity != Severity::Allowed)
        .map(|f| format!("{}[{}] {}:{}: {}", match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Allowed => "allowed",
        }, f.rule, f.file, f.line, f.message))
        .collect();
    assert!(loud.is_empty(), "shipped tree must lint clean, got:\n{}", loud.join("\n"));
    assert_eq!(outcome.exit_code, 0);
    assert_eq!(outcome.current_budget, outcome.committed_budget);

    // (2) Hot-path modules carry a hard zero panic budget: no finding of the
    // panic-hot-path rule exists at any severity.
    assert!(
        outcome.findings.iter().all(|f| f.rule != rules::PANIC_HOT_PATH),
        "hot-path panic findings must be impossible on the shipped tree"
    );

    let guard = BudgetGuard::new(&root);

    // (3) Ratchet down a committed count: the tree now exceeds the budget,
    // which is a hard error (non-zero exit) even without --deny-warnings.
    fs::write(&guard.path, patch_first_row(&guard.original, -1)).unwrap();
    let over = run_workspace(&root, &Options::default());
    assert_eq!(over.exit_code, 1, "shrunken budget must fail the run");
    assert!(
        over.findings.iter().any(|f| f.severity == Severity::Error
            && f.rule == rules::PANIC_BUDGET
            && f.message.contains("budget exceeded")),
        "expected a budget-exceeded error"
    );

    // (4) Ratchet up a committed count: the tree is under budget, which is a
    // suggestion (warning) to re-run --update-budget — fatal only under
    // --deny-warnings, so CI forces the ratchet to actually tighten.
    fs::write(&guard.path, patch_first_row(&guard.original, 1)).unwrap();
    let under = run_workspace(&root, &Options::default());
    assert_eq!(under.exit_code, 0, "slack budget alone must not fail a non-CI run");
    assert!(
        under.findings.iter().any(|f| f.severity == Severity::Warning
            && f.message.contains("--update-budget")),
        "expected a re-ratchet suggestion warning"
    );
    let under_ci = run_workspace(&root, &opts);
    assert_eq!(under_ci.exit_code, 1, "--deny-warnings must make budget slack fatal");

    drop(guard);

    // (5) Restored file is byte-identical and the tree is green again.
    let restored = run_workspace(&root, &opts);
    assert_eq!(restored.exit_code, 0);
}

/// `render`/`parse` round-trip the live budget map exactly.
#[test]
fn budget_render_parse_roundtrip() {
    use routing_lint::budget;
    let root = workspace_root();
    let outcome = run_workspace(&root, &Options::default());
    let rendered = budget::render(&outcome.current_budget);
    let reparsed = budget::parse(&rendered).expect("rendered budget reparses");
    assert_eq!(reparsed, outcome.current_budget);
}
