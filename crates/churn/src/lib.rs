//! Dynamic-churn workloads for compact routing schemes.
//!
//! The Roditty–Tov schemes (and the Thorup–Zwick baselines) are defined and
//! analysed for **static** graphs: a centralized preprocessing phase builds
//! the routing tables, then the graph never changes. Real networks — P2P
//! overlays, ISP backbones under maintenance, sensor fields — churn: nodes
//! leave, crash, join, and links flap. This crate measures what that churn
//! does to a deployed scheme and what rebuild discipline buys back:
//!
//! * [`plan`] — seeded churn-schedule generation ([`ChurnPlan`],
//!   [`ChurnProcess`]): per-round batches of vertex/edge removals and
//!   additions under several adversary models ([`RemovalMode`]): uniform
//!   random failure, targeted attack on the highest-degree vertices, and
//!   degree-weighted (preferential) failure.
//! * [`policy`] — rebuild disciplines ([`RebuildPolicy`]): never rebuild,
//!   rebuild every round, every `k` rounds, or whenever measured
//!   reachability drops below a threshold.
//! * [`experiment`] — the driver ([`run_churn`]): applies one churn round at
//!   a time, routes sampled pairs through the *stale* tables on the mutated
//!   graph (via `routing_model::stale`), decides whether the policy
//!   triggers, and — when it does — rebuilds the scheme on the largest
//!   alive component with wall-clock rebuild-time accounting.
//!
//! The headline artefact is the per-round table of
//! reachability / stretch / rebuild-milliseconds per (scheme × removal mode
//! × policy), produced by the `churn` binary in `routing-bench` — the same
//! shape of evidence DRFE-style dynamic-routing papers report for
//! Thorup–Zwick-style schemes under 20% targeted churn.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use routing_baselines::TzRoutingScheme;
//! use routing_churn::{run_churn, ChurnExperimentConfig, ChurnPlanConfig, RebuildPolicy, RemovalMode};
//! use routing_graph::generators::{Family, WeightModel};
//!
//! # fn main() -> Result<(), routing_core::BuildError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = Family::ErdosRenyi.generate(200, WeightModel::Unit, &mut rng);
//! let plan = ChurnPlanConfig {
//!     rounds: 3,
//!     remove_frac: 0.10,
//!     mode: RemovalMode::Targeted,
//!     ..ChurnPlanConfig::default()
//! };
//! let cfg = ChurnExperimentConfig {
//!     pairs_per_round: 300,
//!     sources_per_round: 0,
//!     policy: RebuildPolicy::ReachabilityBelow(0.9),
//!     seed: 11,
//! };
//! let result = run_churn(&g, &plan, &cfg, |g| {
//!     let mut rng = StdRng::seed_from_u64(3);
//!     Ok(Box::new(TzRoutingScheme::build(g, 2, &mut rng)?) as _)
//! })?;
//! assert_eq!(result.rounds.len(), 3);
//! // Under targeted 10%-per-round churn, stale reachability decays…
//! assert!(result.rounds[0].stale.reachability() <= 1.0);
//! // …and each round reports what a rebuild would have cost.
//! assert!(result.build_ms >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod plan;
pub mod policy;

pub use experiment::{run_churn, ChurnExperimentConfig, ChurnRunResult, PostRebuild, RoundRecord};
pub use plan::{ChurnPlan, ChurnPlanConfig, ChurnProcess, RemovalMode};
pub use policy::{ParsePolicyError, RebuildPolicy};
