//! Seeded generation of multi-round churn schedules.
//!
//! A churn schedule is a sequence of event batches (rounds); each round
//! removes a fraction of the alive vertices under an adversary model,
//! churns a fraction of the surviving edges, and lets a fraction of the
//! removed capacity rejoin as fresh vertices. Everything is driven by one
//! seed, so a schedule — and therefore a whole experiment — is exactly
//! reproducible.
//!
//! Two entry points:
//!
//! * [`ChurnPlan::generate`] materializes the full schedule up front against
//!   a fixed base graph (useful for inspection and for tests);
//! * [`ChurnProcess`] generates and applies one round at a time against an
//!   *evolving* graph, which is what the experiment driver needs — after a
//!   rebuild compacts the graph, subsequent rounds must be drawn against
//!   the compacted instance.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use routing_graph::mutate::{apply_events, ChurnEvent, Mutation, MutationStats};
use routing_graph::{Graph, VertexId, Weight};

/// The adversary model choosing which vertices are removed each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalMode {
    /// Uniformly random alive vertices (fail-stop crashes).
    Random,
    /// The highest-degree alive vertices (a targeted attack on hubs — the
    /// adversary model under which compact schemes collapse fastest,
    /// because hubs concentrate landmark and tree-routing roles).
    Targeted,
    /// Alive vertices sampled with probability proportional to degree + 1
    /// (preferential failure: busy nodes fail more, but not adversarially).
    DegreeWeighted,
}

impl RemovalMode {
    /// All modes, in reporting order.
    pub const ALL: [RemovalMode; 3] =
        [RemovalMode::Random, RemovalMode::Targeted, RemovalMode::DegreeWeighted];

    /// Short name used in harness output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RemovalMode::Random => "random",
            RemovalMode::Targeted => "targeted",
            RemovalMode::DegreeWeighted => "degree-weighted",
        }
    }

    /// Parses a CLI name (the inverse of [`RemovalMode::name`]).
    pub fn parse(s: &str) -> Option<RemovalMode> {
        match s {
            "random" => Some(RemovalMode::Random),
            "targeted" => Some(RemovalMode::Targeted),
            "degree-weighted" | "weighted" => Some(RemovalMode::DegreeWeighted),
            _ => None,
        }
    }
}

/// Parameters of a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlanConfig {
    /// Number of churn rounds.
    pub rounds: usize,
    /// Fraction of alive vertices removed per round (clamped so that at
    /// least two vertices stay alive).
    pub remove_frac: f64,
    /// Fresh vertices added per round, as a fraction of that round's
    /// removals (0.5 means half the departed capacity rejoins).
    pub add_frac: f64,
    /// Fraction of the surviving edges additionally removed per round
    /// (link failures independent of vertex churn).
    pub edge_remove_frac: f64,
    /// New random edges added per round, as a fraction of the current edge
    /// count (new links forming between surviving vertices).
    pub edge_add_frac: f64,
    /// The vertex-removal adversary model.
    pub mode: RemovalMode,
    /// Seed for the schedule's randomness.
    pub seed: u64,
}

impl Default for ChurnPlanConfig {
    fn default() -> Self {
        ChurnPlanConfig {
            rounds: 5,
            remove_frac: 0.05,
            add_frac: 0.5,
            edge_remove_frac: 0.02,
            edge_add_frac: 0.02,
            mode: RemovalMode::Random,
            seed: 7,
        }
    }
}

/// A fully materialized churn schedule: one event batch per round, valid
/// when applied in order (via [`routing_graph::mutate::apply_events`])
/// starting from the base graph it was generated against.
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    /// The configuration that produced this plan.
    pub config: ChurnPlanConfig,
    /// Event batches, one per round.
    pub rounds: Vec<Vec<ChurnEvent>>,
}

impl ChurnPlan {
    /// Generates the schedule for `base` under `config`. Deterministic
    /// given `config.seed`.
    pub fn generate(base: &Graph, config: &ChurnPlanConfig) -> ChurnPlan {
        let mut process = ChurnProcess::new(base.clone(), *config);
        let mut rounds = Vec::with_capacity(config.rounds);
        for _ in 0..config.rounds {
            let (events, _) = process.next_round();
            rounds.push(events);
        }
        ChurnPlan { config: *config, rounds }
    }

    /// Total number of events across all rounds.
    pub fn total_events(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// An evolving churn process: owns the current graph and liveness mask, and
/// generates + applies one round of churn at a time.
///
/// The experiment driver resets the process graph after a rebuild (the
/// rebuilt scheme lives on the compacted largest component), which is why
/// this type exposes [`ChurnProcess::reset_graph`] rather than being a pure
/// iterator.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    graph: Graph,
    alive: Vec<bool>,
    config: ChurnPlanConfig,
    rng: StdRng,
    round: usize,
}

impl ChurnProcess {
    /// Starts a process at `base` with every vertex alive.
    pub fn new(base: Graph, config: ChurnPlanConfig) -> ChurnProcess {
        let alive = vec![true; base.n()];
        ChurnProcess { graph: base, alive, config, rng: StdRng::seed_from_u64(config.seed), round: 0 }
    }

    /// The current (mutated) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current liveness mask (same length as `graph().n()`).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Number of alive vertices.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Rounds generated so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Replaces the process state with a new graph in which every vertex is
    /// alive (used by the experiment driver after a rebuild compacts the
    /// graph to its largest component). The random stream continues.
    pub fn reset_graph(&mut self, graph: Graph) {
        self.alive = vec![true; graph.n()];
        self.graph = graph;
    }

    /// Generates the next round of churn, applies it to the current graph,
    /// and returns the events plus the mutation's survival statistics.
    pub fn next_round(&mut self) -> (Vec<ChurnEvent>, MutationStats) {
        let events = self.generate_round_events();
        let Mutation { graph, alive, stats } =
            apply_events(&self.graph, Some(&self.alive), &events)
                .expect("generated churn events are valid by construction");
        self.graph = graph;
        self.alive = alive;
        self.round += 1;
        (events, stats)
    }

    fn generate_round_events(&mut self) -> Vec<ChurnEvent> {
        let alive_ids: Vec<VertexId> = self
            .alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| VertexId(i as u32))
            .collect();
        let alive_count = alive_ids.len();
        // Keep at least two vertices alive so the experiment never runs on
        // an empty instance.
        let want = (self.config.remove_frac * alive_count as f64).round() as usize;
        let k_remove = want.min(alive_count.saturating_sub(2));
        let victims = self.pick_victims(&alive_ids, k_remove);

        let victim_set: Vec<bool> = {
            let mut mask = vec![false; self.alive.len()];
            for &v in &victims {
                mask[v.index()] = true;
            }
            mask
        };
        let survivors: Vec<VertexId> = alive_ids
            .iter()
            .copied()
            .filter(|v| !victim_set[v.index()])
            .collect();

        let mut events: Vec<ChurnEvent> =
            victims.iter().map(|&v| ChurnEvent::RemoveVertex(v)).collect();

        // Link failures among surviving edges.
        let mut surviving_edges: Vec<(VertexId, VertexId, Weight)> = self
            .graph
            .all_edges()
            .filter(|&(u, v, _)| {
                self.alive[u.index()]
                    && self.alive[v.index()]
                    && !victim_set[u.index()]
                    && !victim_set[v.index()]
            })
            .collect();
        let k_edge_remove =
            (self.config.edge_remove_frac * surviving_edges.len() as f64).round() as usize;
        surviving_edges.shuffle(&mut self.rng);
        for &(u, v, _) in surviving_edges.iter().take(k_edge_remove) {
            events.push(ChurnEvent::RemoveEdge(u, v));
        }
        let removed_edge_count = k_edge_remove.min(surviving_edges.len());

        // Rejoining vertices: each connects to ~average-degree random
        // survivors with weights drawn from the current weight range.
        let k_add = (self.config.add_frac * k_remove as f64).round() as usize;
        let avg_degree = if alive_count > 0 {
            (2.0 * self.graph.m() as f64 / alive_count as f64).round() as usize
        } else {
            0
        };
        let attach = avg_degree.clamp(1, survivors.len().saturating_sub(1).max(1));
        let (w_lo, w_hi) = self.graph.weight_range().unwrap_or((1, 1));
        for _ in 0..k_add {
            if survivors.is_empty() {
                break;
            }
            let mut endpoints = survivors.clone();
            endpoints.shuffle(&mut self.rng);
            endpoints.truncate(attach);
            let edges: Vec<(VertexId, Weight)> = endpoints
                .into_iter()
                .map(|u| (u, self.sample_weight(w_lo, w_hi)))
                .collect();
            events.push(ChurnEvent::AddVertex { edges });
        }

        // New links between surviving vertices.
        let k_edge_add =
            (self.config.edge_add_frac * (self.graph.m() - removed_edge_count).max(1) as f64)
                .round() as usize;
        if survivors.len() >= 2 {
            let mut added: Vec<(VertexId, VertexId)> = Vec::new();
            let mut guard = 0;
            while added.len() < k_edge_add && guard < 20 * k_edge_add.max(1) {
                guard += 1;
                let u = *survivors.choose(&mut self.rng).expect("survivors non-empty");
                let v = *survivors.choose(&mut self.rng).expect("survivors non-empty");
                if u == v || self.graph.has_edge(u, v) {
                    continue;
                }
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                if added.contains(&(a, b)) {
                    continue;
                }
                // The edge must also not be one we are removing this round —
                // re-adding it would be valid but would cancel the churn.
                if surviving_edges[..removed_edge_count]
                    .iter()
                    .any(|&(x, y, _)| (x, y) == (a, b) || (y, x) == (a, b))
                {
                    continue;
                }
                added.push((a, b));
                events.push(ChurnEvent::AddEdge(a, b, self.sample_weight(w_lo, w_hi)));
            }
        }

        events
    }

    fn pick_victims(&mut self, alive_ids: &[VertexId], k: usize) -> Vec<VertexId> {
        if k == 0 {
            return Vec::new();
        }
        match self.config.mode {
            RemovalMode::Random => {
                let mut ids = alive_ids.to_vec();
                ids.shuffle(&mut self.rng);
                ids.truncate(k);
                ids
            }
            RemovalMode::Targeted => {
                let mut ids = alive_ids.to_vec();
                // Highest degree first; ties by id for determinism.
                ids.sort_by_key(|&v| (std::cmp::Reverse(self.graph.degree(v)), v));
                ids.truncate(k);
                ids
            }
            RemovalMode::DegreeWeighted => {
                // Weighted sampling without replacement via exponential
                // sort-keys (Efraimidis–Spirakis): key = u^(1/w) with
                // w = degree + 1; take the k largest keys.
                let mut keyed: Vec<(f64, VertexId)> = alive_ids
                    .iter()
                    .map(|&v| {
                        let w = (self.graph.degree(v) + 1) as f64;
                        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        (u.powf(1.0 / w), v)
                    })
                    .collect();
                keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
                keyed.truncate(k);
                keyed.into_iter().map(|(_, v)| v).collect()
            }
        }
    }

    fn sample_weight(&mut self, lo: Weight, hi: Weight) -> Weight {
        if lo >= hi {
            lo.max(1)
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::generators::{self, Family, WeightModel};

    fn base(n: usize) -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng)
    }

    #[test]
    fn plans_are_deterministic() {
        let g = base(120);
        let cfg = ChurnPlanConfig { rounds: 3, ..ChurnPlanConfig::default() };
        let a = ChurnPlan::generate(&g, &cfg);
        let b = ChurnPlan::generate(&g, &cfg);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.rounds.len(), 3);
        assert!(a.total_events() > 0);
        let c = ChurnPlan::generate(&g, &ChurnPlanConfig { seed: 8, ..cfg });
        assert_ne!(a.rounds, c.rounds, "different seeds give different plans");
    }

    #[test]
    fn zero_churn_plan_is_empty() {
        let g = base(80);
        let cfg = ChurnPlanConfig {
            rounds: 2,
            remove_frac: 0.0,
            add_frac: 0.0,
            edge_remove_frac: 0.0,
            edge_add_frac: 0.0,
            ..ChurnPlanConfig::default()
        };
        let plan = ChurnPlan::generate(&g, &cfg);
        assert_eq!(plan.total_events(), 0);
        // Applying the empty rounds is the identity.
        let m = apply_events(&g, None, &plan.rounds[0]).unwrap();
        assert_eq!(m.graph, g);
        assert!(m.alive.iter().all(|&a| a));
    }

    #[test]
    fn generated_plans_apply_cleanly() {
        let g = base(100);
        for mode in RemovalMode::ALL {
            let cfg = ChurnPlanConfig {
                rounds: 4,
                remove_frac: 0.1,
                mode,
                ..ChurnPlanConfig::default()
            };
            let plan = ChurnPlan::generate(&g, &cfg);
            let mut graph = g.clone();
            let mut alive: Vec<bool> = vec![true; g.n()];
            for round in &plan.rounds {
                let m = apply_events(&graph, Some(&alive), round).unwrap();
                graph = m.graph;
                alive = m.alive;
            }
            let alive_count = alive.iter().filter(|&&a| a).count();
            assert!(alive_count >= 2, "{}: everything died", mode.name());
        }
    }

    #[test]
    fn targeted_mode_removes_hubs_first() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::barabasi_albert(150, 3, WeightModel::Unit, &mut rng);
        let max_degree = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let cfg = ChurnPlanConfig {
            rounds: 1,
            remove_frac: 0.05,
            add_frac: 0.0,
            mode: RemovalMode::Targeted,
            ..ChurnPlanConfig::default()
        };
        let plan = ChurnPlan::generate(&g, &cfg);
        let removed_degrees: Vec<usize> = plan.rounds[0]
            .iter()
            .filter_map(|e| match e {
                ChurnEvent::RemoveVertex(v) => Some(g.degree(*v)),
                _ => None,
            })
            .collect();
        assert!(!removed_degrees.is_empty());
        assert!(
            removed_degrees.contains(&max_degree),
            "the top hub must be the first victim"
        );
    }

    #[test]
    fn process_survives_many_rounds_and_reset() {
        let g = base(100);
        let cfg = ChurnPlanConfig {
            rounds: 10,
            remove_frac: 0.2,
            add_frac: 1.0,
            ..ChurnPlanConfig::default()
        };
        let mut process = ChurnProcess::new(g.clone(), cfg);
        for _ in 0..5 {
            let (events, stats) = process.next_round();
            assert!(!events.is_empty());
            assert!(stats.port_preservation() <= 1.0);
        }
        assert_eq!(process.round(), 5);
        assert!(process.alive_count() >= 2);
        // Reset to a fresh small graph and keep going.
        process.reset_graph(generators::cycle(30));
        assert_eq!(process.alive_count(), 30);
        let (_, _) = process.next_round();
        assert!(process.alive_count() >= 2);
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in RemovalMode::ALL {
            assert_eq!(RemovalMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(RemovalMode::parse("bogus"), None);
    }
}
