//! Rebuild disciplines: when does an operator pay for re-running the
//! (centralized, expensive) preprocessing phase?
//!
//! The trade-off the churn experiments expose is precisely this knob:
//! rebuilding every round keeps reachability at 1.0 at maximal
//! preprocessing cost; never rebuilding is free and decays towards
//! unreachability; the interesting policies are in between.

use std::fmt;
use std::str::FromStr;

/// When to rebuild the routing scheme during a churn experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebuildPolicy {
    /// Never rebuild: measure raw stale-table decay.
    Never,
    /// Rebuild after every churn round (an upper bound on cost and on
    /// post-churn reachability).
    EveryRound,
    /// Rebuild every `k`-th round (`k >= 1`; `EveryK(1)` equals
    /// [`RebuildPolicy::EveryRound`]).
    EveryK(usize),
    /// Rebuild whenever the measured stale reachability of the round drops
    /// below this threshold (reactive repair driven by monitoring).
    ReachabilityBelow(f64),
}

impl RebuildPolicy {
    /// Decides whether to rebuild, given the measurement of the current
    /// round.
    ///
    /// * `rounds_since_rebuild` — rounds elapsed since the last rebuild
    ///   (or since the initial build), counting the current round; it is
    ///   at least 1.
    /// * `stale_reachability` — the reachability measured through the stale
    ///   tables this round.
    pub fn should_rebuild(&self, rounds_since_rebuild: usize, stale_reachability: f64) -> bool {
        match *self {
            RebuildPolicy::Never => false,
            RebuildPolicy::EveryRound => true,
            RebuildPolicy::EveryK(k) => rounds_since_rebuild >= k.max(1),
            RebuildPolicy::ReachabilityBelow(threshold) => stale_reachability < threshold,
        }
    }

    /// Parses a CLI name: `never`, `every-round`, `every-<k>`, or
    /// `threshold-<x>` (e.g. `threshold-0.9`).
    ///
    /// Convenience wrapper around the [`FromStr`] impl for callers that only
    /// care about success; use `s.parse::<RebuildPolicy>()` when the error
    /// message (which names the offending input and the accepted grammar)
    /// should reach the user.
    pub fn parse(s: &str) -> Option<RebuildPolicy> {
        s.parse().ok()
    }
}

/// Error returned when a string is not a valid [`RebuildPolicy`] name.
///
/// Carries the rejected input and a reason suitable for CLI diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// The string that failed to parse.
    pub input: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid rebuild policy {:?}: {} (expected `never`, `every-round`, `every-<k>` with k >= 1, or `threshold-<x>` with 0 <= x <= 1)",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for RebuildPolicy {
    type Err = ParsePolicyError;

    /// Parses the CLI grammar `never | every-round | every-<k> |
    /// threshold-<x>`, rejecting `every-0` (a rebuild period must be
    /// positive) and thresholds outside `[0, 1]` (reachability is a
    /// fraction).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &'static str| ParsePolicyError { input: s.to_string(), reason };
        match s {
            "never" => return Ok(RebuildPolicy::Never),
            "every-round" => return Ok(RebuildPolicy::EveryRound),
            _ => {}
        }
        if let Some(k) = s.strip_prefix("every-") {
            let k: usize =
                k.parse().map_err(|_| err("the rebuild period is not an integer"))?;
            if k < 1 {
                return Err(err("the rebuild period must be at least 1"));
            }
            return Ok(RebuildPolicy::EveryK(k));
        }
        if let Some(t) = s.strip_prefix("threshold-") {
            let t: f64 =
                t.parse().map_err(|_| err("the reachability threshold is not a number"))?;
            if !(0.0..=1.0).contains(&t) {
                return Err(err("the reachability threshold must lie in [0, 1]"));
            }
            return Ok(RebuildPolicy::ReachabilityBelow(t));
        }
        Err(err("unknown policy name"))
    }
}

impl fmt::Display for RebuildPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildPolicy::Never => write!(f, "never"),
            RebuildPolicy::EveryRound => write!(f, "every-round"),
            RebuildPolicy::EveryK(k) => write!(f, "every-{k}"),
            RebuildPolicy::ReachabilityBelow(t) => write!(f, "threshold-{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_and_every_round() {
        assert!(!RebuildPolicy::Never.should_rebuild(99, 0.0));
        assert!(RebuildPolicy::EveryRound.should_rebuild(1, 1.0));
    }

    #[test]
    fn every_k_counts_rounds() {
        let p = RebuildPolicy::EveryK(3);
        assert!(!p.should_rebuild(1, 0.0));
        assert!(!p.should_rebuild(2, 0.0));
        assert!(p.should_rebuild(3, 1.0));
        // k = 0 is treated as 1.
        assert!(RebuildPolicy::EveryK(0).should_rebuild(1, 1.0));
    }

    #[test]
    fn threshold_reacts_to_reachability() {
        let p = RebuildPolicy::ReachabilityBelow(0.9);
        assert!(!p.should_rebuild(1, 0.95));
        assert!(!p.should_rebuild(1, 0.9));
        assert!(p.should_rebuild(1, 0.89));
    }

    #[test]
    fn parse_round_trips() {
        for p in [
            RebuildPolicy::Never,
            RebuildPolicy::EveryRound,
            RebuildPolicy::EveryK(4),
            RebuildPolicy::ReachabilityBelow(0.75),
        ] {
            assert_eq!(RebuildPolicy::parse(&p.to_string()), Some(p));
            assert_eq!(p.to_string().parse(), Ok(p));
        }
        assert_eq!(RebuildPolicy::parse("every-0"), None);
        assert_eq!(RebuildPolicy::parse("threshold-2.0"), None);
        assert_eq!(RebuildPolicy::parse("sometimes"), None);
    }

    #[test]
    fn from_str_errors_name_the_problem() {
        let e = "every-0".parse::<RebuildPolicy>().unwrap_err();
        assert!(e.reason.contains("at least 1"));
        let e = "every-x".parse::<RebuildPolicy>().unwrap_err();
        assert!(e.reason.contains("not an integer"));
        let e = "threshold-2.0".parse::<RebuildPolicy>().unwrap_err();
        assert!(e.reason.contains("[0, 1]"));
        let e = "threshold-abc".parse::<RebuildPolicy>().unwrap_err();
        assert!(e.reason.contains("not a number"));
        let e = "sometimes".parse::<RebuildPolicy>().unwrap_err();
        assert_eq!(e.input, "sometimes");
        // The Display form carries the grammar for CLI help.
        assert!(e.to_string().contains("every-<k>"));
    }
}
