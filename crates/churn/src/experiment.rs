//! The churn experiment driver: churn → measure through stale tables →
//! maybe rebuild → account for it.
//!
//! One [`run_churn`] call fixes a scheme (via its builder closure), a churn
//! trajectory (seeded [`ChurnProcess`]), and a [`RebuildPolicy`], and
//! produces a [`ChurnRunResult`] with one [`RoundRecord`] per round — the
//! row material for the DRFE-style resilience table the `churn` binary in
//! `routing-bench` prints.
//!
//! Measurement protocol per round:
//!
//! 1. apply the round's churn events to the current graph;
//! 2. sample source/destination pairs among vertices that are alive **and
//!    known to the deployed scheme** (vertices that joined after the last
//!    build have no label and cannot be addressed — they are unreachable by
//!    definition, not by measurement);
//! 3. route every pair through the *stale* tables on the *mutated* graph,
//!    classifying failures (`routing_model::stale`), with stretch measured
//!    against the mutated graph's exact distances;
//! 4. ask the policy whether to rebuild; a rebuild re-runs preprocessing on
//!    the **largest alive component** (the paper's schemes require a
//!    connected instance), measures its wall-clock cost, routes a fresh
//!    pair sample through the new tables, and the process continues on the
//!    compacted graph.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use routing_core::BuildError;
use routing_graph::mutate::{induced_subgraph, largest_component};
use routing_graph::{Graph, SampledDistances, VertexId};
use routing_model::stale::{route_pairs_lossy, sample_alive_pairs, ResilienceReport};
use routing_model::DynScheme;

use crate::plan::{ChurnPlanConfig, ChurnProcess};
use crate::policy::RebuildPolicy;

/// Parameters of one churn experiment run (everything except the churn
/// schedule itself, which [`ChurnPlanConfig`] describes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnExperimentConfig {
    /// Routed pairs sampled per round (both for the stale measurement and
    /// for the post-rebuild measurement).
    pub pairs_per_round: usize,
    /// Cap on the number of distinct pair **sources** per round. `0` means
    /// unlimited: pairs are sampled uniformly, exactly as before the sampled
    /// ground truth existed. A positive value anchors every pair's source in
    /// a random set of at most this many alive vertices, bounding the
    /// per-round ground-truth cost at that many (parallel) Dijkstra runs —
    /// set this (e.g. to 64–256) for `n ≥ 10,000` runs.
    pub sources_per_round: usize,
    /// The rebuild discipline under test.
    pub policy: RebuildPolicy,
    /// Seed for pair sampling (independent of the churn schedule's seed so
    /// the same trajectory can be measured with different pair samples).
    pub seed: u64,
}

impl Default for ChurnExperimentConfig {
    fn default() -> Self {
        ChurnExperimentConfig {
            pairs_per_round: 1000,
            sources_per_round: 0,
            policy: RebuildPolicy::Never,
            seed: 99,
        }
    }
}

/// Measurement of the freshly rebuilt scheme, taken in the round that
/// rebuilt it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PostRebuild {
    /// Vertices of the compacted graph the scheme was rebuilt on.
    pub n: usize,
    /// Edges of the compacted graph.
    pub m: usize,
    /// Reachability through the new tables (should be 1.0 — the new tables
    /// match the graph).
    pub reachability: f64,
    /// Mean multiplicative stretch through the new tables.
    pub mean_stretch: f64,
}

/// Everything measured in one churn round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Alive vertices after this round's churn.
    pub alive: usize,
    /// Edges after this round's churn.
    pub edges: usize,
    /// Fraction of comparable base ports that kept their number across this
    /// round's mutation (see `routing_graph::mutate::MutationStats`).
    pub port_preservation: f64,
    /// The stale-table measurement of this round.
    pub stale: ResilienceReport,
    /// Whether the policy triggered a rebuild this round.
    pub rebuilt: bool,
    /// Wall-clock preprocessing cost of the rebuild, in milliseconds
    /// (0.0 when `rebuilt` is false).
    pub rebuild_ms: f64,
    /// Fraction of alive vertices inside the component the scheme was
    /// rebuilt on (1.0 means the alive graph stayed connected).
    pub component_fraction: f64,
    /// Measurement of the rebuilt scheme (present iff `rebuilt`).
    pub post: Option<PostRebuild>,
}

/// The full outcome of one (scheme × churn schedule × policy) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnRunResult {
    /// Scheme name (as reported by the scheme itself).
    pub scheme: String,
    /// Removal-mode name of the churn schedule.
    pub mode: String,
    /// Policy name.
    pub policy: String,
    /// Vertices of the base graph.
    pub base_n: usize,
    /// Edges of the base graph.
    pub base_m: usize,
    /// Wall-clock cost of the initial build, in milliseconds.
    pub build_ms: f64,
    /// Per-round measurements.
    pub rounds: Vec<RoundRecord>,
}

impl ChurnRunResult {
    /// Number of rebuilds across all rounds.
    pub fn rebuild_count(&self) -> usize {
        self.rounds.iter().filter(|r| r.rebuilt).count()
    }

    /// Total wall-clock rebuild cost across all rounds, in milliseconds.
    pub fn total_rebuild_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.rebuild_ms).sum()
    }

    /// Stale reachability of the final round (the headline number of the
    /// resilience table).
    pub fn final_reachability(&self) -> f64 {
        self.rounds.last().map_or(1.0, |r| r.stale.reachability())
    }

    /// Worst stale reachability over all rounds.
    pub fn worst_reachability(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.stale.reachability())
            .fold(1.0, f64::min)
    }
}

/// Runs one churn experiment: builds the scheme on `base` via `build`,
/// subjects it to the churn schedule of `plan_cfg`, measures each round
/// through the stale tables, and applies `cfg.policy`.
///
/// `build` is called once up front and once per rebuild; rebuilds receive
/// the largest alive component as a compact, connected graph. The builder
/// returns a type-erased [`DynScheme`] — pass a closure over a registry
/// builder (`|g| registry.build("tz2", g, &ctx)`) or box a typed build —
/// so one monomorphization of this driver serves every scheme.
///
/// # Errors
///
/// Propagates builder failures as the workspace-wide
/// [`routing_core::BuildError`].
pub fn run_churn<F>(
    base: &Graph,
    plan_cfg: &ChurnPlanConfig,
    cfg: &ChurnExperimentConfig,
    mut build: F,
) -> Result<ChurnRunResult, BuildError>
where
    F: FnMut(&Graph) -> Result<Box<dyn DynScheme>, BuildError>,
{
    let t0 = Instant::now();
    let mut scheme = build(base)?;
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut result = ChurnRunResult {
        scheme: scheme.name().to_string(),
        mode: plan_cfg.mode.name().to_string(),
        policy: cfg.policy.to_string(),
        base_n: base.n(),
        base_m: base.m(),
        build_ms,
        rounds: Vec::with_capacity(plan_cfg.rounds),
    };

    let mut process = ChurnProcess::new(base.clone(), *plan_cfg);
    let mut pair_rng = StdRng::seed_from_u64(cfg.seed);
    let mut rounds_since_rebuild = 0usize;

    for round in 1..=plan_cfg.rounds {
        let (_events, stats) = process.next_round();
        rounds_since_rebuild += 1;

        // Pairs must be alive *and* known to the deployed scheme: vertices
        // that joined after the last (re)build have no label.
        let known: Vec<bool> = process
            .alive()
            .iter()
            .enumerate()
            .map(|(i, &a)| a && i < scheme.n())
            .collect();
        let graph = process.graph();
        let pairs =
            sample_round_pairs(&known, cfg.sources_per_round, cfg.pairs_per_round, &mut pair_rng);
        // Ground truth only needs rows for the pairs' distinct sources —
        // `O(sources·(m + n log n))` parallel work instead of the dense
        // matrix's `O(n^2)` memory and `n` searches.
        let exact = SampledDistances::from_sources(graph, pair_sources(&pairs));
        let stale = route_pairs_lossy(graph, scheme.as_ref(), &exact, &pairs);
        let stale_reachability = stale.reachability();

        let mut record = RoundRecord {
            round,
            alive: process.alive_count(),
            edges: graph.m(),
            port_preservation: stats.port_preservation(),
            stale,
            rebuilt: false,
            rebuild_ms: 0.0,
            component_fraction: 1.0,
            post: None,
        };

        if cfg.policy.should_rebuild(rounds_since_rebuild, stale_reachability) {
            let component = largest_component(graph, process.alive());
            record.component_fraction = if process.alive_count() == 0 {
                0.0
            } else {
                component.len() as f64 / process.alive_count() as f64
            };
            let (compact, _to_original, _to_compact) = induced_subgraph(graph, &component);

            let t = Instant::now();
            scheme = build(&compact)?;
            record.rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
            record.rebuilt = true;
            rounds_since_rebuild = 0;

            let all_alive = vec![true; compact.n()];
            let post_pairs = sample_round_pairs(
                &all_alive,
                cfg.sources_per_round,
                cfg.pairs_per_round,
                &mut pair_rng,
            );
            let compact_exact = SampledDistances::from_sources(&compact, pair_sources(&post_pairs));
            let post = route_pairs_lossy(&compact, scheme.as_ref(), &compact_exact, &post_pairs);
            record.post = Some(PostRebuild {
                n: compact.n(),
                m: compact.m(),
                reachability: post.reachability(),
                mean_stretch: post.stretch.mean_multiplicative().unwrap_or(1.0),
            });

            process.reset_graph(compact);
        }

        result.rounds.push(record);
    }

    Ok(result)
}

/// Per-round pair sampling. With `sources_cap == 0` this is exactly
/// [`sample_alive_pairs`] (uniform sources, unchanged measurement protocol);
/// a positive cap first draws that many alive source vertices and anchors
/// every pair at one of them, bounding the ground-truth cost per round.
fn sample_round_pairs(
    alive: &[bool],
    sources_cap: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<(VertexId, VertexId)> {
    use rand::seq::SliceRandom;
    if sources_cap == 0 {
        return sample_alive_pairs(alive, count, rng);
    }
    let ids: Vec<VertexId> = alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| VertexId(i as u32))
        .collect();
    if ids.len() < 2 {
        return Vec::new();
    }
    let mut sources = ids.clone();
    sources.shuffle(rng);
    sources.truncate(sources_cap.min(ids.len()));
    routing_model::sample_pairs_from(&sources, &ids, count, rng)
}

/// The distinct sources of a pair population (deduplication happens inside
/// [`SampledDistances::from_sources`]).
fn pair_sources(pairs: &[(VertexId, VertexId)]) -> Vec<VertexId> {
    pairs.iter().map(|&(u, _)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RemovalMode;
    use routing_baselines::{ExactScheme, TzRoutingScheme};
    use routing_core::{Params, SchemeThreePlusEps};
    use routing_graph::generators::{Family, WeightModel};

    fn base(n: usize) -> Graph {
        let mut rng = StdRng::seed_from_u64(5);
        Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng)
    }

    fn tz_builder(
        seed: u64,
    ) -> impl FnMut(&Graph) -> Result<Box<dyn DynScheme>, BuildError> {
        move |g: &Graph| {
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(Box::new(TzRoutingScheme::build(g, 2, &mut rng)?))
        }
    }

    #[test]
    fn zero_churn_preserves_full_reachability() {
        let g = base(100);
        let plan_cfg = ChurnPlanConfig {
            rounds: 2,
            remove_frac: 0.0,
            add_frac: 0.0,
            edge_remove_frac: 0.0,
            edge_add_frac: 0.0,
            ..ChurnPlanConfig::default()
        };
        let cfg = ChurnExperimentConfig {
            pairs_per_round: 200,
            sources_per_round: 0,
            policy: RebuildPolicy::Never,
            seed: 1,
        };
        let result = run_churn(&g, &plan_cfg, &cfg, tz_builder(2)).unwrap();
        assert_eq!(result.rounds.len(), 2);
        for r in &result.rounds {
            assert_eq!(r.stale.reachability(), 1.0, "no churn, no decay");
            assert_eq!(r.port_preservation, 1.0);
            assert!(!r.rebuilt);
        }
        assert_eq!(result.rebuild_count(), 0);
        assert_eq!(result.total_rebuild_ms(), 0.0);
        assert_eq!(result.final_reachability(), 1.0);
    }

    #[test]
    fn never_policy_decays_under_targeted_churn() {
        let g = base(150);
        let plan_cfg = ChurnPlanConfig {
            rounds: 4,
            remove_frac: 0.12,
            add_frac: 0.0,
            mode: RemovalMode::Targeted,
            ..ChurnPlanConfig::default()
        };
        let cfg = ChurnExperimentConfig {
            pairs_per_round: 400,
            sources_per_round: 0,
            policy: RebuildPolicy::Never,
            seed: 2,
        };
        let result = run_churn(&g, &plan_cfg, &cfg, tz_builder(3)).unwrap();
        assert!(
            result.worst_reachability() < 1.0,
            "removing ~40% of hubs must break some routes"
        );
        assert_eq!(result.rebuild_count(), 0);
        // Alive count decreases monotonically with add_frac = 0.
        let alive: Vec<usize> = result.rounds.iter().map(|r| r.alive).collect();
        assert!(alive.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn every_round_policy_restores_reachability() {
        let g = base(120);
        let plan_cfg = ChurnPlanConfig {
            rounds: 3,
            remove_frac: 0.1,
            mode: RemovalMode::Random,
            ..ChurnPlanConfig::default()
        };
        let cfg = ChurnExperimentConfig {
            pairs_per_round: 300,
            sources_per_round: 0,
            policy: RebuildPolicy::EveryRound,
            seed: 3,
        };
        let result = run_churn(&g, &plan_cfg, &cfg, tz_builder(4)).unwrap();
        assert_eq!(result.rebuild_count(), 3);
        assert!(result.total_rebuild_ms() > 0.0);
        for r in &result.rounds {
            assert!(r.rebuilt);
            let post = r.post.as_ref().unwrap();
            assert_eq!(post.reachability, 1.0, "fresh tables route everything");
            assert!(post.mean_stretch >= 1.0);
            assert!(r.component_fraction > 0.5);
        }
    }

    #[test]
    fn threshold_policy_only_fires_when_needed() {
        let g = base(120);
        let plan_cfg = ChurnPlanConfig {
            rounds: 4,
            remove_frac: 0.15,
            add_frac: 0.0,
            mode: RemovalMode::Targeted,
            ..ChurnPlanConfig::default()
        };
        let lenient = ChurnExperimentConfig {
            pairs_per_round: 300,
            sources_per_round: 0,
            policy: RebuildPolicy::ReachabilityBelow(0.05),
            seed: 4,
        };
        let strict = ChurnExperimentConfig {
            policy: RebuildPolicy::ReachabilityBelow(0.999),
            ..lenient
        };
        let lenient_result = run_churn(&g, &plan_cfg, &lenient, tz_builder(5)).unwrap();
        let strict_result = run_churn(&g, &plan_cfg, &strict, tz_builder(5)).unwrap();
        assert!(
            strict_result.rebuild_count() >= lenient_result.rebuild_count(),
            "a stricter threshold can only rebuild more often"
        );
        assert!(strict_result.rebuild_count() > 0);
    }

    #[test]
    fn works_with_the_papers_schemes() {
        let g = base(100);
        let plan_cfg = ChurnPlanConfig {
            rounds: 2,
            remove_frac: 0.08,
            ..ChurnPlanConfig::default()
        };
        let cfg = ChurnExperimentConfig {
            pairs_per_round: 150,
            sources_per_round: 0,
            policy: RebuildPolicy::EveryK(2),
            seed: 6,
        };
        let result = run_churn(&g, &plan_cfg, &cfg, |g: &Graph| {
            let mut rng = StdRng::seed_from_u64(8);
            Ok(Box::new(SchemeThreePlusEps::build(g, &Params::with_epsilon(0.5), &mut rng)?))
        })
        .unwrap();
        assert_eq!(result.rounds.len(), 2);
        assert!(!result.rounds[0].rebuilt, "every-2 must not fire on round 1");
        assert!(result.rounds[1].rebuilt, "every-2 must fire on round 2");
        assert_eq!(result.scheme, "warmup");
    }

    #[test]
    fn thm16_classifies_stale_failures_and_rebuilds_to_full_reachability() {
        // The Theorem 16 scheme under churn at n=500: stale-table routing
        // after node removals must classify failures lossily (never panic),
        // and a threshold rebuild must restore 100% reachability on the
        // surviving component.
        let g = base(500);
        let plan_cfg = ChurnPlanConfig {
            rounds: 3,
            remove_frac: 0.1,
            add_frac: 0.0,
            mode: RemovalMode::Random,
            ..ChurnPlanConfig::default()
        };
        let cfg = ChurnExperimentConfig {
            pairs_per_round: 400,
            sources_per_round: 0,
            policy: RebuildPolicy::ReachabilityBelow(0.999),
            seed: 7,
        };
        let result = run_churn(&g, &plan_cfg, &cfg, |g: &Graph| {
            let mut rng = StdRng::seed_from_u64(9);
            Ok(Box::new(routing_baselines::Thm16Scheme::build(
                g,
                3,
                &Params::with_epsilon(0.5),
                &mut rng,
            )?))
        })
        .unwrap();
        assert_eq!(result.scheme, "thm16k3");
        assert_eq!(result.rounds.len(), 3);
        // Removing 10% of vertices per round must break at least one stale
        // route somewhere, so the strict threshold fires...
        assert!(result.rebuild_count() >= 1, "stale tables must decay under 10% removals");
        for r in &result.rounds {
            // ...and every stale round accounts for all attempted pairs:
            // delivered, classified failure, or graph-disconnected — no
            // panics on dead vertices.
            assert_eq!(
                r.stale.delivered + r.stale.failures.total() + r.stale.disconnected_pairs,
                r.stale.pairs,
                "every attempted pair is delivered or classified"
            );
            if let Some(post) = &r.post {
                assert_eq!(post.reachability, 1.0, "fresh thm16 tables route everything");
                assert!(post.mean_stretch >= 1.0);
            }
        }
    }

    #[test]
    fn exact_scheme_round_trips_and_serializes() {
        let g = base(80);
        let plan_cfg = ChurnPlanConfig { rounds: 1, ..ChurnPlanConfig::default() };
        let cfg = ChurnExperimentConfig::default();
        let result = run_churn(&g, &plan_cfg, &cfg, |g: &Graph| {
            Ok(Box::new(ExactScheme::build(g)?))
        })
        .unwrap();
        let json = serde_json::to_string_pretty(&result).unwrap();
        assert!(json.contains("\"scheme\""));
        assert!(json.contains("\"rounds\""));
        assert!(json.contains("\"reachability\"") || json.contains("\"delivered\""));
    }
}
