//! Graph substrate for the compact-routing reproduction of Roditty & Tov,
//! *New routing techniques and their applications* (PODC 2015).
//!
//! This crate provides everything the routing schemes need from a graph:
//!
//! * [`Graph`] — an undirected graph in CSR form with **fixed port numbers**
//!   (the position of a neighbour in a vertex's adjacency list is its port, as
//!   required by the fixed-port routing model of Fraigniaud and Gavoille).
//! * [`scratch`] — the allocation-free search kernel: a reusable
//!   [`SearchScratch`] workspace (epoch-stamped arrays + preallocated heap)
//!   that runs full, bounded (ball), multi-source and restricted searches
//!   with zero per-call allocation. Every preprocessing hot path holds one
//!   per worker thread.
//! * [`shortest_path`] — Dijkstra/BFS with the paper's lexicographic
//!   tie-breaking, ball (k-nearest) searches, multi-source searches and
//!   shortest-path trees; the free functions are thin fresh-workspace
//!   wrappers over the kernel.
//! * [`mod@reference`] — the pre-refactor allocating implementations, kept
//!   as bit-identity baselines for the equivalence tests and the `perf`
//!   harness binary.
//! * [`generators`] — seeded synthetic graph families used by the experiment
//!   harness (the paper is evaluated on "any undirected graph"; generators
//!   stand in for the absence of a dataset).
//! * [`apsp`] — exact all-pairs shortest paths used as ground truth by tests
//!   and by the stretch measurements, behind the [`DistanceOracle`] trait.
//! * [`sampled`] — the scalable ground truth: exact rows from `k` sampled
//!   sources plus on-demand pair queries, `O(k·n)` memory instead of
//!   `O(n^2)`.
//! * [`mutate`] — churn support: derive a mutated CSR graph from a base
//!   graph plus a batch of vertex/edge removals and additions, preserving
//!   fixed ports where possible, with component extraction for rebuilds.
//!
//! Distances are exact unsigned integers ([`Weight`]); "weighted" graphs in
//! the paper's sense are graphs with arbitrary positive integer weights, and
//! unweighted graphs use weight 1 on every edge. Integer weights keep every
//! distance comparison exact, which matters for the ball/cluster membership
//! predicates the paper's correctness arguments rely on.
//!
//! # Example
//!
//! ```
//! use routing_graph::{GraphBuilder, VertexId};
//! use routing_graph::shortest_path::dijkstra;
//!
//! # fn main() -> Result<(), routing_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1)?;
//! b.add_edge(1, 2, 2)?;
//! b.add_edge(2, 3, 1)?;
//! b.add_edge(0, 3, 10)?;
//! let g = b.build();
//! let sp = dijkstra(&g, VertexId(0));
//! assert_eq!(sp.dist(VertexId(3)), Some(4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
mod error;
pub mod generators;
mod graph;
pub mod mutate;
pub mod reference;
pub mod sampled;
pub mod scratch;
pub mod shortest_path;

pub use apsp::DistanceOracle;
pub use error::GraphError;
pub use scratch::SearchScratch;
pub use graph::{EdgeRef, Graph, GraphBuilder, Port, VertexId, Weight, INFINITY};
pub use mutate::{ChurnEvent, Mutation, MutationError, MutationStats};
pub use sampled::SampledDistances;
