//! Exact all-pairs shortest paths, used as ground truth by tests and by the
//! stretch measurements in the experiment harness.
//!
//! Two ground-truth backends share the [`DistanceOracle`] interface:
//!
//! * [`DistanceMatrix`] — the dense matrix: `O(n^2)` memory, `n` (parallel)
//!   Dijkstra runs. Exact for every pair, but quadratic memory caps it at a
//!   few thousand vertices.
//! * [`crate::sampled::SampledDistances`] — `k` source rows plus on-demand
//!   pair queries: `O(k·n)` memory and `O(k·(m + n log n))` build time. This
//!   is what the harness uses beyond laptop scale (`n ≥ 10,000`): stretch is
//!   measured over pairs anchored at the sampled sources, where the oracle
//!   is still *exact*.
//!
//! Evaluation code should accept `&impl DistanceOracle` so both backends
//! plug in.

use crate::scratch::SearchScratch;
use crate::{Graph, VertexId, Weight, INFINITY};

/// Exact pairwise distances, by whatever backing strategy.
///
/// Implementations must return the **exact** graph distance for every pair
/// they answer (`None` strictly meaning "unreachable") — evaluation
/// normalizes routed path weights by these values, so an approximate answer
/// would silently corrupt every stretch statistic.
pub trait DistanceOracle {
    /// Number of vertices of the underlying graph.
    fn n(&self) -> usize;

    /// Exact distance between `u` and `v`, or `None` if unreachable.
    ///
    /// May cost a full graph search for pairs the oracle has no stored row
    /// for (see [`crate::sampled::SampledDistances`]); callers that route
    /// many pairs should anchor them at [`DistanceOracle::preferred_sources`].
    fn distance(&self, u: VertexId, v: VertexId) -> Option<Weight>;

    /// Sources for which `distance` is an `O(1)` lookup, or `None` when every
    /// pair is cheap (dense backends).
    fn preferred_sources(&self) -> Option<&[VertexId]> {
        None
    }
}

/// Dense all-pairs distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<Weight>,
}

impl DistanceMatrix {
    /// Computes exact distances between every pair of vertices with one
    /// Dijkstra per source, fanned out over [`routing_par::threads`] threads.
    /// Each worker reuses one [`SearchScratch`] workspace across all its
    /// sources, so the only per-source allocation is the output row itself.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let rows: Vec<Vec<Weight>> = routing_par::par_map_scratch(
            n,
            || SearchScratch::for_graph(g),
            |scratch, u| {
                scratch.dijkstra_into(g, VertexId(u as u32));
                scratch.dist_row(n)
            },
        );
        let mut dist = Vec::with_capacity(n * n);
        for row in rows {
            dist.extend(row);
        }
        DistanceMatrix { n, dist }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exact distance between `u` and `v`, or `None` if unreachable.
    pub fn dist(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let d = self.dist[u.index() * self.n + v.index()];
        (d != INFINITY).then_some(d)
    }

    /// The (hop-unnormalized) diameter: the largest finite pairwise distance.
    pub fn diameter(&self) -> Weight {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }

    /// The smallest non-zero pairwise distance.
    pub fn min_positive_distance(&self) -> Option<Weight> {
        self.dist.iter().copied().filter(|&d| d != INFINITY && d > 0).min()
    }

    /// Multiplicative stretch of a routed path of total weight `routed`
    /// between `u` and `v`: `routed / d(u, v)`.
    ///
    /// Returns `None` if `u` and `v` are not connected; returns 1.0 when
    /// `u == v`.
    pub fn stretch(&self, u: VertexId, v: VertexId, routed: Weight) -> Option<f64> {
        if u == v {
            return Some(1.0);
        }
        let d = self.dist(u, v)?;
        Some(routed as f64 / d as f64)
    }
}

impl DistanceOracle for DistanceMatrix {
    fn n(&self) -> usize {
        self.n
    }

    fn distance(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.dist(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path::dijkstra;
    use crate::GraphBuilder;

    #[test]
    fn matrix_matches_dijkstra() {
        let g = generators::grid(5, 5);
        let m = DistanceMatrix::new(&g);
        let sp = dijkstra(&g, VertexId(0));
        for v in g.vertices() {
            assert_eq!(m.dist(VertexId(0), v), sp.dist(v));
        }
        assert_eq!(m.n(), 25);
        assert_eq!(m.diameter(), 8);
        assert_eq!(m.min_positive_distance(), Some(1));
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = generators::cycle(9);
        let m = DistanceMatrix::new(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(m.dist(u, v), m.dist(v, u));
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.dist(VertexId(0), VertexId(3)), None);
        assert_eq!(m.dist(VertexId(0), VertexId(1)), Some(1));
    }

    #[test]
    fn stretch_computation() {
        let g = generators::path(4);
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.stretch(VertexId(0), VertexId(3), 6), Some(2.0));
        assert_eq!(m.stretch(VertexId(2), VertexId(2), 0), Some(1.0));
    }
}
