//! Exact all-pairs shortest paths, used as ground truth by tests and by the
//! stretch measurements in the experiment harness.
//!
//! The matrix costs `O(n^2)` memory and `n` Dijkstra runs to build, which is
//! fine at the laptop scales the reproduction targets (a few thousand
//! vertices).

use crate::shortest_path::dijkstra;
use crate::{Graph, VertexId, Weight, INFINITY};

/// Dense all-pairs distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<Weight>,
}

impl DistanceMatrix {
    /// Computes exact distances between every pair of vertices.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut dist = vec![INFINITY; n * n];
        for u in g.vertices() {
            let sp = dijkstra(g, u);
            for v in g.vertices() {
                if let Some(d) = sp.dist(v) {
                    dist[u.index() * n + v.index()] = d;
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exact distance between `u` and `v`, or `None` if unreachable.
    pub fn dist(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let d = self.dist[u.index() * self.n + v.index()];
        (d != INFINITY).then_some(d)
    }

    /// The (hop-unnormalized) diameter: the largest finite pairwise distance.
    pub fn diameter(&self) -> Weight {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }

    /// The smallest non-zero pairwise distance.
    pub fn min_positive_distance(&self) -> Option<Weight> {
        self.dist.iter().copied().filter(|&d| d != INFINITY && d > 0).min()
    }

    /// Multiplicative stretch of a routed path of total weight `routed`
    /// between `u` and `v`: `routed / d(u, v)`.
    ///
    /// Returns `None` if `u` and `v` are not connected; returns 1.0 when
    /// `u == v`.
    pub fn stretch(&self, u: VertexId, v: VertexId, routed: Weight) -> Option<f64> {
        if u == v {
            return Some(1.0);
        }
        let d = self.dist(u, v)?;
        Some(routed as f64 / d as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn matrix_matches_dijkstra() {
        let g = generators::grid(5, 5);
        let m = DistanceMatrix::new(&g);
        let sp = dijkstra(&g, VertexId(0));
        for v in g.vertices() {
            assert_eq!(m.dist(VertexId(0), v), sp.dist(v));
        }
        assert_eq!(m.n(), 25);
        assert_eq!(m.diameter(), 8);
        assert_eq!(m.min_positive_distance(), Some(1));
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = generators::cycle(9);
        let m = DistanceMatrix::new(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(m.dist(u, v), m.dist(v, u));
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let mut b = GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.dist(VertexId(0), VertexId(3)), None);
        assert_eq!(m.dist(VertexId(0), VertexId(1)), Some(1));
    }

    #[test]
    fn stretch_computation() {
        let g = generators::path(4);
        let m = DistanceMatrix::new(&g);
        assert_eq!(m.stretch(VertexId(0), VertexId(3), 6), Some(2.0));
        assert_eq!(m.stretch(VertexId(2), VertexId(2), 0), Some(1.0));
    }
}
