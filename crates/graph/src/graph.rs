use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Identifier of a vertex, an index in `0..n`.
///
/// The paper breaks ties "by lexicographical order of vertex names"; we use
/// the numeric order of `VertexId` for that purpose everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

/// A port number: the index of a neighbour in a vertex's adjacency list.
///
/// In the fixed-port model a routing decision at `u` is "forward on port p";
/// the scheme has no control over how ports are numbered. Our ports are the
/// positions in the (id-sorted) adjacency list, fixed at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u32);

impl Port {
    /// Returns the port as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Edge weight / distance type.
///
/// Weights are strictly positive integers; distances are sums of weights.
/// Unweighted graphs use weight 1 on every edge.
pub type Weight = u64;

/// Sentinel distance for "unreachable".
pub const INFINITY: Weight = Weight::MAX;

/// A reference to one directed half of an undirected edge, as seen from the
/// vertex whose adjacency list it lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// The neighbour reached over this edge.
    pub to: VertexId,
    /// The weight of the edge.
    pub weight: Weight,
    /// The port of this edge at the *source* vertex.
    pub port: Port,
}

/// An undirected graph in compressed sparse row (CSR) form with fixed ports.
///
/// Construction goes through [`GraphBuilder`]; the built graph is immutable.
/// Adjacency lists are sorted by neighbour id, so port numbers are a
/// deterministic function of the edge set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` indexes `adj` for vertex `u`.
    offsets: Vec<usize>,
    /// Flattened adjacency: `(neighbour, weight)` sorted by neighbour id.
    adj: Vec<(VertexId, Weight)>,
    /// Number of undirected edges.
    m: usize,
    /// True if every edge has weight 1.
    unweighted: bool,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Returns true if every edge has weight 1.
    #[inline]
    pub fn is_unweighted(&self) -> bool {
        self.unweighted
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n() as u32).map(VertexId)
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Iterator over the edges incident to `u`, in port order.
    pub fn edges(&self, u: VertexId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.offsets[u.index()];
        let hi = self.offsets[u.index() + 1];
        self.adj[lo..hi]
            .iter()
            .enumerate()
            .map(|(i, &(to, weight))| EdgeRef { to, weight, port: Port(i as u32) })
    }

    /// The neighbour reached from `u` over `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a valid port of `u`.
    #[inline]
    pub fn neighbor_at(&self, u: VertexId, port: Port) -> EdgeRef {
        let lo = self.offsets[u.index()];
        let hi = self.offsets[u.index() + 1];
        let idx = lo + port.index();
        assert!(idx < hi, "port {port} out of range at vertex {u}");
        let (to, weight) = self.adj[idx];
        EdgeRef { to, weight, port }
    }

    /// The port at `u` leading to neighbour `v`, if the edge `(u, v)` exists.
    pub fn port_to(&self, u: VertexId, v: VertexId) -> Option<Port> {
        let lo = self.offsets[u.index()];
        let hi = self.offsets[u.index() + 1];
        self.adj[lo..hi]
            .binary_search_by_key(&v, |&(to, _)| to)
            .ok()
            .map(|i| Port(i as u32))
    }

    /// The weight of edge `(u, v)`, if it exists.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.port_to(u, v).map(|p| self.neighbor_at(u, p).weight)
    }

    /// Returns true if `(u, v)` is an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.port_to(u, v).is_some()
    }

    /// Iterator over every undirected edge `(u, v, w)` with `u < v`.
    pub fn all_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.edges(u)
                .filter(move |e| u < e.to)
                .map(move |e| (u, e.to, e.weight))
        })
    }

    /// The minimum and maximum edge weight, or `None` for an empty edge set.
    pub fn weight_range(&self) -> Option<(Weight, Weight)> {
        let mut it = self.all_edges().map(|(_, _, w)| w);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for w in it {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        Some((lo, hi))
    }

    /// Returns true if the graph is connected (the empty graph and the
    /// single-vertex graph count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for e in self.edges(u) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    count += 1;
                    stack.push(e.to);
                }
            }
        }
        count == n
    }

    /// The normalized diameter `D = max_{u,v} d(u,v) / min_{u != v} d(u,v)`
    /// computed from exact distances. Intended for tests and experiment
    /// reporting on small graphs (runs `n` Dijkstras).
    ///
    /// Returns `None` if the graph has fewer than two vertices or is
    /// disconnected.
    pub fn normalized_diameter(&self) -> Option<f64> {
        if self.n() < 2 {
            return None;
        }
        let mut max_d: Weight = 0;
        let mut min_d: Weight = INFINITY;
        for u in self.vertices() {
            let sp = crate::shortest_path::dijkstra(self, u);
            for v in self.vertices() {
                if v == u {
                    continue;
                }
                let d = sp.dist(v)?;
                max_d = max_d.max(d);
                min_d = min_d.min(d);
            }
        }
        Some(max_d as f64 / min_d as f64)
    }
}

/// Builder for [`Graph`]. Duplicate edges keep the smallest weight.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices the graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `(u, v)` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, the edge is a self
    /// loop, or the weight is zero.
    pub fn add_edge(&mut self, u: usize, v: usize, w: Weight) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        self.edges.push((u as u32, v as u32, w));
        Ok(())
    }

    /// Adds the undirected edge `(u, v)` with weight 1.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`].
    pub fn add_unit_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.add_edge(u, v, 1)
    }

    /// Returns true if the edge `(u, v)` was already added (in either
    /// direction).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let (a, b) = (u as u32, v as u32);
        self.edges
            .iter()
            .any(|&(x, y, _)| (x == a && y == b) || (x == b && y == a))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Parallel edges are merged keeping the smallest weight; adjacency lists
    /// are sorted by neighbour id so that port numbers are deterministic.
    pub fn build(self) -> Graph {
        let n = self.n;
        // Deduplicate on normalized (min, max) endpoints keeping min weight.
        let mut canon: Vec<(u32, u32, Weight)> = self
            .edges
            .into_iter()
            .map(|(u, v, w)| if u < v { (u, v, w) } else { (v, u, w) })
            .collect();
        canon.sort_unstable();
        canon.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut degree = vec![0usize; n];
        for &(u, v, _) in &canon {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adj = vec![(VertexId(0), 0 as Weight); offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &canon {
            adj[cursor[u as usize]] = (VertexId(v), w);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (VertexId(u), w);
            cursor[v as usize] += 1;
        }
        // Sort each adjacency slice by neighbour id for deterministic ports.
        for u in 0..n {
            adj[offsets[u]..offsets[u + 1]].sort_unstable_by_key(|&(v, _)| v);
        }
        let unweighted = canon.iter().all(|&(_, _, w)| w == 1);
        Graph { offsets, adj, m: canon.len(), unweighted: unweighted || canon.is_empty() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2).unwrap();
        b.add_edge(1, 2, 3).unwrap();
        b.add_edge(0, 2, 4).unwrap();
        b.build()
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 5, 1),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 3 })
        );
        assert_eq!(b.add_edge(1, 1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
        assert_eq!(b.add_edge(0, 1, 0), Err(GraphError::ZeroWeight { u: 0, v: 1 }));
    }

    #[test]
    fn builds_correct_csr() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(!g.is_unweighted());
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.edge_weight(VertexId(0), VertexId(2)), Some(4));
        assert_eq!(g.edge_weight(VertexId(2), VertexId(0)), Some(4));
        assert!(g.has_edge(VertexId(1), VertexId(2)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
    }

    #[test]
    fn ports_are_positions_in_sorted_adjacency() {
        let g = triangle();
        // Vertex 1's neighbours sorted by id: 0 then 2.
        assert_eq!(g.port_to(VertexId(1), VertexId(0)), Some(Port(0)));
        assert_eq!(g.port_to(VertexId(1), VertexId(2)), Some(Port(1)));
        let e = g.neighbor_at(VertexId(1), Port(1));
        assert_eq!(e.to, VertexId(2));
        assert_eq!(e.weight, 3);
    }

    #[test]
    fn duplicate_edges_keep_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9).unwrap();
        b.add_edge(1, 0, 4).unwrap();
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(4));
    }

    #[test]
    fn all_edges_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build();
        assert!(!g.is_connected());
        let empty = GraphBuilder::new(1).build();
        assert!(empty.is_connected());
    }

    #[test]
    fn weight_range_and_unweighted_flag() {
        let g = triangle();
        assert_eq!(g.weight_range(), Some((2, 4)));
        let mut b = GraphBuilder::new(3);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(1, 2).unwrap();
        let g = b.build();
        assert!(g.is_unweighted());
        assert_eq!(g.weight_range(), Some((1, 1)));
    }

    #[test]
    fn normalized_diameter_of_path() {
        let mut b = GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(1, 2).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        assert_eq!(g.normalized_diameter(), Some(3.0));
    }

    #[test]
    fn vertex_and_port_display() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(Port(1).to_string(), "p1");
        assert_eq!(VertexId::from(7u32), VertexId(7));
        assert_eq!(VertexId(7).index(), 7);
    }
}
