//! Deriving a mutated CSR graph from a base graph plus a batch of churn
//! events.
//!
//! The routing schemes in this workspace are built for *static* graphs; the
//! churn workloads (crate `routing-churn`) need to ask "what happens to a
//! scheme whose tables were built on `G` when the network has meanwhile
//! drifted to `G'`?". This module produces that `G'`:
//!
//! * vertex removals keep the id space intact — a removed vertex stays as an
//!   isolated, **dead** vertex, so the ids appearing in old routing tables
//!   remain meaningful;
//! * vertex additions append fresh ids at the end of the id space;
//! * because adjacency lists are sorted by neighbour id (see [`Graph`]),
//!   both choices preserve the port numbers of surviving edges wherever
//!   possible: an edge's port at `u` only shifts when a *smaller-id*
//!   neighbour of `u` was removed. [`MutationStats`] quantifies exactly how
//!   many ports survived, which is the mechanism behind the reachability
//!   collapse the stale-table experiments measure.
//!
//! [`largest_component`] / [`induced_subgraph`] support the rebuild
//! policies: after heavy churn the alive part of the graph may be
//! disconnected, and a rebuilt scheme (which requires a connected instance)
//! is constructed on the largest alive component.

use std::fmt;

use crate::{Graph, GraphBuilder, VertexId, Weight};

/// One atomic change to the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Removes a vertex and every edge incident to it. The id remains in
    /// the id space as a dead, isolated vertex.
    RemoveVertex(VertexId),
    /// Adds a fresh vertex (its id is the next unused id) attached to the
    /// given alive endpoints.
    AddVertex {
        /// Initial incident edges `(neighbour, weight)` of the new vertex.
        edges: Vec<(VertexId, Weight)>,
    },
    /// Removes one existing edge.
    RemoveEdge(VertexId, VertexId),
    /// Adds one new edge between alive vertices.
    AddEdge(VertexId, VertexId, Weight),
}

/// Why a batch of churn events could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// An event referenced an id outside the (current) id space.
    OutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Size of the id space at the time of the event.
        n: usize,
    },
    /// An event referenced a vertex that is dead at the time of the event.
    DeadVertex {
        /// The dead vertex.
        vertex: VertexId,
    },
    /// `RemoveEdge` named an edge that does not exist (or was already
    /// removed earlier in the batch).
    MissingEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// `AddEdge`/`AddVertex` would duplicate an existing edge.
    DuplicateEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// An added edge was a self loop or had weight zero.
    InvalidEdge {
        /// Description of the violation.
        what: String,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::OutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} is outside the id space 0..{n}")
            }
            MutationError::DeadVertex { vertex } => {
                write!(f, "vertex {vertex} is dead at the time of the event")
            }
            MutationError::MissingEdge { u, v } => {
                write!(f, "edge ({u}, {v}) does not exist")
            }
            MutationError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            MutationError::InvalidEdge { what } => write!(f, "invalid edge: {what}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// How much of the base graph's structure survived a mutation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Vertices removed by the batch.
    pub removed_vertices: usize,
    /// Vertices added by the batch.
    pub added_vertices: usize,
    /// Edges removed, **including** edges dropped because an endpoint was
    /// removed.
    pub removed_edges: usize,
    /// Edges added by the batch (including initial edges of added vertices).
    pub added_edges: usize,
    /// Directed adjacency entries `(u, port) -> v` of the base graph whose
    /// port is unchanged in the mutated graph.
    pub ports_preserved: usize,
    /// Directed adjacency entries of the base graph whose endpoints are both
    /// still alive (the denominator for port preservation).
    pub ports_comparable: usize,
}

impl MutationStats {
    /// Fraction of comparable ports that kept their number (1.0 when
    /// nothing was comparable, i.e. the base had no surviving edges).
    pub fn port_preservation(&self) -> f64 {
        if self.ports_comparable == 0 {
            1.0
        } else {
            self.ports_preserved as f64 / self.ports_comparable as f64
        }
    }
}

/// The result of applying a churn batch: the mutated graph, the liveness
/// mask over its id space, and survival statistics.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The mutated graph. Dead vertices are present but isolated.
    pub graph: Graph,
    /// `alive[v]` is false exactly for removed vertices. Indexed by the
    /// mutated graph's id space (additions extend it).
    pub alive: Vec<bool>,
    /// Survival statistics relative to the base graph of the call.
    pub stats: MutationStats,
}

/// Applies a batch of churn events to `base`, producing the mutated graph.
///
/// `base_alive` carries liveness from earlier rounds (`None` means every
/// vertex of `base` is alive). Events are applied in order and validated
/// against the evolving state, so one batch may remove a vertex and then
/// add an edge among the survivors.
///
/// # Errors
///
/// Returns the first [`MutationError`] in event order; the base graph is
/// never modified (this function is pure).
pub fn apply_events(
    base: &Graph,
    base_alive: Option<&[bool]>,
    events: &[ChurnEvent],
) -> Result<Mutation, MutationError> {
    let base_n = base.n();
    let mut alive: Vec<bool> = match base_alive {
        Some(mask) => {
            assert_eq!(mask.len(), base_n, "alive mask must cover the base id space");
            mask.to_vec()
        }
        None => vec![true; base_n],
    };
    // Working edge set as an adjacency of sorted neighbour lists, kept
    // consistent with `alive` throughout the batch.
    let mut adj: Vec<Vec<(VertexId, Weight)>> = (0..base_n)
        .map(|u| {
            if alive[u] {
                base.edges(VertexId(u as u32))
                    .filter(|e| alive[e.to.index()])
                    .map(|e| (e.to, e.weight))
                    .collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut stats = MutationStats::default();

    let check_alive = |alive: &[bool], v: VertexId| -> Result<(), MutationError> {
        if v.index() >= alive.len() {
            return Err(MutationError::OutOfRange { vertex: v, n: alive.len() });
        }
        if !alive[v.index()] {
            return Err(MutationError::DeadVertex { vertex: v });
        }
        Ok(())
    };

    for event in events {
        match event {
            ChurnEvent::RemoveVertex(v) => {
                check_alive(&alive, *v)?;
                alive[v.index()] = false;
                stats.removed_vertices += 1;
                let incident = std::mem::take(&mut adj[v.index()]);
                stats.removed_edges += incident.len();
                for (u, _) in incident {
                    adj[u.index()].retain(|&(w, _)| w != *v);
                }
            }
            ChurnEvent::AddVertex { edges } => {
                let id = VertexId(alive.len() as u32);
                for &(u, w) in edges {
                    check_alive(&alive, u)?;
                    if w == 0 {
                        return Err(MutationError::InvalidEdge {
                            what: format!("edge ({id}, {u}) has weight 0"),
                        });
                    }
                }
                let mut endpoints: Vec<VertexId> = edges.iter().map(|&(u, _)| u).collect();
                endpoints.sort_unstable();
                endpoints.dedup();
                if endpoints.len() != edges.len() {
                    return Err(MutationError::InvalidEdge {
                        what: format!("duplicate endpoints in the initial edges of {id}"),
                    });
                }
                alive.push(true);
                adj.push(Vec::new());
                stats.added_vertices += 1;
                for &(u, w) in edges {
                    adj[u.index()].push((id, w));
                    adj[id.index()].push((u, w));
                    stats.added_edges += 1;
                }
            }
            ChurnEvent::RemoveEdge(u, v) => {
                check_alive(&alive, *u)?;
                check_alive(&alive, *v)?;
                let before = adj[u.index()].len();
                adj[u.index()].retain(|&(w, _)| w != *v);
                if adj[u.index()].len() == before {
                    return Err(MutationError::MissingEdge { u: *u, v: *v });
                }
                adj[v.index()].retain(|&(w, _)| w != *u);
                stats.removed_edges += 1;
            }
            ChurnEvent::AddEdge(u, v, w) => {
                check_alive(&alive, *u)?;
                check_alive(&alive, *v)?;
                if u == v {
                    return Err(MutationError::InvalidEdge {
                        what: format!("self loop at {u}"),
                    });
                }
                if *w == 0 {
                    return Err(MutationError::InvalidEdge {
                        what: format!("edge ({u}, {v}) has weight 0"),
                    });
                }
                if adj[u.index()].iter().any(|&(x, _)| x == *v) {
                    return Err(MutationError::DuplicateEdge { u: *u, v: *v });
                }
                adj[u.index()].push((*v, *w));
                adj[v.index()].push((*u, *w));
                stats.added_edges += 1;
            }
        }
    }

    // Materialize the CSR graph.
    let n = alive.len();
    let mut builder = GraphBuilder::new(n);
    for (u, list) in adj.iter().enumerate() {
        for &(v, w) in list {
            if u < v.index() {
                builder
                    .add_edge(u, v.index(), w)
                    .expect("mutation kept the edge set valid");
            }
        }
    }
    let graph = builder.build();

    // Port-preservation accounting against the base graph.
    for u in base.vertices() {
        if u.index() >= alive.len() || !alive[u.index()] {
            continue;
        }
        for e in base.edges(u) {
            if !alive[e.to.index()] {
                continue;
            }
            stats.ports_comparable += 1;
            if graph
                .port_to(u, e.to)
                .is_some_and(|p| p == e.port)
            {
                stats.ports_preserved += 1;
            }
        }
    }

    Ok(Mutation { graph, alive, stats })
}

/// The vertices of the largest connected component among `alive` vertices,
/// in increasing id order. Dead and isolated-but-alive vertices form their
/// own (small) components.
pub fn largest_component(g: &Graph, alive: &[bool]) -> Vec<VertexId> {
    assert_eq!(alive.len(), g.n(), "alive mask must cover the graph");
    let mut seen = vec![false; g.n()];
    let mut best: Vec<VertexId> = Vec::new();
    for start in g.vertices() {
        if seen[start.index()] || !alive[start.index()] {
            continue;
        }
        let mut component = vec![start];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(u) = stack.pop() {
            for e in g.edges(u) {
                if alive[e.to.index()] && !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    component.push(e.to);
                    stack.push(e.to);
                }
            }
        }
        if component.len() > best.len() {
            best = component;
        }
    }
    best.sort_unstable();
    best
}

/// The subgraph induced by `keep` (which must be strictly increasing),
/// relabeled to the compact id space `0..keep.len()`.
///
/// Returns the compact graph together with the two id maps:
/// `to_original[new] = old` and `to_compact[old] = Some(new)`.
pub fn induced_subgraph(
    g: &Graph,
    keep: &[VertexId],
) -> (Graph, Vec<VertexId>, Vec<Option<u32>>) {
    debug_assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep must be sorted and unique");
    let mut to_compact: Vec<Option<u32>> = vec![None; g.n()];
    for (new, &old) in keep.iter().enumerate() {
        to_compact[old.index()] = Some(new as u32);
    }
    let mut builder = GraphBuilder::new(keep.len());
    for (new_u, &old_u) in keep.iter().enumerate() {
        for e in g.edges(old_u) {
            if let Some(new_v) = to_compact[e.to.index()] {
                if (new_u as u32) < new_v {
                    builder
                        .add_edge(new_u, new_v as usize, e.weight)
                        .expect("induced edges are valid");
                }
            }
        }
    }
    (builder.build(), keep.to_vec(), to_compact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn line5() -> Graph {
        generators::path(5)
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = line5();
        let m = apply_events(&g, None, &[]).unwrap();
        assert_eq!(m.graph, g);
        assert!(m.alive.iter().all(|&a| a));
        assert_eq!(m.stats.port_preservation(), 1.0);
        assert_eq!(m.stats.ports_comparable, 2 * g.m());
    }

    #[test]
    fn removing_a_vertex_isolates_it() {
        let g = line5();
        let m = apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(2))]).unwrap();
        assert_eq!(m.graph.n(), 5);
        assert_eq!(m.graph.degree(VertexId(2)), 0);
        assert_eq!(m.graph.m(), 2);
        assert!(!m.alive[2]);
        assert_eq!(m.stats.removed_vertices, 1);
        assert_eq!(m.stats.removed_edges, 2);
        // Surviving directed entries: 0->1, 1->0, 3->4, 4->3. All keep their
        // port except 3->4, which shifts from port 1 to port 0 because 3's
        // smaller-id neighbour 2 disappeared from its adjacency list.
        assert_eq!(m.stats.ports_comparable, 4);
        assert_eq!(m.stats.ports_preserved, 3);
    }

    #[test]
    fn port_shift_is_detected() {
        // Star: removing leaf 1 shifts the center's ports towards leaves 2..;
        // the leaves' own single ports to the centre are preserved.
        let g = generators::star(4);
        let m = apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(1))]).unwrap();
        // Comparable: centre->2, centre->3, 2->centre, 3->centre.
        assert_eq!(m.stats.ports_comparable, 4);
        assert_eq!(m.stats.ports_preserved, 2);
        assert!((m.stats.port_preservation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn added_vertices_get_fresh_ids() {
        let g = line5();
        let m = apply_events(
            &g,
            None,
            &[ChurnEvent::AddVertex { edges: vec![(VertexId(0), 2), (VertexId(4), 3)] }],
        )
        .unwrap();
        assert_eq!(m.graph.n(), 6);
        assert!(m.alive[5]);
        assert_eq!(m.graph.edge_weight(VertexId(5), VertexId(0)), Some(2));
        assert_eq!(m.graph.edge_weight(VertexId(5), VertexId(4)), Some(3));
        // Appending a high id never shifts existing ports.
        assert_eq!(m.stats.port_preservation(), 1.0);
    }

    #[test]
    fn edge_churn() {
        let g = line5();
        let events = [
            ChurnEvent::RemoveEdge(VertexId(1), VertexId(2)),
            ChurnEvent::AddEdge(VertexId(0), VertexId(4), 7),
        ];
        let m = apply_events(&g, None, &events).unwrap();
        assert!(!m.graph.has_edge(VertexId(1), VertexId(2)));
        assert_eq!(m.graph.edge_weight(VertexId(0), VertexId(4)), Some(7));
        assert_eq!(m.graph.m(), 4);
    }

    #[test]
    fn events_validate_against_evolving_state() {
        let g = line5();
        // Removing a vertex twice is an error.
        let err = apply_events(
            &g,
            None,
            &[
                ChurnEvent::RemoveVertex(VertexId(1)),
                ChurnEvent::RemoveVertex(VertexId(1)),
            ],
        )
        .unwrap_err();
        assert_eq!(err, MutationError::DeadVertex { vertex: VertexId(1) });
        // Edges to dead vertices are rejected.
        let err = apply_events(
            &g,
            None,
            &[
                ChurnEvent::RemoveVertex(VertexId(1)),
                ChurnEvent::AddEdge(VertexId(0), VertexId(1), 1),
            ],
        )
        .unwrap_err();
        assert_eq!(err, MutationError::DeadVertex { vertex: VertexId(1) });
        // Removing an edge adjacent to a removed vertex is MissingEdge.
        let err = apply_events(
            &g,
            None,
            &[
                ChurnEvent::RemoveVertex(VertexId(1)),
                ChurnEvent::RemoveEdge(VertexId(0), VertexId(2)),
            ],
        )
        .unwrap_err();
        assert_eq!(err, MutationError::MissingEdge { u: VertexId(0), v: VertexId(2) });
        // Out-of-range and invalid edges.
        let err =
            apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(99))]).unwrap_err();
        assert!(matches!(err, MutationError::OutOfRange { .. }));
        let err = apply_events(&g, None, &[ChurnEvent::AddEdge(VertexId(0), VertexId(0), 1)])
            .unwrap_err();
        assert!(matches!(err, MutationError::InvalidEdge { .. }));
        let err = apply_events(&g, None, &[ChurnEvent::AddEdge(VertexId(0), VertexId(1), 1)])
            .unwrap_err();
        assert_eq!(err, MutationError::DuplicateEdge { u: VertexId(0), v: VertexId(1) });
    }

    #[test]
    fn chained_rounds_respect_prior_liveness() {
        let g = line5();
        let m1 = apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(0))]).unwrap();
        let m2 = apply_events(
            &m1.graph,
            Some(&m1.alive),
            &[ChurnEvent::RemoveVertex(VertexId(4))],
        )
        .unwrap();
        assert!(!m2.alive[0] && !m2.alive[4]);
        assert_eq!(m2.graph.m(), 2);
        let err = apply_events(
            &m2.graph,
            Some(&m2.alive),
            &[ChurnEvent::AddEdge(VertexId(0), VertexId(2), 1)],
        )
        .unwrap_err();
        assert_eq!(err, MutationError::DeadVertex { vertex: VertexId(0) });
    }

    #[test]
    fn largest_component_after_split() {
        let g = line5();
        let m = apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(1))]).unwrap();
        // Components among alive vertices: {0}, {2,3,4}.
        let comp = largest_component(&m.graph, &m.alive);
        assert_eq!(comp, vec![VertexId(2), VertexId(3), VertexId(4)]);
    }

    #[test]
    fn induced_subgraph_relabels_compactly() {
        let g = line5();
        let keep = [VertexId(2), VertexId(3), VertexId(4)];
        let (sub, to_original, to_compact) = induced_subgraph(&g, &keep);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert!(sub.is_connected());
        assert_eq!(to_original, keep.to_vec());
        assert_eq!(to_compact[3], Some(1));
        assert_eq!(to_compact[0], None);
        assert!(sub.has_edge(VertexId(0), VertexId(1)));
    }
}
