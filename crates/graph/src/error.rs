use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint index was outside the declared vertex range.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// A self loop `(u, u)` was added; the routing model assumes simple graphs.
    SelfLoop {
        /// The vertex with the self loop.
        vertex: usize,
    },
    /// An edge weight of zero was supplied; the paper assumes strictly
    /// positive weights (`w : E -> R+`).
    ZeroWeight {
        /// One endpoint of the offending edge.
        u: usize,
        /// The other endpoint of the offending edge.
        v: usize,
    },
    /// The graph is not connected but the operation requires connectivity.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop at vertex {vertex}"),
            GraphError::ZeroWeight { u, v } => {
                write!(f, "edge ({u}, {v}) has zero weight; weights must be positive")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl Error for GraphError {}

// Graph errors can surface from rebuild workers on background threads in
// the serving layer, so `Send + Sync + 'static` is part of the contract —
// checked at compile time, not merely by a test.
const fn assert_send_sync_static<T: Send + Sync + 'static>() {}
const _: () = assert_send_sync_static::<GraphError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 3 };
        assert!(e.to_string().contains("vertex 7"));
        let e = GraphError::SelfLoop { vertex: 2 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::ZeroWeight { u: 1, v: 2 };
        assert!(e.to_string().contains("zero weight"));
        assert_eq!(GraphError::Disconnected.to_string(), "graph is not connected");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
