//! The allocation-free search kernel: a reusable [`SearchScratch`] workspace
//! that runs every flavour of shortest-path search the schemes need without
//! allocating per call.
//!
//! # Why
//!
//! Preprocessing in this workspace is thousands of independent graph
//! searches: one Dijkstra per source in
//! [`crate::apsp::DistanceMatrix::new`], one bounded ball search per vertex
//! in `BallTable::build`, one restricted cluster search per vertex in the
//! Thorup–Zwick hierarchy. The original entry points in [`crate::shortest_path`]
//! allocate their working state per call — four `O(n)` vectors for a full
//! Dijkstra, three `HashMap`s for a ball or cluster search — which makes the
//! allocator, not the graph, the bottleneck once `n` reaches 10⁴.
//!
//! A [`SearchScratch`] is allocated **once** (per worker thread — see
//! `routing_par::par_map_scratch`) and reused across searches:
//!
//! * per-vertex state (`dist`, `parent`, `first_hop`, `settled`) lives in
//!   flat arrays whose validity is tracked by an **epoch stamp**: each
//!   search bumps a 64-bit epoch and a slot is live only when its stamp
//!   equals the current epoch, so "resetting" the workspace is a single
//!   integer increment, `O(1)` regardless of how little of the graph the
//!   previous search touched;
//! * the binary heap is kept allocated between searches (`clear()` keeps
//!   capacity);
//! * the settle order (the `(distance, id)`-sorted vertex sequence every
//!   bounded search is defined by) is recorded in a reusable buffer.
//!
//! Every search method is **bit-identical** to its allocating counterpart in
//! [`crate::shortest_path`] — same lexicographic `(distance, id)`
//! tie-breaking, same member order, same radius rule — which the equivalence
//! property tests in `tests/properties.rs` assert against the pre-refactor
//! implementations kept in [`crate::reference`].
//!
//! # Example
//!
//! ```
//! use routing_graph::scratch::SearchScratch;
//! use routing_graph::{generators, VertexId};
//!
//! let g = generators::grid(8, 8);
//! let mut scratch = SearchScratch::for_graph(&g);
//! // Two searches, one workspace, no per-call allocation.
//! scratch.dijkstra_into(&g, VertexId(0));
//! assert_eq!(scratch.dist(VertexId(63)), Some(14));
//! scratch.dijkstra_into(&g, VertexId(63));
//! assert_eq!(scratch.dist(VertexId(0)), Some(14));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Graph, VertexId, Weight, INFINITY};

/// Sentinel for "no parent / no first hop / no nearest source".
const NONE: u32 = u32::MAX;

/// Epoch value no search ever uses, so a fresh workspace (all stamps at
/// this value, epoch at 0) reports nothing as reached or settled.
const NEVER: u64 = u64::MAX;

/// Which search the workspace ran last; accessors whose data only certain
/// searches produce are gated on this, so a reused workspace can never hand
/// out a stale value from an earlier search of a different kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchKind {
    /// No search has run yet.
    Idle,
    /// [`SearchScratch::dijkstra_into`] or [`SearchScratch::ball_into`]:
    /// single origin, `parent` and `first_hop` populated.
    SingleOrigin,
    /// [`SearchScratch::multi_source_into`]: the `parent` slots hold the
    /// nearest source, `first_hop` is not populated.
    MultiSource,
    /// [`SearchScratch::cluster_into`]: single origin, `parent` populated,
    /// `first_hop` not populated.
    Cluster,
}

/// A reusable, allocation-free workspace for graph searches.
///
/// See the [module docs](self) for the design; construct one per worker
/// thread with [`SearchScratch::for_graph`] and run any sequence of
/// [`dijkstra_into`](SearchScratch::dijkstra_into),
/// [`ball_into`](SearchScratch::ball_into),
/// [`multi_source_into`](SearchScratch::multi_source_into) and
/// [`cluster_into`](SearchScratch::cluster_into) searches on it. Results are
/// read through the accessors ([`dist`](SearchScratch::dist),
/// [`parent`](SearchScratch::parent), [`first_hop`](SearchScratch::first_hop),
/// [`order`](SearchScratch::order), …) and stay valid until the next
/// `*_into` call.
#[derive(Debug, Clone)]
pub struct SearchScratch {
    n: usize,
    /// Current search epoch; a per-vertex slot is live iff its stamp matches.
    epoch: u64,
    /// Epoch stamp guarding `dist`/`parent`/`first_hop` per vertex.
    stamp: Vec<u64>,
    /// Epoch stamp marking settled (finalized) vertices.
    settled: Vec<u64>,
    dist: Vec<Weight>,
    /// Parent in the search tree (`NONE` for roots); doubles as the nearest
    /// source `p_A(v)` after a multi-source search.
    parent: Vec<u32>,
    first_hop: Vec<u32>,
    /// Heap for single-origin searches, ordered by `(distance, id)`.
    heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
    /// Heap for multi-source searches, ordered by `(distance, source, id)`.
    heap_tagged: BinaryHeap<Reverse<(Weight, VertexId, VertexId)>>,
    /// Vertices in settle order with their final distances.
    order: Vec<(VertexId, Weight)>,
    /// Source of the last single-origin search (for materialization).
    source: VertexId,
    /// Which search ran last (gates the kind-specific accessors).
    kind: SearchKind,
}

impl SearchScratch {
    /// A workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        SearchScratch {
            n,
            epoch: 0,
            stamp: vec![NEVER; n],
            settled: vec![NEVER; n],
            dist: vec![0; n],
            parent: vec![NONE; n],
            first_hop: vec![NONE; n],
            heap: BinaryHeap::with_capacity(n.min(1 << 16)),
            heap_tagged: BinaryHeap::new(),
            order: Vec::with_capacity(n.min(1 << 16)),
            source: VertexId(0),
            kind: SearchKind::Idle,
        }
    }

    /// A workspace sized for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        Self::new(g.n())
    }

    /// Number of vertices the workspace covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Starts a new search: bumps the epoch (the `O(1)` reset) and clears
    /// the reusable buffers, keeping their capacity.
    fn begin(&mut self) {
        self.epoch += 1;
        self.heap.clear();
        self.heap_tagged.clear();
        self.order.clear();
    }

    #[inline]
    fn relax(&mut self, to: usize, nd: Weight) -> bool {
        if self.stamp[to] != self.epoch {
            self.stamp[to] = self.epoch;
            self.dist[to] = nd;
            true
        } else if nd < self.dist[to] {
            self.dist[to] = nd;
            true
        } else {
            false
        }
    }

    /// Runs a full Dijkstra from `source` with `(distance, id)` tie-breaking,
    /// bit-identical to [`crate::shortest_path::dijkstra`].
    ///
    /// # Panics
    ///
    /// Panics if `g` has more vertices than the workspace.
    pub fn dijkstra_into(&mut self, g: &Graph, source: VertexId) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        self.begin();
        self.kind = SearchKind::SingleOrigin;
        self.source = source;
        let s = source.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.first_hop[s] = NONE;
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let ui = u.index();
            if self.settled[ui] == self.epoch {
                continue;
            }
            self.settled[ui] = self.epoch;
            self.order.push((u, d));
            for e in g.edges(u) {
                let to = e.to.index();
                let nd = d + e.weight;
                if self.relax(to, nd) {
                    self.parent[to] = u.0;
                    self.first_hop[to] =
                        if u == source { e.to.0 } else { self.first_hop[ui] };
                    self.heap.push(Reverse((nd, e.to)));
                }
            }
        }
    }

    /// Runs the bounded ball search `B(u, ℓ)`: Dijkstra from `u` that stops
    /// as soon as `ℓ` vertices are settled (or the component is exhausted),
    /// so it never pays more than the ball costs. Members (with distances, in
    /// `(distance, id)` settle order) are available as [`order`](Self::order)
    /// afterwards; the returned value is the ball radius `r_u(ℓ)`.
    ///
    /// Bit-identical to [`crate::shortest_path::ball`] (kept as
    /// [`crate::reference::ball_hashmap`] for the equivalence tests).
    pub fn ball_into(&mut self, g: &Graph, u: VertexId, ell: usize) -> Weight {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        let ell = ell.max(1);
        self.begin();
        self.kind = SearchKind::SingleOrigin;
        self.source = u;
        let s = u.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.first_hop[s] = NONE;
        self.heap.push(Reverse((0, u)));

        // Vertices settled after the ball is full, at the same distance as
        // the last member, make the top distance level incomplete.
        let mut overflow_at_max = false;
        let mut max_dist: Weight = 0;
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let vi = v.index();
            if self.settled[vi] == self.epoch {
                continue;
            }
            self.settled[vi] = self.epoch;
            if self.order.len() < ell {
                self.order.push((v, d));
                max_dist = d;
            } else if d == max_dist {
                overflow_at_max = true;
                break;
            } else {
                break;
            }
            for e in g.edges(v) {
                let to = e.to.index();
                let nd = d + e.weight;
                if self.relax(to, nd) {
                    self.parent[to] = v.0;
                    self.first_hop[to] = if v == u { e.to.0 } else { self.first_hop[vi] };
                    self.heap.push(Reverse((nd, e.to)));
                }
            }
        }

        if overflow_at_max {
            // Not every vertex at distance `max_dist` made it into the ball;
            // the radius is the previous distinct distance value present.
            self.order
                .iter()
                .rev()
                .map(|&(_, d)| d)
                .find(|&d| d < max_dist)
                .unwrap_or(0)
        } else {
            max_dist
        }
    }

    /// Runs a multi-source Dijkstra from `sources`, computing `d(v, A)` and
    /// the nearest source `p_A(v)` (readable as [`nearest`](Self::nearest))
    /// with ties broken by source id.
    ///
    /// `sources` must be sorted by id and deduplicated (the
    /// [`crate::shortest_path::multi_source_dijkstra`] wrapper normalizes
    /// arbitrary input). Bit-identical to that wrapper.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `sources` is not sorted and deduplicated.
    pub fn multi_source_into(&mut self, g: &Graph, sources: &[VertexId]) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        debug_assert!(sources.windows(2).all(|w| w[0] < w[1]), "sources must be sorted+deduped");
        self.begin();
        self.kind = SearchKind::MultiSource;
        for &s in sources {
            let si = s.index();
            self.stamp[si] = self.epoch;
            self.dist[si] = 0;
            self.parent[si] = s.0; // nearest source of a source is itself
            self.heap_tagged.push(Reverse((0, s, s)));
        }
        while let Some(Reverse((d, src, u))) = self.heap_tagged.pop() {
            let ui = u.index();
            if self.settled[ui] == self.epoch {
                continue;
            }
            // A stale entry may carry an outdated source; skip it.
            if self.parent[ui] != src.0 || self.dist[ui] != d {
                continue;
            }
            self.settled[ui] = self.epoch;
            self.order.push((u, d));
            for e in g.edges(u) {
                let to = e.to.index();
                if self.settled[to] == self.epoch {
                    continue;
                }
                let nd = d + e.weight;
                let better = if self.stamp[to] != self.epoch {
                    true
                } else {
                    nd < self.dist[to] || (nd == self.dist[to] && src.0 < self.parent[to])
                };
                if better {
                    self.stamp[to] = self.epoch;
                    self.dist[to] = nd;
                    self.parent[to] = src.0;
                    self.heap_tagged.push(Reverse((nd, src, e.to)));
                }
            }
        }
    }

    /// Runs the restricted (cluster) search from `w`: explores like Dijkstra
    /// but keeps a vertex `v` only when `d(w, v) < bound[v]`. Members in
    /// settle order are available as [`order`](Self::order); parents via
    /// [`parent`](Self::parent) (valid for settled members only).
    ///
    /// Bit-identical to [`crate::shortest_path::cluster_dijkstra`] (kept as
    /// [`crate::reference::cluster_dijkstra_hashmap`]).
    pub fn cluster_into(&mut self, g: &Graph, w: VertexId, bound: &[Weight]) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        assert_eq!(bound.len(), g.n(), "bound slice must have one entry per vertex");
        self.begin();
        self.kind = SearchKind::Cluster;
        self.source = w;
        let s = w.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.heap.push(Reverse((0, w)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let ui = u.index();
            if self.settled[ui] == self.epoch {
                continue;
            }
            self.settled[ui] = self.epoch;
            self.order.push((u, d));
            for e in g.edges(u) {
                let to = e.to.index();
                let nd = d + e.weight;
                // Keep the vertex only if it belongs to the cluster (the
                // root is always kept).
                if e.to != w && nd >= bound[to] {
                    continue;
                }
                if self.relax(to, nd) {
                    self.parent[to] = u.0;
                    self.heap.push(Reverse((nd, e.to)));
                }
            }
        }
    }

    /// Distance found by the last search, or `None` if `v` was not reached.
    ///
    /// After a bounded ([`ball_into`](Self::ball_into)) or restricted
    /// ([`cluster_into`](Self::cluster_into)) search this is only final for
    /// settled vertices — use [`order`](Self::order) for the member set.
    #[inline]
    pub fn dist(&self, v: VertexId) -> Option<Weight> {
        (self.stamp[v.index()] == self.epoch).then(|| self.dist[v.index()])
    }

    /// True if the last search settled (finalized) `v`.
    #[inline]
    pub fn is_settled(&self, v: VertexId) -> bool {
        self.settled[v.index()] == self.epoch
    }

    /// Parent of `v` in the last search tree (`None` for the root and for
    /// unreached vertices).
    ///
    /// # Panics
    ///
    /// Panics after a [`multi_source_into`](Self::multi_source_into) search,
    /// whose slots hold nearest sources, not parents — use
    /// [`nearest`](Self::nearest) there.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        assert!(
            self.kind != SearchKind::MultiSource,
            "parent() after a multi-source search; use nearest()"
        );
        if self.stamp[v.index()] != self.epoch || self.parent[v.index()] == NONE {
            return None;
        }
        Some(VertexId(self.parent[v.index()]))
    }

    /// First vertex after the source on the path to `v` found by the last
    /// full or bounded single-origin search (`None` for the source and
    /// unreached vertices).
    ///
    /// # Panics
    ///
    /// Panics if the last search was not [`dijkstra_into`](Self::dijkstra_into)
    /// or [`ball_into`](Self::ball_into) — multi-source and cluster searches
    /// do not record first hops, so a leftover value from an earlier search
    /// must not leak through.
    #[inline]
    pub fn first_hop(&self, v: VertexId) -> Option<VertexId> {
        assert!(
            self.kind == SearchKind::SingleOrigin,
            "first_hop() is only populated by dijkstra_into / ball_into"
        );
        if self.stamp[v.index()] != self.epoch || self.first_hop[v.index()] == NONE {
            return None;
        }
        Some(VertexId(self.first_hop[v.index()]))
    }

    /// Nearest source `p_A(v)` after [`multi_source_into`](Self::multi_source_into)
    /// (`None` for unreached vertices).
    ///
    /// # Panics
    ///
    /// Panics if the last search was not a multi-source one — the slots hold
    /// parents then, not nearest sources.
    #[inline]
    pub fn nearest(&self, v: VertexId) -> Option<VertexId> {
        assert!(
            self.kind == SearchKind::MultiSource,
            "nearest() is only populated by multi_source_into"
        );
        if self.stamp[v.index()] != self.epoch || self.parent[v.index()] == NONE {
            return None;
        }
        Some(VertexId(self.parent[v.index()]))
    }

    /// Vertices settled by the last search, in `(distance, id)` settle order,
    /// with their final distances. For a ball or cluster search this is
    /// exactly the member list.
    #[inline]
    pub fn order(&self) -> &[(VertexId, Weight)] {
        &self.order
    }

    /// The source of the last single-origin (full, bounded or restricted)
    /// search.
    ///
    /// # Panics
    ///
    /// Panics before the first search and after a multi-source search
    /// (which has no single source).
    pub fn source(&self) -> VertexId {
        assert!(
            matches!(self.kind, SearchKind::SingleOrigin | SearchKind::Cluster),
            "source() needs a preceding single-origin search"
        );
        self.source
    }

    /// The tree path from the last search's source to `v` (inclusive), or
    /// `None` if `v` was not settled. Allocates exactly the returned path.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if self.settled[v.index()] != self.epoch {
            return None;
        }
        let mut len = 1usize;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            len += 1;
            cur = p;
        }
        let mut path = vec![v; len];
        let mut i = len - 1;
        cur = v;
        while let Some(p) = self.parent(cur) {
            i -= 1;
            path[i] = p;
            cur = p;
        }
        Some(path)
    }

    /// Writes the full distance row of the last search into `out`
    /// (`INFINITY` for unreached vertices). `out` must have one slot per
    /// graph vertex.
    pub fn write_dist_row(&self, out: &mut [Weight]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if self.stamp[i] == self.epoch { self.dist[i] } else { INFINITY };
        }
    }

    /// The full distance row of the last search as a fresh vector
    /// (`INFINITY` for unreached vertices), sized like the graph searched.
    pub fn dist_row(&self, n: usize) -> Vec<Weight> {
        let mut row = vec![INFINITY; n];
        self.write_dist_row(&mut row);
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path::{ball, cluster_dijkstra, dijkstra, multi_source_dijkstra};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(
            80,
            0.07,
            generators::WeightModel::Uniform { lo: 1, hi: 9 },
            &mut rng,
        )
    }

    #[test]
    fn dijkstra_into_matches_wrapper_across_reuses() {
        let g = random_graph(3);
        let mut s = SearchScratch::for_graph(&g);
        for src in [0u32, 17, 42, 0, 79] {
            let src = VertexId(src);
            s.dijkstra_into(&g, src);
            let sp = dijkstra(&g, src);
            assert_eq!(s.source(), src);
            for v in g.vertices() {
                assert_eq!(s.dist(v), sp.dist(v), "dist {src}->{v}");
                assert_eq!(s.parent(v), sp.parent(v), "parent {src}->{v}");
                assert_eq!(s.first_hop(v), sp.first_hop(v), "hop {src}->{v}");
                assert_eq!(s.path_to(v), sp.path_to(v), "path {src}->{v}");
            }
        }
    }

    #[test]
    fn ball_into_matches_ball_after_full_search() {
        let g = random_graph(5);
        let mut s = SearchScratch::for_graph(&g);
        // Interleave with a full search to prove the epoch reset works.
        s.dijkstra_into(&g, VertexId(0));
        for (u, ell) in [(VertexId(7), 1), (VertexId(7), 9), (VertexId(30), 500)] {
            let radius = s.ball_into(&g, u, ell);
            let b = ball(&g, u, ell);
            assert_eq!(radius, b.radius());
            assert_eq!(s.order(), b.members());
            for &(v, _) in s.order() {
                assert_eq!(s.first_hop(v), b.first_hop(v));
            }
        }
    }

    #[test]
    fn multi_source_into_matches_wrapper() {
        let g = random_graph(7);
        let sources = vec![VertexId(2), VertexId(40), VertexId(71)];
        let ms = multi_source_dijkstra(&g, &sources);
        let mut s = SearchScratch::for_graph(&g);
        s.multi_source_into(&g, &sources);
        for v in g.vertices() {
            assert_eq!(s.dist(v), ms.dist(v));
            assert_eq!(s.nearest(v), ms.nearest(v));
        }
    }

    #[test]
    fn cluster_into_matches_wrapper() {
        let g = random_graph(9);
        let ms = multi_source_dijkstra(&g, &[VertexId(11), VertexId(60)]);
        let bound: Vec<Weight> =
            g.vertices().map(|v| ms.dist(v).unwrap_or(INFINITY)).collect();
        let mut s = SearchScratch::for_graph(&g);
        for w in [VertexId(0), VertexId(11), VertexId(55)] {
            s.cluster_into(&g, w, &bound);
            let tree = cluster_dijkstra(&g, w, &bound);
            assert_eq!(s.order(), tree.members());
            for &(v, _) in s.order() {
                assert_eq!(Some(s.parent(v)), tree.parent(v));
            }
        }
    }

    #[test]
    fn fresh_scratch_reports_nothing_reached() {
        let s = SearchScratch::new(4);
        for v in 0..4 {
            assert_eq!(s.dist(VertexId(v)), None);
            assert!(!s.is_settled(VertexId(v)));
        }
        assert!(s.order().is_empty());
    }

    #[test]
    #[should_panic(expected = "first_hop() is only populated")]
    fn first_hop_after_cluster_search_panics() {
        let g = generators::path(4);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_into(&g, VertexId(0));
        let bound = vec![crate::INFINITY; 4];
        s.cluster_into(&g, VertexId(0), &bound);
        // The previous Dijkstra left first-hop data behind; the kind gate
        // must refuse to serve it instead of returning it as current.
        let _ = s.first_hop(VertexId(3));
    }

    #[test]
    #[should_panic(expected = "nearest() is only populated")]
    fn nearest_after_single_origin_search_panics() {
        let g = generators::path(4);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_into(&g, VertexId(0));
        let _ = s.nearest(VertexId(3));
    }

    #[test]
    fn dist_row_marks_unreachable() {
        let g = generators::path(3);
        let mut s = SearchScratch::new(5);
        s.dijkstra_into(&g, VertexId(0));
        assert_eq!(s.dist_row(3), vec![0, 1, 2]);
        let mut row = vec![0; 3];
        s.write_dist_row(&mut row);
        assert_eq!(row, vec![0, 1, 2]);
        assert!(s.is_settled(VertexId(2)));
        assert_eq!(s.n(), 5);
    }
}
