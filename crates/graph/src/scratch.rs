//! The allocation-free search kernel: a reusable [`SearchScratch`] workspace
//! that runs every flavour of shortest-path search the schemes need without
//! allocating per call.
//!
//! # Why
//!
//! Preprocessing in this workspace is thousands of independent graph
//! searches: one Dijkstra per source in
//! [`crate::apsp::DistanceMatrix::new`], one bounded ball search per vertex
//! in `BallTable::build`, one restricted cluster search per vertex in the
//! Thorup–Zwick hierarchy. The original entry points in [`crate::shortest_path`]
//! allocate their working state per call — four `O(n)` vectors for a full
//! Dijkstra, three `HashMap`s for a ball or cluster search — which makes the
//! allocator, not the graph, the bottleneck once `n` reaches 10⁴.
//!
//! A [`SearchScratch`] is allocated **once** (per worker thread — see
//! `routing_par::par_map_scratch`) and reused across searches:
//!
//! * per-vertex state (`dist`, `parent`, `first_hop`, `settled`) lives in
//!   flat arrays whose validity is tracked by an **epoch stamp**: each
//!   search bumps a 64-bit epoch and a slot is live only when its stamp
//!   equals the current epoch, so "resetting" the workspace is a single
//!   integer increment, `O(1)` regardless of how little of the graph the
//!   previous search touched;
//! * the priority queue is a monotone **bucket queue** (Dial's algorithm
//!   with a 64-distance circular window tracked by one occupancy bitmask)
//!   backed by a binary-heap overflow for pushes beyond the window, all
//!   kept allocated between searches — see [`SearchScratch::queue_pop`]'s
//!   source for why its pop order is bit-identical to a binary heap's;
//! * the settle order (the `(distance, id)`-sorted vertex sequence every
//!   bounded search is defined by) is recorded in a reusable buffer.
//!
//! Every search method is **bit-identical** to its allocating counterpart in
//! [`crate::shortest_path`] — same lexicographic `(distance, id)`
//! tie-breaking, same member order, same radius rule — which the equivalence
//! property tests in `tests/properties.rs` assert against the pre-refactor
//! implementations kept in [`crate::reference`].
//!
//! # Example
//!
//! ```
//! use routing_graph::scratch::SearchScratch;
//! use routing_graph::{generators, VertexId};
//!
//! let g = generators::grid(8, 8);
//! let mut scratch = SearchScratch::for_graph(&g);
//! // Two searches, one workspace, no per-call allocation.
//! scratch.dijkstra_into(&g, VertexId(0));
//! assert_eq!(scratch.dist(VertexId(63)), Some(14));
//! scratch.dijkstra_into(&g, VertexId(63));
//! assert_eq!(scratch.dist(VertexId(0)), Some(14));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Graph, VertexId, Weight, INFINITY};

/// Sentinel for "no parent / no first hop / no nearest source".
const NONE: u32 = u32::MAX;

/// Width of the bucket-queue distance window (must be a power of two so the
/// slot index is a mask). Pushes whose distance lies within this many units
/// of the frontier go into a bucket slot; farther pushes wait in the
/// overflow heap. With the perf families' weights (1..32) every push lands
/// in the window, so the binary heap is never touched.
const BQ_WINDOW: Weight = 64;

/// Epoch value no search ever uses, so a fresh workspace (all stamps at
/// this value, epoch at 0) reports nothing as reached or settled.
const NEVER: u64 = u64::MAX;

/// When the shared single-origin settle loop ([`SearchScratch::drain`])
/// stops: never early (full search), once every requested target settled
/// (target-bounded search), or once one specific vertex settled (resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    /// Settle everything the heap reaches (full Dijkstra).
    HeapEmpty,
    /// Stop when the target countdown reaches zero.
    TargetsSettled,
    /// Stop when this vertex settles ([`SearchScratch::ensure_settled`]).
    VertexSettled(VertexId),
}

/// Which search the workspace ran last; accessors whose data only certain
/// searches produce are gated on this, so a reused workspace can never hand
/// out a stale value from an earlier search of a different kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SearchKind {
    /// No search has run yet.
    Idle,
    /// [`SearchScratch::dijkstra_into`] or [`SearchScratch::ball_into`]:
    /// single origin, `parent` and `first_hop` populated.
    SingleOrigin,
    /// [`SearchScratch::multi_source_into`]: the `parent` slots hold the
    /// nearest source, `first_hop` is not populated.
    MultiSource,
    /// [`SearchScratch::cluster_into`]: single origin, `parent` populated,
    /// `first_hop` not populated.
    Cluster,
}

/// A reusable, allocation-free workspace for graph searches.
///
/// See the [module docs](self) for the design; construct one per worker
/// thread with [`SearchScratch::for_graph`] and run any sequence of
/// [`dijkstra_into`](SearchScratch::dijkstra_into),
/// [`dijkstra_targets_into`](SearchScratch::dijkstra_targets_into),
/// [`ball_into`](SearchScratch::ball_into),
/// [`multi_source_into`](SearchScratch::multi_source_into) and
/// [`cluster_into`](SearchScratch::cluster_into) searches on it. Results are
/// read through the accessors ([`dist`](SearchScratch::dist),
/// [`parent`](SearchScratch::parent), [`first_hop`](SearchScratch::first_hop),
/// [`order`](SearchScratch::order), …) and stay valid until the next
/// `*_into` call.
#[derive(Debug, Clone)]
pub struct SearchScratch {
    n: usize,
    /// Current search epoch; a per-vertex slot is live iff its stamp matches.
    epoch: u64,
    /// Epoch stamp guarding `dist`/`parent`/`first_hop` per vertex.
    stamp: Vec<u64>,
    /// Epoch stamp marking settled (finalized) vertices.
    settled: Vec<u64>,
    dist: Vec<Weight>,
    /// Parent in the search tree (`NONE` for roots); doubles as the nearest
    /// source `p_A(v)` after a multi-source search.
    parent: Vec<u32>,
    first_hop: Vec<u32>,
    /// Overflow heap of the single-origin bucket queue, ordered by
    /// `(distance, id)`: holds entries pushed more than [`BQ_WINDOW`]
    /// distance units past the frontier, which migrate into their bucket
    /// slot when the frontier reaches them.
    heap: BinaryHeap<Reverse<(Weight, VertexId)>>,
    /// Bucket slots of the single-origin queue: slot `d % BQ_WINDOW` holds
    /// the ids of pending entries at distance `d` for the unique such `d`
    /// inside the current window `[bq_cur, bq_cur + BQ_WINDOW)`.
    bq_slots: Vec<Vec<u32>>,
    /// Occupancy bitmask over `bq_slots` (bit `s` set iff slot `s` holds
    /// pending entries).
    bq_mask: u64,
    /// The frontier: distance of the slot currently being drained. Edge
    /// weights are strictly positive, so no push ever lands back in it.
    bq_cur: Weight,
    /// Entries of the current slot already handed out by `queue_pop`.
    bq_pos: usize,
    /// Heap for multi-source searches, ordered by `(distance, source, id)`.
    heap_tagged: BinaryHeap<Reverse<(Weight, VertexId, VertexId)>>,
    /// Vertices in settle order with their final distances.
    order: Vec<(VertexId, Weight)>,
    /// Source of the last single-origin search (for materialization).
    source: VertexId,
    /// Which search ran last (gates the kind-specific accessors).
    kind: SearchKind,
    /// Epoch stamp marking the requested targets of a target-bounded
    /// search ([`dijkstra_targets_into`](Self::dijkstra_targets_into)).
    target_stamp: Vec<u64>,
    /// Requested targets of the current epoch not yet settled; the
    /// target-bounded search stops when this countdown reaches zero.
    targets_remaining: usize,
    /// True when the last search left a resumable frontier: full and
    /// target-bounded Dijkstra relax every settled vertex's out-edges
    /// before stopping, so popping more of the heap continues the same
    /// search. Bounded ball searches break *after* marking a vertex
    /// settled but before relaxing it, so they must not be resumed.
    resumable: bool,
}

impl SearchScratch {
    /// A workspace for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        SearchScratch {
            n,
            epoch: 0,
            stamp: vec![NEVER; n],
            settled: vec![NEVER; n],
            dist: vec![0; n],
            parent: vec![NONE; n],
            first_hop: vec![NONE; n],
            heap: BinaryHeap::with_capacity(n.min(1 << 16)),
            bq_slots: vec![Vec::new(); BQ_WINDOW as usize],
            bq_mask: 0,
            bq_cur: 0,
            bq_pos: 0,
            heap_tagged: BinaryHeap::new(),
            order: Vec::with_capacity(n.min(1 << 16)),
            source: VertexId(0),
            kind: SearchKind::Idle,
            target_stamp: vec![NEVER; n],
            targets_remaining: 0,
            resumable: false,
        }
    }

    /// A workspace sized for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        Self::new(g.n())
    }

    /// Number of vertices the workspace covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Starts a new search: bumps the epoch (the `O(1)` reset) and clears
    /// the reusable buffers, keeping their capacity.
    fn begin(&mut self) {
        self.epoch += 1;
        self.heap.clear();
        self.heap_tagged.clear();
        // Clear only the occupied bucket slots (a stopped search leaves
        // pending entries behind); capacity is kept.
        while self.bq_mask != 0 {
            let s = self.bq_mask.trailing_zeros() as usize;
            self.bq_slots[s].clear();
            self.bq_mask &= self.bq_mask - 1;
        }
        self.bq_cur = 0;
        self.bq_pos = 0;
        self.order.clear();
        self.targets_remaining = 0;
        self.resumable = false;
    }

    /// Pushes `(d, v)` into the single-origin priority queue.
    ///
    /// Every caller settles vertices in nondecreasing distance order and
    /// edge weights are strictly positive, so `d` is always strictly past
    /// the frontier `bq_cur` (or equal to it only for the seed, before any
    /// pop). Within-window pushes go to the bucket slot `d % BQ_WINDOW`,
    /// farther ones wait in the overflow heap.
    #[inline]
    fn queue_push(&mut self, d: Weight, v: VertexId) {
        if d.wrapping_sub(self.bq_cur) < BQ_WINDOW {
            let s = (d & (BQ_WINDOW - 1)) as usize;
            self.bq_slots[s].push(v.0);
            self.bq_mask |= 1u64 << s;
        } else {
            self.heap.push(Reverse((d, v)));
        }
    }

    /// Pops the minimum `(distance, id)` entry of the single-origin queue.
    ///
    /// **Bit-identity with a binary heap.** All edge weights are ≥ 1, so
    /// every entry at distance `d` is enqueued while the frontier is still
    /// strictly below `d` (it was pushed when a vertex at `d - w < d`
    /// settled, or is the seed). Hence when the frontier advances to `d`
    /// the distance-`d` population is complete: sorting the slot by id —
    /// after migrating any distance-`d` overflow entries into it — and
    /// draining it in that order yields exactly the `(distance, id)`
    /// lexicographic pop order a binary heap would produce. Duplicate
    /// entries for a vertex (re-pushed on improvement) surface in the same
    /// stale-then-skip pattern as with a heap.
    fn queue_pop(&mut self) -> Option<(Weight, VertexId)> {
        loop {
            let s = (self.bq_cur & (BQ_WINDOW - 1)) as usize;
            if self.bq_pos < self.bq_slots[s].len() {
                let v = self.bq_slots[s][self.bq_pos];
                self.bq_pos += 1;
                if self.bq_pos == self.bq_slots[s].len() {
                    self.bq_slots[s].clear();
                    self.bq_pos = 0;
                    self.bq_mask &= !(1u64 << s);
                }
                return Some((self.bq_cur, VertexId(v)));
            }
            // Advance the frontier to the next event distance: the nearest
            // occupied slot (the rotated mask puts the frontier's slot at
            // bit 0) and/or the smallest overflow entry.
            let bucket_next = if self.bq_mask != 0 {
                let rot = self.bq_mask.rotate_right((self.bq_cur & (BQ_WINDOW - 1)) as u32);
                Some(self.bq_cur + rot.trailing_zeros() as Weight)
            } else {
                None
            };
            let heap_next = self.heap.peek().map(|&Reverse((d, _))| d);
            let next = match (bucket_next, heap_next) {
                (None, None) => return None,
                (Some(b), None) => b,
                (None, Some(h)) => h,
                (Some(b), Some(h)) => b.min(h),
            };
            self.bq_cur = next;
            self.bq_pos = 0;
            let s = (next & (BQ_WINDOW - 1)) as usize;
            // Migrate every overflow entry at exactly this distance into
            // the slot so the id sort below orders the complete level.
            while self.heap.peek().is_some_and(|&Reverse((d, _))| d == next) {
                if let Some(Reverse((_, v))) = self.heap.pop() {
                    self.bq_slots[s].push(v.0);
                    self.bq_mask |= 1u64 << s;
                }
            }
            self.bq_slots[s].sort_unstable();
        }
    }

    #[inline]
    fn relax(&mut self, to: usize, nd: Weight) -> bool {
        if self.stamp[to] != self.epoch {
            self.stamp[to] = self.epoch;
            self.dist[to] = nd;
            true
        } else if nd < self.dist[to] {
            self.dist[to] = nd;
            true
        } else {
            false
        }
    }

    /// Runs a full Dijkstra from `source` with `(distance, id)` tie-breaking,
    /// bit-identical to [`crate::shortest_path::dijkstra`].
    ///
    /// # Panics
    ///
    /// Panics if `g` has more vertices than the workspace.
    pub fn dijkstra_into(&mut self, g: &Graph, source: VertexId) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        self.begin();
        self.kind = SearchKind::SingleOrigin;
        self.resumable = true;
        self.source = source;
        let s = source.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.first_hop[s] = NONE;
        self.queue_push(0, source);
        self.drain(g, Stop::HeapEmpty);
    }

    /// Runs Dijkstra from `source` but stops the moment the last vertex of
    /// `targets` is settled, instead of settling the whole graph.
    ///
    /// Requested targets are marked in an epoch-stamped bitmap (duplicates
    /// collapse) and counted down as they settle; the zero-allocation
    /// workspace machinery is otherwise identical to
    /// [`dijkstra_into`](Self::dijkstra_into). Because Dijkstra settles in
    /// `(distance, id)` order and a vertex's `dist`/`parent`/`first_hop`
    /// are final when it settles, **every settled vertex carries exactly
    /// the values the full search would have given it** — the settled
    /// prefix (including [`order`](Self::order)) is bit-identical to the
    /// same-length prefix of the full search. Tree ancestors settle before
    /// their descendants, so [`path_to`](Self::path_to) of any settled
    /// target never leaves the settled frontier.
    ///
    /// With an empty `targets` list nothing is settled; targets that are
    /// unreachable from `source` make the search exhaust the component
    /// (the countdown never reaches zero) — still never worse than a full
    /// search. Callers probing past the frontier resume the search with
    /// [`ensure_settled`](Self::ensure_settled).
    ///
    /// # Panics
    ///
    /// Panics if `g` has more vertices than the workspace.
    pub fn dijkstra_targets_into(&mut self, g: &Graph, source: VertexId, targets: &[VertexId]) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        self.begin();
        self.kind = SearchKind::SingleOrigin;
        self.resumable = true;
        self.source = source;
        let mut remaining = 0usize;
        for &t in targets {
            let ti = t.index();
            if self.target_stamp[ti] != self.epoch {
                self.target_stamp[ti] = self.epoch;
                remaining += 1;
            }
        }
        self.targets_remaining = remaining;
        if remaining == 0 {
            return;
        }
        let s = source.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.first_hop[s] = NONE;
        self.queue_push(0, source);
        self.drain(g, Stop::TargetsSettled);
    }

    /// Resumes the current full or target-bounded Dijkstra until `v` is
    /// settled, returning whether it was (false only when `v` is
    /// unreachable from the source). A no-op when `v` is already settled.
    ///
    /// Everything settled along the way keeps the bit-identity guarantee of
    /// [`dijkstra_targets_into`](Self::dijkstra_targets_into): resuming is
    /// indistinguishable from having asked for a larger target set up
    /// front.
    ///
    /// # Panics
    ///
    /// Panics if the last search was not [`dijkstra_into`](Self::dijkstra_into)
    /// or [`dijkstra_targets_into`](Self::dijkstra_targets_into) — a
    /// bounded ball search stops *without* relaxing its last settled
    /// vertex, so its frontier must not be extended.
    pub fn ensure_settled(&mut self, g: &Graph, v: VertexId) -> bool {
        assert!(
            self.kind == SearchKind::SingleOrigin && self.resumable,
            "ensure_settled() resumes only full or target-bounded Dijkstra searches"
        );
        if self.settled[v.index()] == self.epoch {
            return true;
        }
        self.drain(g, Stop::VertexSettled(v));
        self.settled[v.index()] == self.epoch
    }

    /// The settle loop shared by the full, target-bounded and resumed
    /// single-origin searches; runs until its [`Stop`] condition holds or
    /// the heap empties. The stop checks come *after* the settled vertex's
    /// out-edges are relaxed, so the frontier always stays resumable.
    fn drain(&mut self, g: &Graph, stop: Stop) {
        while let Some((d, u)) = self.queue_pop() {
            let ui = u.index();
            if self.settled[ui] == self.epoch {
                continue;
            }
            self.settled[ui] = self.epoch;
            self.order.push((u, d));
            if self.target_stamp[ui] == self.epoch {
                self.targets_remaining = self.targets_remaining.saturating_sub(1);
            }
            for e in g.edges(u) {
                let to = e.to.index();
                let nd = d + e.weight;
                if self.relax(to, nd) {
                    self.parent[to] = u.0;
                    self.first_hop[to] =
                        if u == self.source { e.to.0 } else { self.first_hop[ui] };
                    self.queue_push(nd, e.to);
                }
            }
            match stop {
                Stop::HeapEmpty => {}
                Stop::TargetsSettled => {
                    if self.targets_remaining == 0 {
                        return;
                    }
                }
                Stop::VertexSettled(v) => {
                    if u == v {
                        return;
                    }
                }
            }
        }
    }

    /// Runs the bounded ball search `B(u, ℓ)`: Dijkstra from `u` that stops
    /// as soon as `ℓ` vertices are settled (or the component is exhausted),
    /// so it never pays more than the ball costs. Members (with distances, in
    /// `(distance, id)` settle order) are available as [`order`](Self::order)
    /// afterwards; the returned value is the ball radius `r_u(ℓ)`.
    ///
    /// Bit-identical to [`crate::shortest_path::ball`] (kept as
    /// [`crate::reference::ball_hashmap`] for the equivalence tests).
    pub fn ball_into(&mut self, g: &Graph, u: VertexId, ell: usize) -> Weight {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        let ell = ell.max(1);
        self.begin();
        self.kind = SearchKind::SingleOrigin;
        self.source = u;
        let s = u.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.first_hop[s] = NONE;
        self.queue_push(0, u);

        // Vertices settled after the ball is full, at the same distance as
        // the last member, make the top distance level incomplete.
        let mut overflow_at_max = false;
        let mut max_dist: Weight = 0;
        while let Some((d, v)) = self.queue_pop() {
            let vi = v.index();
            if self.settled[vi] == self.epoch {
                continue;
            }
            self.settled[vi] = self.epoch;
            if self.order.len() < ell {
                self.order.push((v, d));
                max_dist = d;
            } else if d == max_dist {
                overflow_at_max = true;
                break;
            } else {
                break;
            }
            for e in g.edges(v) {
                let to = e.to.index();
                let nd = d + e.weight;
                if self.relax(to, nd) {
                    self.parent[to] = v.0;
                    self.first_hop[to] = if v == u { e.to.0 } else { self.first_hop[vi] };
                    self.queue_push(nd, e.to);
                }
            }
        }

        if overflow_at_max {
            // Not every vertex at distance `max_dist` made it into the ball;
            // the radius is the previous distinct distance value present.
            self.order
                .iter()
                .rev()
                .map(|&(_, d)| d)
                .find(|&d| d < max_dist)
                .unwrap_or(0)
        } else {
            max_dist
        }
    }

    /// Runs a multi-source Dijkstra from `sources`, computing `d(v, A)` and
    /// the nearest source `p_A(v)` (readable as [`nearest`](Self::nearest))
    /// with ties broken by source id.
    ///
    /// `sources` must be sorted by id and deduplicated (the
    /// [`crate::shortest_path::multi_source_dijkstra`] wrapper normalizes
    /// arbitrary input). Bit-identical to that wrapper.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `sources` is not sorted and deduplicated.
    pub fn multi_source_into(&mut self, g: &Graph, sources: &[VertexId]) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        debug_assert!(sources.windows(2).all(|w| w[0] < w[1]), "sources must be sorted+deduped");
        self.begin();
        self.kind = SearchKind::MultiSource;
        for &s in sources {
            let si = s.index();
            self.stamp[si] = self.epoch;
            self.dist[si] = 0;
            self.parent[si] = s.0; // nearest source of a source is itself
            self.heap_tagged.push(Reverse((0, s, s)));
        }
        while let Some(Reverse((d, src, u))) = self.heap_tagged.pop() {
            let ui = u.index();
            if self.settled[ui] == self.epoch {
                continue;
            }
            // A stale entry may carry an outdated source; skip it.
            if self.parent[ui] != src.0 || self.dist[ui] != d {
                continue;
            }
            self.settled[ui] = self.epoch;
            self.order.push((u, d));
            for e in g.edges(u) {
                let to = e.to.index();
                if self.settled[to] == self.epoch {
                    continue;
                }
                let nd = d + e.weight;
                let better = if self.stamp[to] != self.epoch {
                    true
                } else {
                    nd < self.dist[to] || (nd == self.dist[to] && src.0 < self.parent[to])
                };
                if better {
                    self.stamp[to] = self.epoch;
                    self.dist[to] = nd;
                    self.parent[to] = src.0;
                    self.heap_tagged.push(Reverse((nd, src, e.to)));
                }
            }
        }
    }

    /// Runs the restricted (cluster) search from `w`: explores like Dijkstra
    /// but keeps a vertex `v` only when `d(w, v) < bound[v]`. Members in
    /// settle order are available as [`order`](Self::order); parents via
    /// [`parent`](Self::parent) (valid for settled members only).
    ///
    /// Bit-identical to [`crate::shortest_path::cluster_dijkstra`] (kept as
    /// [`crate::reference::cluster_dijkstra_hashmap`]).
    pub fn cluster_into(&mut self, g: &Graph, w: VertexId, bound: &[Weight]) {
        assert!(g.n() <= self.n, "graph larger than the workspace");
        assert_eq!(bound.len(), g.n(), "bound slice must have one entry per vertex");
        self.begin();
        self.kind = SearchKind::Cluster;
        self.source = w;
        let s = w.index();
        self.stamp[s] = self.epoch;
        self.dist[s] = 0;
        self.parent[s] = NONE;
        self.queue_push(0, w);
        while let Some((d, u)) = self.queue_pop() {
            let ui = u.index();
            if self.settled[ui] == self.epoch {
                continue;
            }
            self.settled[ui] = self.epoch;
            self.order.push((u, d));
            for e in g.edges(u) {
                let to = e.to.index();
                let nd = d + e.weight;
                // Keep the vertex only if it belongs to the cluster (the
                // root is always kept).
                if e.to != w && nd >= bound[to] {
                    continue;
                }
                if self.relax(to, nd) {
                    self.parent[to] = u.0;
                    self.queue_push(nd, e.to);
                }
            }
        }
    }

    /// Distance found by the last search, or `None` if `v` was not reached.
    ///
    /// After a bounded ([`ball_into`](Self::ball_into)) or restricted
    /// ([`cluster_into`](Self::cluster_into)) search this is only final for
    /// settled vertices — use [`order`](Self::order) for the member set.
    #[inline]
    pub fn dist(&self, v: VertexId) -> Option<Weight> {
        (self.stamp[v.index()] == self.epoch).then(|| self.dist[v.index()])
    }

    /// True if the last search settled (finalized) `v`.
    #[inline]
    pub fn is_settled(&self, v: VertexId) -> bool {
        self.settled[v.index()] == self.epoch
    }

    /// Parent of `v` in the last search tree (`None` for the root and for
    /// unreached vertices).
    ///
    /// # Panics
    ///
    /// Panics after a [`multi_source_into`](Self::multi_source_into) search,
    /// whose slots hold nearest sources, not parents — use
    /// [`nearest`](Self::nearest) there.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        assert!(
            self.kind != SearchKind::MultiSource,
            "parent() after a multi-source search; use nearest()"
        );
        if self.stamp[v.index()] != self.epoch || self.parent[v.index()] == NONE {
            return None;
        }
        Some(VertexId(self.parent[v.index()]))
    }

    /// First vertex after the source on the path to `v` found by the last
    /// full or bounded single-origin search (`None` for the source and
    /// unreached vertices).
    ///
    /// # Panics
    ///
    /// Panics if the last search was not [`dijkstra_into`](Self::dijkstra_into)
    /// or [`ball_into`](Self::ball_into) — multi-source and cluster searches
    /// do not record first hops, so a leftover value from an earlier search
    /// must not leak through.
    #[inline]
    pub fn first_hop(&self, v: VertexId) -> Option<VertexId> {
        assert!(
            self.kind == SearchKind::SingleOrigin,
            "first_hop() is only populated by dijkstra_into / ball_into"
        );
        if self.stamp[v.index()] != self.epoch || self.first_hop[v.index()] == NONE {
            return None;
        }
        Some(VertexId(self.first_hop[v.index()]))
    }

    /// Nearest source `p_A(v)` after [`multi_source_into`](Self::multi_source_into)
    /// (`None` for unreached vertices).
    ///
    /// # Panics
    ///
    /// Panics if the last search was not a multi-source one — the slots hold
    /// parents then, not nearest sources.
    #[inline]
    pub fn nearest(&self, v: VertexId) -> Option<VertexId> {
        assert!(
            self.kind == SearchKind::MultiSource,
            "nearest() is only populated by multi_source_into"
        );
        if self.stamp[v.index()] != self.epoch || self.parent[v.index()] == NONE {
            return None;
        }
        Some(VertexId(self.parent[v.index()]))
    }

    /// Vertices settled by the last search, in `(distance, id)` settle order,
    /// with their final distances. For a ball or cluster search this is
    /// exactly the member list.
    #[inline]
    pub fn order(&self) -> &[(VertexId, Weight)] {
        &self.order
    }

    /// The source of the last single-origin (full, bounded or restricted)
    /// search.
    ///
    /// # Panics
    ///
    /// Panics before the first search and after a multi-source search
    /// (which has no single source).
    pub fn source(&self) -> VertexId {
        assert!(
            matches!(self.kind, SearchKind::SingleOrigin | SearchKind::Cluster),
            "source() needs a preceding single-origin search"
        );
        self.source
    }

    /// The tree path from the last search's source to `v` (inclusive), or
    /// `None` if `v` was not settled. Allocates exactly the returned path.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if self.settled[v.index()] != self.epoch {
            return None;
        }
        let mut len = 1usize;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            len += 1;
            cur = p;
        }
        let mut path = vec![v; len];
        let mut i = len - 1;
        cur = v;
        while let Some(p) = self.parent(cur) {
            i -= 1;
            path[i] = p;
            cur = p;
        }
        Some(path)
    }

    /// Writes the full distance row of the last search into `out`
    /// (`INFINITY` for unreached vertices). `out` must have one slot per
    /// graph vertex.
    pub fn write_dist_row(&self, out: &mut [Weight]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if self.stamp[i] == self.epoch { self.dist[i] } else { INFINITY };
        }
    }

    /// The full distance row of the last search as a fresh vector
    /// (`INFINITY` for unreached vertices), sized like the graph searched.
    pub fn dist_row(&self, n: usize) -> Vec<Weight> {
        let mut row = vec![INFINITY; n];
        self.write_dist_row(&mut row);
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path::{ball, cluster_dijkstra, dijkstra, multi_source_dijkstra};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(
            80,
            0.07,
            generators::WeightModel::Uniform { lo: 1, hi: 9 },
            &mut rng,
        )
    }

    #[test]
    fn dijkstra_into_matches_wrapper_across_reuses() {
        let g = random_graph(3);
        let mut s = SearchScratch::for_graph(&g);
        for src in [0u32, 17, 42, 0, 79] {
            let src = VertexId(src);
            s.dijkstra_into(&g, src);
            let sp = dijkstra(&g, src);
            assert_eq!(s.source(), src);
            for v in g.vertices() {
                assert_eq!(s.dist(v), sp.dist(v), "dist {src}->{v}");
                assert_eq!(s.parent(v), sp.parent(v), "parent {src}->{v}");
                assert_eq!(s.first_hop(v), sp.first_hop(v), "hop {src}->{v}");
                assert_eq!(s.path_to(v), sp.path_to(v), "path {src}->{v}");
            }
        }
    }

    #[test]
    fn ball_into_matches_ball_after_full_search() {
        let g = random_graph(5);
        let mut s = SearchScratch::for_graph(&g);
        // Interleave with a full search to prove the epoch reset works.
        s.dijkstra_into(&g, VertexId(0));
        for (u, ell) in [(VertexId(7), 1), (VertexId(7), 9), (VertexId(30), 500)] {
            let radius = s.ball_into(&g, u, ell);
            let b = ball(&g, u, ell);
            assert_eq!(radius, b.radius());
            assert_eq!(s.order(), b.members());
            for &(v, _) in s.order() {
                assert_eq!(s.first_hop(v), b.first_hop(v));
            }
        }
    }

    #[test]
    fn multi_source_into_matches_wrapper() {
        let g = random_graph(7);
        let sources = vec![VertexId(2), VertexId(40), VertexId(71)];
        let ms = multi_source_dijkstra(&g, &sources);
        let mut s = SearchScratch::for_graph(&g);
        s.multi_source_into(&g, &sources);
        for v in g.vertices() {
            assert_eq!(s.dist(v), ms.dist(v));
            assert_eq!(s.nearest(v), ms.nearest(v));
        }
    }

    #[test]
    fn cluster_into_matches_wrapper() {
        let g = random_graph(9);
        let ms = multi_source_dijkstra(&g, &[VertexId(11), VertexId(60)]);
        let bound: Vec<Weight> =
            g.vertices().map(|v| ms.dist(v).unwrap_or(INFINITY)).collect();
        let mut s = SearchScratch::for_graph(&g);
        for w in [VertexId(0), VertexId(11), VertexId(55)] {
            s.cluster_into(&g, w, &bound);
            let tree = cluster_dijkstra(&g, w, &bound);
            assert_eq!(s.order(), tree.members());
            for &(v, _) in s.order() {
                assert_eq!(Some(s.parent(v)), tree.parent(v));
            }
        }
    }

    #[test]
    fn targets_search_is_a_bit_identical_prefix_of_the_full_search() {
        let g = random_graph(11);
        let mut full = SearchScratch::for_graph(&g);
        let mut bounded = SearchScratch::for_graph(&g);
        for (src, targets) in [
            (VertexId(0), vec![VertexId(3), VertexId(9), VertexId(40)]),
            (VertexId(17), vec![VertexId(17)]),
            (VertexId(42), vec![VertexId(1), VertexId(1), VertexId(79)]),
        ] {
            full.dijkstra_into(&g, src);
            bounded.dijkstra_targets_into(&g, src, &targets);
            let settled = bounded.order().len();
            assert!(settled > 0);
            // The settle order is the same-length prefix of the full order.
            assert_eq!(bounded.order(), &full.order()[..settled]);
            for &(v, _) in bounded.order() {
                assert_eq!(bounded.dist(v), full.dist(v), "dist {src}->{v}");
                assert_eq!(bounded.parent(v), full.parent(v), "parent {src}->{v}");
                assert_eq!(bounded.first_hop(v), full.first_hop(v), "hop {src}->{v}");
                assert_eq!(bounded.path_to(v), full.path_to(v), "path {src}->{v}");
            }
            // Every requested target is settled, and the search stopped at
            // the last one (the final settle-order entry is a target).
            for &t in &targets {
                assert!(bounded.is_settled(t), "target {t} not settled");
            }
            let last = bounded.order()[settled - 1].0;
            assert!(targets.contains(&last), "search ran past the last target");
        }
    }

    #[test]
    fn bucket_queue_overflow_heap_matches_wrapper() {
        // Weights far beyond the 64-distance bucket window force every
        // push through the overflow heap and its migrate-on-arrival path.
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::erdos_renyi(
            60,
            0.08,
            generators::WeightModel::Uniform { lo: 50, hi: 400 },
            &mut rng,
        );
        let mut s = SearchScratch::for_graph(&g);
        for src in [0u32, 13, 59] {
            let src = VertexId(src);
            s.dijkstra_into(&g, src);
            let sp = dijkstra(&g, src);
            for v in g.vertices() {
                assert_eq!(s.dist(v), sp.dist(v), "dist {src}->{v}");
                assert_eq!(s.parent(v), sp.parent(v), "parent {src}->{v}");
                assert_eq!(s.first_hop(v), sp.first_hop(v), "hop {src}->{v}");
            }
        }
    }

    #[test]
    fn bucket_queue_mixed_window_and_overflow_matches_wrapper() {
        // Weights straddling the window boundary mix bucket-slot and
        // overflow pushes, including both kinds at the same distance
        // level; pops must still come out in (distance, id) order.
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::erdos_renyi(
            70,
            0.1,
            generators::WeightModel::Uniform { lo: 1, hi: 200 },
            &mut rng,
        );
        let mut full = SearchScratch::for_graph(&g);
        full.dijkstra_into(&g, VertexId(7));
        let sp = dijkstra(&g, VertexId(7));
        for v in g.vertices() {
            assert_eq!(full.dist(v), sp.dist(v), "dist 7->{v}");
            assert_eq!(full.parent(v), sp.parent(v), "parent 7->{v}");
        }
        // Target-bounded prefix and resume hold across the hybrid queue.
        let mut bounded = SearchScratch::for_graph(&g);
        bounded.dijkstra_targets_into(&g, VertexId(7), &[VertexId(3), VertexId(64)]);
        let settled = bounded.order().len();
        assert_eq!(bounded.order(), &full.order()[..settled]);
        assert!(bounded.ensure_settled(&g, VertexId(69)));
        let settled = bounded.order().len();
        assert_eq!(bounded.order(), &full.order()[..settled]);
        // Bounded ball searches share the queue; check one against the
        // allocating wrapper.
        let radius = bounded.ball_into(&g, VertexId(12), 15);
        let b = ball(&g, VertexId(12), 15);
        assert_eq!(radius, b.radius());
        assert_eq!(bounded.order(), b.members());
    }

    #[test]
    fn targets_search_with_no_targets_settles_nothing() {
        let g = random_graph(11);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_targets_into(&g, VertexId(0), &[]);
        assert!(s.order().is_empty());
        assert!(!s.is_settled(VertexId(0)));
    }

    #[test]
    fn ensure_settled_resumes_past_the_frontier_bit_identically() {
        let g = random_graph(13);
        let mut full = SearchScratch::for_graph(&g);
        full.dijkstra_into(&g, VertexId(5));
        let mut bounded = SearchScratch::for_graph(&g);
        bounded.dijkstra_targets_into(&g, VertexId(5), &[VertexId(6)]);
        // Resume to vertices well past the first frontier, in both orders.
        for probe in [VertexId(70), VertexId(12), VertexId(79)] {
            assert!(bounded.ensure_settled(&g, probe));
            assert!(bounded.is_settled(probe));
        }
        let settled = bounded.order().len();
        assert_eq!(bounded.order(), &full.order()[..settled]);
        for &(v, _) in bounded.order() {
            assert_eq!(bounded.dist(v), full.dist(v));
            assert_eq!(bounded.parent(v), full.parent(v));
            assert_eq!(bounded.first_hop(v), full.first_hop(v));
        }
        // Resuming an exhausted full search is a settled no-op.
        assert!(full.ensure_settled(&g, VertexId(0)));
    }

    #[test]
    fn ensure_settled_reports_unreachable_vertices() {
        let g = generators::path(3);
        let mut s = SearchScratch::new(5);
        s.dijkstra_targets_into(&g, VertexId(0), &[VertexId(2)]);
        assert!(s.ensure_settled(&g, VertexId(1)));
        // Vertex 4 exists in the workspace but not in the 3-vertex graph.
        assert!(!s.ensure_settled(&g, VertexId(4)));
    }

    #[test]
    #[should_panic(expected = "ensure_settled() resumes only")]
    fn ensure_settled_after_ball_search_panics() {
        let g = random_graph(15);
        let mut s = SearchScratch::for_graph(&g);
        // A ball search stops without relaxing its last settled vertex, so
        // extending its frontier would corrupt the search; the gate must
        // refuse.
        s.ball_into(&g, VertexId(0), 4);
        let _ = s.ensure_settled(&g, VertexId(70));
    }

    #[test]
    fn fresh_scratch_reports_nothing_reached() {
        let s = SearchScratch::new(4);
        for v in 0..4 {
            assert_eq!(s.dist(VertexId(v)), None);
            assert!(!s.is_settled(VertexId(v)));
        }
        assert!(s.order().is_empty());
    }

    #[test]
    #[should_panic(expected = "first_hop() is only populated")]
    fn first_hop_after_cluster_search_panics() {
        let g = generators::path(4);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_into(&g, VertexId(0));
        let bound = vec![crate::INFINITY; 4];
        s.cluster_into(&g, VertexId(0), &bound);
        // The previous Dijkstra left first-hop data behind; the kind gate
        // must refuse to serve it instead of returning it as current.
        let _ = s.first_hop(VertexId(3));
    }

    #[test]
    #[should_panic(expected = "nearest() is only populated")]
    fn nearest_after_single_origin_search_panics() {
        let g = generators::path(4);
        let mut s = SearchScratch::for_graph(&g);
        s.dijkstra_into(&g, VertexId(0));
        let _ = s.nearest(VertexId(3));
    }

    #[test]
    fn dist_row_marks_unreachable() {
        let g = generators::path(3);
        let mut s = SearchScratch::new(5);
        s.dijkstra_into(&g, VertexId(0));
        assert_eq!(s.dist_row(3), vec![0, 1, 2]);
        let mut row = vec![0; 3];
        s.write_dist_row(&mut row);
        assert_eq!(row, vec![0, 1, 2]);
        assert!(s.is_settled(VertexId(2)));
        assert_eq!(s.n(), 5);
    }
}
