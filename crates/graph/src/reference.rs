//! Pre-refactor search implementations, kept as equivalence baselines.
//!
//! The allocation-free kernel ([`crate::scratch::SearchScratch`]) replaced
//! the per-call `HashMap`/`Vec` searches this crate originally shipped. The
//! originals live on here, verbatim, for two purposes:
//!
//! * the equivalence property tests (`tests/properties.rs`) assert the new
//!   kernel is **bit-identical** to them — same distances, parents, first
//!   hops, member order and radii — on random graphs;
//! * the `perf` harness binary times the new kernel **against** them, so the
//!   claimed speedups are measured, not asserted.
//!
//! Nothing else should call these: they allocate three `HashMap`s per ball
//! or cluster search and four `O(n)` vectors per Dijkstra run.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::shortest_path::{Ball, MultiSourceShortestPaths, RestrictedTree, ShortestPathTree};
use crate::{Graph, VertexId, Weight, INFINITY};

/// The original per-call-allocating Dijkstra (four `O(n)` vectors and a
/// fresh heap per run). Bit-equal to [`crate::shortest_path::dijkstra`].
pub fn dijkstra_alloc(g: &Graph, source: VertexId) -> ShortestPathTree {
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut first_hop: Vec<Option<VertexId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();

    dist[source.index()] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        for e in g.edges(u) {
            let nd = d + e.weight;
            if nd < dist[e.to.index()] {
                dist[e.to.index()] = nd;
                parent[e.to.index()] = Some(u);
                first_hop[e.to.index()] =
                    if u == source { Some(e.to) } else { first_hop[u.index()] };
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    ShortestPathTree::from_parts(source, dist, parent, first_hop)
}

/// The original `HashMap`-backed ball search. Bit-equal to
/// [`crate::shortest_path::ball`].
pub fn ball_hashmap(g: &Graph, u: VertexId, ell: usize) -> Ball {
    let ell = ell.max(1);
    let n = g.n();
    // lint:allow(det-hash-iter): reference impl kept for kernel identity tests; keyed lookups only, members emitted in heap settle order
    let mut dist: HashMap<VertexId, Weight> = HashMap::new();
    // lint:allow(det-hash-iter): keyed lookups only, never iterated
    let mut first_hop: HashMap<VertexId, Option<VertexId>> = HashMap::new();
    // lint:allow(det-hash-iter): keyed lookups only, never iterated
    let mut settled: HashMap<VertexId, bool> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();

    dist.insert(u, 0);
    first_hop.insert(u, None);
    heap.push(Reverse((0, u)));

    let mut members: Vec<(VertexId, Weight)> = Vec::with_capacity(ell.min(n));
    let mut first_hops: Vec<Option<VertexId>> = Vec::with_capacity(ell.min(n));
    let mut overflow_at_max = false;
    let mut max_dist: Weight = 0;

    while let Some(Reverse((d, v))) = heap.pop() {
        if *settled.get(&v).unwrap_or(&false) {
            continue;
        }
        settled.insert(v, true);
        if members.len() < ell {
            members.push((v, d));
            first_hops.push(first_hop[&v]);
            max_dist = d;
        } else if d == max_dist {
            overflow_at_max = true;
            break;
        } else {
            break;
        }
        for e in g.edges(v) {
            let nd = d + e.weight;
            let better = match dist.get(&e.to) {
                Some(&old) => nd < old,
                None => true,
            };
            if better {
                dist.insert(e.to, nd);
                let fh = if v == u { Some(e.to) } else { first_hop[&v] };
                first_hop.insert(e.to, fh);
                heap.push(Reverse((nd, e.to)));
            }
        }
    }

    let radius = if overflow_at_max {
        members
            .iter()
            .rev()
            .map(|&(_, d)| d)
            .find(|&d| d < max_dist)
            .unwrap_or(0)
    } else {
        max_dist
    };
    Ball::from_parts(u, members, first_hops, radius)
}

/// The original multi-source Dijkstra. Bit-equal to
/// [`crate::shortest_path::multi_source_dijkstra`].
pub fn multi_source_alloc(g: &Graph, sources: &[VertexId]) -> MultiSourceShortestPaths {
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    let mut nearest: Vec<Option<VertexId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId, VertexId)>> = BinaryHeap::new();

    let mut sorted_sources: Vec<VertexId> = sources.to_vec();
    sorted_sources.sort_unstable();
    sorted_sources.dedup();
    for &s in &sorted_sources {
        dist[s.index()] = 0;
        nearest[s.index()] = Some(s);
        heap.push(Reverse((0, s, s)));
    }
    while let Some(Reverse((d, src, u))) = heap.pop() {
        if settled[u.index()] {
            continue;
        }
        if nearest[u.index()] != Some(src) || dist[u.index()] != d {
            continue;
        }
        settled[u.index()] = true;
        for e in g.edges(u) {
            let nd = d + e.weight;
            let better = nd < dist[e.to.index()]
                || (nd == dist[e.to.index()] && Some(src) < nearest[e.to.index()]);
            if !settled[e.to.index()] && better {
                dist[e.to.index()] = nd;
                nearest[e.to.index()] = Some(src);
                heap.push(Reverse((nd, src, e.to)));
            }
        }
    }
    MultiSourceShortestPaths::from_parts(dist, nearest)
}

/// The original `HashMap`-backed restricted (cluster) search. Bit-equal to
/// [`crate::shortest_path::cluster_dijkstra`].
pub fn cluster_dijkstra_hashmap(g: &Graph, w: VertexId, bound: &[Weight]) -> RestrictedTree {
    assert_eq!(bound.len(), g.n(), "bound slice must have one entry per vertex");
    // lint:allow(det-hash-iter): reference impl kept for kernel identity tests; keyed lookups only, members emitted in heap settle order
    let mut dist: HashMap<VertexId, Weight> = HashMap::new();
    // lint:allow(det-hash-iter): keyed lookups only; RestrictedTree reads it per child, never by iteration
    let mut parent: HashMap<VertexId, Option<VertexId>> = HashMap::new();
    // lint:allow(det-hash-iter): keyed lookups only, never iterated
    let mut settled: HashMap<VertexId, bool> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(Weight, VertexId)>> = BinaryHeap::new();
    let mut members = Vec::new();

    dist.insert(w, 0);
    parent.insert(w, None);
    heap.push(Reverse((0, w)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if *settled.get(&u).unwrap_or(&false) {
            continue;
        }
        settled.insert(u, true);
        members.push((u, d));
        for e in g.edges(u) {
            let nd = d + e.weight;
            if e.to != w && nd >= bound[e.to.index()] {
                continue;
            }
            let better = match dist.get(&e.to) {
                Some(&old) => nd < old,
                None => true,
            };
            if better {
                dist.insert(e.to, nd);
                parent.insert(e.to, Some(u));
                heap.push(Reverse((nd, e.to)));
            }
        }
    }
    parent.retain(|v, _| *settled.get(v).unwrap_or(&false));
    RestrictedTree::from_parts(w, members, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path::{ball, cluster_dijkstra, dijkstra, multi_source_dijkstra};

    // The real equivalence coverage lives in tests/properties.rs; this is a
    // smoke check that the reference entry points stay callable and aligned.
    #[test]
    fn reference_implementations_agree_with_the_kernel() {
        let g = generators::grid(6, 6);
        let sp = dijkstra(&g, VertexId(0));
        let sp_ref = dijkstra_alloc(&g, VertexId(0));
        for v in g.vertices() {
            assert_eq!(sp.dist(v), sp_ref.dist(v));
            assert_eq!(sp.parent(v), sp_ref.parent(v));
        }

        let b = ball(&g, VertexId(14), 7);
        let b_ref = ball_hashmap(&g, VertexId(14), 7);
        assert_eq!(b.members(), b_ref.members());
        assert_eq!(b.radius(), b_ref.radius());

        let sources = [VertexId(0), VertexId(35)];
        let ms = multi_source_dijkstra(&g, &sources);
        let ms_ref = multi_source_alloc(&g, &sources);
        let bound: Vec<Weight> = g.vertices().map(|v| ms.dist(v).unwrap()).collect();
        for v in g.vertices() {
            assert_eq!(ms.dist(v), ms_ref.dist(v));
            assert_eq!(ms.nearest(v), ms_ref.nearest(v));
        }

        let t = cluster_dijkstra(&g, VertexId(3), &bound);
        let t_ref = cluster_dijkstra_hashmap(&g, VertexId(3), &bound);
        assert_eq!(t.members(), t_ref.members());
        for &(v, _) in t.members() {
            assert_eq!(t.parent(v), t_ref.parent(v));
        }
    }
}
