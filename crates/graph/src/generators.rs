//! Seeded synthetic graph generators used by the experiment harness.
//!
//! The paper proves worst-case bounds over *all* undirected graphs; it has no
//! dataset. The harness therefore evaluates the schemes on standard synthetic
//! families (sparse random graphs, geometric graphs, grids, scale-free
//! graphs) that exercise different distance structure: expander-like
//! distances, strong locality, large diameter, and skewed degrees.
//!
//! Every generator is deterministic given the `rng` passed in, and returns a
//! connected graph (the random families add a uniform spanning backbone if
//! sampling left the graph disconnected).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, GraphBuilder, Weight};

/// How edge weights are assigned by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Every edge has weight 1 (the paper's "unweighted" setting).
    Unit,
    /// Weights drawn uniformly from `lo..=hi` (both at least 1). The ratio
    /// `hi / lo` controls the normalized diameter `D` of the instance.
    Uniform {
        /// Smallest possible weight (>= 1).
        lo: Weight,
        /// Largest possible weight (>= lo).
        hi: Weight,
    },
}

impl WeightModel {
    fn sample<R: Rng>(self, rng: &mut R) -> Weight {
        match self {
            WeightModel::Unit => 1,
            WeightModel::Uniform { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.gen_range(lo..=hi)
            }
        }
    }
}

fn add_backbone<R: Rng>(b: &mut GraphBuilder, weights: WeightModel, rng: &mut R) {
    // Connect the vertices with a random spanning path over a shuffled order
    // so that every generated instance is connected.
    let n = b.n();
    if n < 2 {
        return;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for w in order.windows(2) {
        if !b.has_edge(w[0], w[1]) {
            let weight = weights.sample(rng);
            b.add_edge(w[0], w[1], weight).expect("backbone edge is valid");
        }
    }
}

/// Erdős–Rényi `G(n, p)` graph, made connected with a random backbone.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, weights: WeightModel, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                b.add_edge(u, v, weights.sample(rng)).expect("valid edge");
            }
        }
    }
    add_backbone(&mut b, weights, rng);
    b.build()
}

/// Sparse Erdős–Rényi graph with expected average degree `avg_degree`.
pub fn erdos_renyi_avg_degree<R: Rng>(
    n: usize,
    avg_degree: f64,
    weights: WeightModel,
    rng: &mut R,
) -> Graph {
    let p = if n > 1 { (avg_degree / (n as f64 - 1.0)).min(1.0) } else { 0.0 };
    erdos_renyi(n, p, weights, rng)
}

/// Random geometric graph: `n` points in the unit square, edge iff Euclidean
/// distance is below `radius`. Made connected with a random backbone.
pub fn random_geometric<R: Rng>(n: usize, radius: f64, weights: WeightModel, rng: &mut R) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u, v, weights.sample(rng)).expect("valid edge");
            }
        }
    }
    add_backbone(&mut b, weights, rng);
    b.build()
}

/// Barabási–Albert preferential-attachment graph with `attach` edges per new
/// vertex. Produces skewed degree distributions (hub-and-spoke structure).
pub fn barabasi_albert<R: Rng>(n: usize, attach: usize, weights: WeightModel, rng: &mut R) -> Graph {
    let attach = attach.max(1);
    let mut b = GraphBuilder::new(n);
    if n <= 1 {
        return b.build();
    }
    let seed = (attach + 1).min(n);
    // Start from a small clique.
    for u in 0..seed {
        for v in (u + 1)..seed {
            b.add_edge(u, v, weights.sample(rng)).expect("valid edge");
        }
    }
    // Degree-proportional attachment via a repeated-endpoint pool.
    let mut pool: Vec<usize> = Vec::new();
    for u in 0..seed {
        for v in (u + 1)..seed {
            pool.push(u);
            pool.push(v);
        }
    }
    for v in seed..n {
        // lint:allow(det-hash-iter): duplicate-check membership only; edges are emitted in the seeded sampling order, not set order
        let mut targets = std::collections::HashSet::new();
        let mut guard = 0;
        while targets.len() < attach.min(v) && guard < 50 * attach {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v {
                targets.insert(t);
            }
            guard += 1;
        }
        for &t in &targets {
            b.add_edge(v, t, weights.sample(rng)).expect("valid edge");
            pool.push(v);
            pool.push(t);
        }
    }
    add_backbone(&mut b, weights, rng);
    b.build()
}

/// Two-dimensional grid graph with `rows * cols` vertices and unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_unit_edge(id(r, c), id(r, c + 1)).expect("valid edge");
            }
            if r + 1 < rows {
                b.add_unit_edge(id(r, c), id(r + 1, c)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Two-dimensional torus (grid with wraparound) with unit weights.
pub fn torus(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                b.add_unit_edge(id(r, c), id(r, (c + 1) % cols)).expect("valid edge");
            }
            if rows > 1 {
                b.add_unit_edge(id(r, c), id((r + 1) % rows, c)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Path graph `0 - 1 - ... - (n-1)` with unit weights.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_unit_edge(i - 1, i).expect("valid edge");
    }
    b.build()
}

/// Cycle graph with unit weights.
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_unit_edge(i - 1, i).expect("valid edge");
    }
    if n > 2 {
        b.add_unit_edge(n - 1, 0).expect("valid edge");
    }
    b.build()
}

/// Complete graph with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_unit_edge(u, v).expect("valid edge");
        }
    }
    b.build()
}

/// Star graph: vertex 0 connected to all others, unit weights.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_unit_edge(0, v).expect("valid edge");
    }
    b.build()
}

/// Complete binary tree on `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2`), unit weights.
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_unit_edge(v, (v - 1) / 2).expect("valid edge");
    }
    b.build()
}

/// Uniform random spanning tree over a shuffled vertex order (each new vertex
/// attaches to a uniformly random earlier vertex).
pub fn random_tree<R: Rng>(n: usize, weights: WeightModel, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        b.add_edge(order[i], parent, weights.sample(rng)).expect("valid edge");
    }
    b.build()
}

/// Caterpillar: a spine path of length `spine` with `legs` pendant leaves per
/// spine vertex, unit weights. Stresses tree routing with high degrees.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n.max(1));
    for i in 1..spine {
        b.add_unit_edge(i - 1, i).expect("valid edge");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_unit_edge(s, spine + s * legs + l).expect("valid edge");
        }
    }
    b.build()
}

/// The named graph families the experiment harness sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Sparse Erdős–Rényi with average degree ~8.
    ErdosRenyi,
    /// Random geometric graph (strong distance locality).
    Geometric,
    /// 2D grid (large diameter).
    Grid,
    /// Barabási–Albert scale-free graph (skewed degrees).
    ScaleFree,
}

impl Family {
    /// All families, in the order the harness reports them.
    pub const ALL: [Family; 4] = [Family::ErdosRenyi, Family::Geometric, Family::Grid, Family::ScaleFree];

    /// Short name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            Family::ErdosRenyi => "erdos-renyi",
            Family::Geometric => "geometric",
            Family::Grid => "grid",
            Family::ScaleFree => "scale-free",
        }
    }

    /// Generates an `n`-vertex instance of this family.
    pub fn generate<R: Rng>(self, n: usize, weights: WeightModel, rng: &mut R) -> Graph {
        match self {
            Family::ErdosRenyi => erdos_renyi_avg_degree(n, 8.0, weights, rng),
            Family::Geometric => {
                // Radius chosen to give expected degree around 8.
                let r = (8.0 / (std::f64::consts::PI * n as f64)).sqrt();
                random_geometric(n, r, weights, rng)
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                grid(side, side)
            }
            Family::ScaleFree => barabasi_albert(n, 4, weights, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn erdos_renyi_is_connected_and_seeded() {
        let g1 = erdos_renyi(60, 0.05, WeightModel::Unit, &mut rng());
        let g2 = erdos_renyi(60, 0.05, WeightModel::Unit, &mut rng());
        assert!(g1.is_connected());
        assert_eq!(g1, g2, "same seed must give the same graph");
    }

    #[test]
    fn weighted_model_respects_range() {
        let g = erdos_renyi(40, 0.1, WeightModel::Uniform { lo: 5, hi: 9 }, &mut rng());
        let (lo, hi) = g.weight_range().unwrap();
        assert!(lo >= 5 && hi <= 9);
        assert!(!g.is_unweighted());
    }

    #[test]
    fn geometric_is_connected() {
        let g = random_geometric(80, 0.15, WeightModel::Unit, &mut rng());
        assert!(g.is_connected());
        assert_eq!(g.n(), 80);
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let g = barabasi_albert(200, 3, WeightModel::Unit, &mut rng());
        assert!(g.is_connected());
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg_deg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(max_deg as f64 > 2.0 * avg_deg, "scale-free graph should have hubs");
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5);
        assert!(g.is_connected());
        let t = torus(4, 5);
        assert_eq!(t.n(), 20);
        assert_eq!(t.m(), 2 * 20);
        assert!(t.is_connected());
    }

    #[test]
    fn classic_families() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(2).m(), 1);
        assert_eq!(complete(6).m(), 15);
        assert_eq!(star(7).m(), 6);
        let bt = binary_tree(7);
        assert_eq!(bt.m(), 6);
        assert!(bt.is_connected());
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        let g = random_tree(50, WeightModel::Unit, &mut rng());
        assert_eq!(g.m(), 49);
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 + 15);
        assert!(g.is_connected());
        assert_eq!(g.degree(crate::VertexId(0)), 4);
    }

    #[test]
    fn family_generators_produce_connected_graphs() {
        for family in Family::ALL {
            let g = family.generate(120, WeightModel::Unit, &mut rng());
            assert!(g.is_connected(), "{} not connected", family.name());
            assert!(g.n() >= 100, "{} too small", family.name());
            assert!(!family.name().is_empty());
        }
    }
}
