//! Sampled ground-truth distances: the scalable replacement for the dense
//! [`crate::apsp::DistanceMatrix`].
//!
//! [`SampledDistances`] stores exact single-source distance rows for `k`
//! chosen source vertices — `O(k·n)` memory and `k` parallel Dijkstra runs
//! (`O(k·(m + n log n))` work) instead of the matrix's `O(n^2)` of both.
//! Any pair with at least one endpoint among the sources is an `O(1)` exact
//! lookup (the graphs here are undirected, so a source row answers both
//! directions); other pairs are answered **on demand** with a fresh Dijkstra
//! whose row is cached up to a configurable cap.
//!
//! The intended protocol, used by `routing_model::eval` and the churn
//! harness, is therefore: *sample evaluation pairs anchored at the oracle's
//! sources* — then every ground-truth lookup is exact and free, and
//! measuring stretch over `p` pairs at `n = 10,000` costs `k` graph searches
//! instead of `n` (let alone `n^2` memory).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::apsp::DistanceOracle;
use crate::scratch::SearchScratch;
use crate::{Graph, VertexId, Weight, INFINITY};

/// Upper bound on rows kept by the on-demand cache, so that a caller that
/// ignores the anchoring protocol degrades to recomputation, not to the
/// dense matrix's quadratic memory.
const MAX_ONDEMAND_ROWS: usize = 64;

/// Exact distances from `k` sampled sources, with on-demand exact queries
/// for every other pair.
#[derive(Debug)]
pub struct SampledDistances {
    /// Owned copy of the graph, for on-demand searches. CSR graphs are
    /// `O(n + m)`, so this is cheap next to even a single stored row set.
    graph: Graph,
    /// The sources, sorted by id, deduplicated.
    sources: Vec<VertexId>,
    /// `row_of[v]` = index into `rows` if `v` is a source.
    row_of: Vec<Option<u32>>,
    /// `rows[i][v]` = `d(sources[i], v)` (`INFINITY` when unreachable).
    rows: Vec<Vec<Weight>>,
    /// On-demand rows computed for non-source queries, capped at
    /// [`MAX_ONDEMAND_ROWS`].
    // lint:allow(det-hash-iter): keyed row cache (get/insert by vertex); never iterated
    ondemand: Mutex<HashMap<VertexId, Vec<Weight>>>,
    /// Number of on-demand Dijkstra runs performed (for harness reporting).
    ondemand_searches: AtomicUsize,
}

impl SampledDistances {
    /// Builds the oracle for an explicit source set (deduplicated), running
    /// one Dijkstra per source in parallel over [`routing_par::threads`]
    /// threads.
    pub fn from_sources(g: &Graph, sources: Vec<VertexId>) -> Self {
        let mut sources = sources;
        sources.sort_unstable();
        sources.dedup();
        let mut row_of = vec![None; g.n()];
        for (i, &s) in sources.iter().enumerate() {
            row_of[s.index()] = Some(i as u32);
        }
        let rows = routing_par::par_map_scratch(
            sources.len(),
            || SearchScratch::for_graph(g),
            |scratch, i| {
                scratch.dijkstra_into(g, sources[i]);
                scratch.dist_row(g.n())
            },
        );
        SampledDistances {
            graph: g.clone(),
            sources,
            row_of,
            rows,
            // lint:allow(det-hash-iter): keyed row cache, never iterated
            ondemand: Mutex::new(HashMap::new()),
            ondemand_searches: AtomicUsize::new(0),
        }
    }

    /// Builds the oracle from `k` sources drawn uniformly at random without
    /// replacement (all of `V` when `k >= n`).
    pub fn sample<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Self {
        let mut ids: Vec<VertexId> = g.vertices().collect();
        ids.shuffle(rng);
        ids.truncate(k.min(g.n()));
        Self::from_sources(g, ids)
    }

    /// Number of vertices of the underlying graph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The sampled sources, sorted by id.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// True when `d(u, v)` is an `O(1)` lookup (at least one endpoint is a
    /// source).
    pub fn covers(&self, u: VertexId, v: VertexId) -> bool {
        self.row_of[u.index()].is_some() || self.row_of[v.index()].is_some()
    }

    /// Exact distance between `u` and `v`, or `None` if unreachable.
    ///
    /// `O(1)` when [`SampledDistances::covers`] the pair; otherwise one
    /// Dijkstra from `u` (the row is cached, up to a fixed cap of 64 rows,
    /// so repeated queries from the same off-sample source stay cheap).
    pub fn dist(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u == v {
            return Some(0);
        }
        if let Some(i) = self.row_of[u.index()] {
            return finite(self.rows[i as usize][v.index()]);
        }
        if let Some(i) = self.row_of[v.index()] {
            // Undirected graph: d(v, u) = d(u, v).
            return finite(self.rows[i as usize][u.index()]);
        }
        {
            let cache = self.ondemand.lock().expect("oracle cache poisoned");
            if let Some(row) = cache.get(&u) {
                return finite(row[v.index()]);
            }
            if let Some(row) = cache.get(&v) {
                return finite(row[u.index()]);
            }
        }
        self.ondemand_searches.fetch_add(1, Ordering::Relaxed);
        let row = compute_row(&self.graph, u);
        let d = finite(row[v.index()]);
        let mut cache = self.ondemand.lock().expect("oracle cache poisoned");
        if cache.len() < MAX_ONDEMAND_ROWS {
            cache.insert(u, row);
        }
        d
    }

    /// How many on-demand (non-covered) Dijkstra searches have been run so
    /// far. The harness reports this so a mis-anchored pair population is
    /// visible instead of silently slow.
    pub fn ondemand_searches(&self) -> usize {
        self.ondemand_searches.load(Ordering::Relaxed)
    }

    /// The largest finite distance seen from any source — a lower bound on
    /// the diameter (equal to it when the sources include a diameter
    /// endpoint).
    pub fn diameter_lower_bound(&self) -> Weight {
        self.rows
            .iter()
            .flat_map(|row| row.iter().copied())
            .filter(|&d| d != INFINITY)
            .max()
            .unwrap_or(0)
    }
}

impl DistanceOracle for SampledDistances {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn distance(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.dist(u, v)
    }

    fn preferred_sources(&self) -> Option<&[VertexId]> {
        Some(&self.sources)
    }
}

fn finite(d: Weight) -> Option<Weight> {
    (d != INFINITY).then_some(d)
}

fn compute_row(g: &Graph, s: VertexId) -> Vec<Weight> {
    let mut scratch = SearchScratch::for_graph(g);
    scratch.dijkstra_into(g, s);
    scratch.dist_row(g.n())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::DistanceMatrix;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_matrix_on_covered_pairs() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::erdos_renyi(
            80,
            0.06,
            generators::WeightModel::Uniform { lo: 1, hi: 9 },
            &mut rng,
        );
        let matrix = DistanceMatrix::new(&g);
        let oracle = SampledDistances::sample(&g, 12, &mut rng);
        assert_eq!(oracle.sources().len(), 12);
        for &s in oracle.sources() {
            for v in g.vertices() {
                assert!(oracle.covers(s, v));
                assert_eq!(oracle.dist(s, v), matrix.dist(s, v));
                assert_eq!(oracle.dist(v, s), matrix.dist(v, s));
            }
        }
        assert_eq!(oracle.ondemand_searches(), 0, "covered pairs never search");
    }

    #[test]
    fn on_demand_pairs_are_exact_and_cached() {
        let g = generators::grid(7, 7);
        let matrix = DistanceMatrix::new(&g);
        let oracle = SampledDistances::from_sources(&g, vec![VertexId(0)]);
        let (u, v) = (VertexId(10), VertexId(43));
        assert!(!oracle.covers(u, v));
        assert_eq!(oracle.dist(u, v), matrix.dist(u, v));
        assert_eq!(oracle.ondemand_searches(), 1);
        // Second query from the same source hits the cached row; so does the
        // reverse direction.
        assert_eq!(oracle.dist(u, VertexId(48)), matrix.dist(u, VertexId(48)));
        assert_eq!(oracle.dist(VertexId(48), u), matrix.dist(VertexId(48), u));
        assert_eq!(oracle.ondemand_searches(), 1);
    }

    #[test]
    fn unreachable_and_identity() {
        let mut b = crate::GraphBuilder::new(5);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let oracle = SampledDistances::from_sources(&g, vec![VertexId(0), VertexId(0)]);
        assert_eq!(oracle.sources(), &[VertexId(0)], "sources are deduplicated");
        assert_eq!(oracle.dist(VertexId(0), VertexId(3)), None);
        assert_eq!(oracle.dist(VertexId(4), VertexId(4)), Some(0));
        assert_eq!(oracle.dist(VertexId(2), VertexId(3)), Some(1), "on-demand pair");
        assert_eq!(oracle.n(), 5);
    }

    #[test]
    fn diameter_bound_on_path() {
        let g = generators::path(9);
        let oracle = SampledDistances::from_sources(&g, vec![VertexId(0)]);
        assert_eq!(oracle.diameter_lower_bound(), 8);
    }

    #[test]
    fn oracle_trait_dispatch() {
        let g = generators::cycle(10);
        let oracle = SampledDistances::from_sources(&g, vec![VertexId(2)]);
        let dyn_oracle: &dyn DistanceOracle = &oracle;
        assert_eq!(dyn_oracle.n(), 10);
        assert_eq!(dyn_oracle.distance(VertexId(2), VertexId(7)), Some(5));
        assert_eq!(dyn_oracle.preferred_sources(), Some(&[VertexId(2)][..]));
    }
}
