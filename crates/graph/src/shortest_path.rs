//! Single-source and multi-source shortest paths with the paper's
//! lexicographic tie-breaking, ball (k-nearest) searches, and restricted
//! (cluster) searches.
//!
//! All searches order vertices by the pair `(distance, vertex id)`. This is
//! the tie-breaking rule the paper uses ("breaking ties by lexicographical
//! order of vertex names") and it is what makes Property 1 — if
//! `v ∈ B(u, ℓ)` and `w` is on a shortest path between `u` and `v`, then
//! `v ∈ B(w, ℓ)` — hold exactly rather than just in expectation.
//!
//! The free functions here ([`dijkstra`], [`ball`], [`multi_source_dijkstra`],
//! [`cluster_dijkstra`]) are thin wrappers that allocate a fresh
//! [`SearchScratch`] workspace per call and materialize an owned result —
//! convenient for one-off searches and tests. Code that runs **many**
//! searches (every preprocessing hot path) should hold one `SearchScratch`
//! per worker thread and call its `*_into` methods instead; the results are
//! bit-identical, only the allocator traffic differs.

use std::collections::HashMap;

use crate::scratch::SearchScratch;
use crate::{Graph, VertexId, Weight, INFINITY};

/// The result of a single-source shortest-path search: a shortest-path tree
/// rooted at the source and spanning every reachable vertex.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: VertexId,
    dist: Vec<Weight>,
    parent: Vec<Option<VertexId>>,
    first_hop: Vec<Option<VertexId>>,
}

impl ShortestPathTree {
    pub(crate) fn from_parts(
        source: VertexId,
        dist: Vec<Weight>,
        parent: Vec<Option<VertexId>>,
        first_hop: Vec<Option<VertexId>>,
    ) -> Self {
        ShortestPathTree { source, dist, parent, first_hop }
    }

    /// Materializes the result of the last single-origin search run on
    /// `scratch` (sized for a graph of `n` vertices) as an owned tree.
    pub fn from_scratch(scratch: &SearchScratch, n: usize) -> Self {
        let mut dist = vec![INFINITY; n];
        scratch.write_dist_row(&mut dist);
        let parent = (0..n as u32).map(|v| scratch.parent(VertexId(v))).collect();
        let first_hop = (0..n as u32).map(|v| scratch.first_hop(VertexId(v))).collect();
        ShortestPathTree { source: scratch.source(), dist, parent, first_hop }
    }

    /// The source vertex of the search.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Distance from the source to `v`, or `None` if `v` is unreachable.
    pub fn dist(&self, v: VertexId) -> Option<Weight> {
        let d = self.dist[v.index()];
        (d != INFINITY).then_some(d)
    }

    /// Parent of `v` in the shortest-path tree (`None` for the source and for
    /// unreachable vertices).
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.index()]
    }

    /// The first vertex after the source on the tree path to `v`.
    ///
    /// Returns `None` for the source itself and for unreachable vertices.
    pub fn first_hop(&self, v: VertexId) -> Option<VertexId> {
        self.first_hop[v.index()]
    }

    /// The full tree path from the source to `v` (inclusive of both ends), or
    /// `None` if `v` is unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if self.dist[v.index()] == INFINITY {
            return None;
        }
        // Walk the parent chain once to size the path exactly, then fill it
        // back to front — one allocation, no reverse.
        let mut len = 1usize;
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            len += 1;
            cur = p;
        }
        let mut path = vec![v; len];
        let mut i = len - 1;
        cur = v;
        while let Some(p) = self.parent[cur.index()] {
            i -= 1;
            path[i] = p;
            cur = p;
        }
        Some(path)
    }

    /// Children lists of the shortest-path tree in compressed (CSR) form:
    /// two flat arrays instead of one `Vec` per vertex.
    ///
    /// Unreachable vertices have empty child lists and are nobody's child.
    pub fn children(&self) -> TreeChildren {
        let n = self.dist.len();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            if let Some(p) = self.parent[v] {
                offsets[p.index() + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut list = vec![VertexId(0); offsets[n] as usize];
        let mut cursor = offsets.clone();
        // Ascending v keeps each child list sorted by id, as before.
        for v in 0..n as u32 {
            if let Some(p) = self.parent[v as usize] {
                list[cursor[p.index()] as usize] = VertexId(v);
                cursor[p.index()] += 1;
            }
        }
        TreeChildren { offsets, list }
    }

    /// Iterator over every reachable vertex together with its distance.
    pub fn reachable(&self) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != INFINITY)
            .map(|(v, &d)| (VertexId(v as u32), d))
    }
}

/// Children lists of a tree, indexed by vertex, in compressed (CSR) form.
///
/// Built by [`ShortestPathTree::children`] with two counting passes over the
/// parent array — no per-vertex `Vec` allocations.
#[derive(Debug, Clone)]
pub struct TreeChildren {
    /// `offsets[v]..offsets[v+1]` indexes `list` for vertex `v`.
    offsets: Vec<u32>,
    /// Children, grouped by parent, each group sorted by child id.
    list: Vec<VertexId>,
}

impl TreeChildren {
    /// The children of `v`, sorted by id (empty for leaves).
    pub fn of(&self, v: VertexId) -> &[VertexId] {
        &self.list[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Total number of child links (= number of non-root reachable vertices).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when the tree has no child links at all.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// Runs Dijkstra's algorithm from `source` with `(distance, id)` tie-breaking.
///
/// Allocates a fresh workspace per call; loops over many sources should use
/// [`SearchScratch::dijkstra_into`] instead.
pub fn dijkstra(g: &Graph, source: VertexId) -> ShortestPathTree {
    let mut scratch = SearchScratch::for_graph(g);
    scratch.dijkstra_into(g, source);
    ShortestPathTree::from_scratch(&scratch, g.n())
}

/// Runs breadth-first search from `source` on an unweighted graph.
///
/// Equivalent to [`dijkstra`] when every edge has weight 1, but cheaper.
///
/// # Panics
///
/// Panics if the graph has a non-unit edge weight.
pub fn bfs(g: &Graph, source: VertexId) -> ShortestPathTree {
    assert!(g.is_unweighted(), "bfs requires an unweighted graph; use dijkstra");
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut first_hop: Vec<Option<VertexId>> = vec![None; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for e in g.edges(u) {
            if dist[e.to.index()] == INFINITY {
                dist[e.to.index()] = dist[u.index()] + 1;
                parent[e.to.index()] = Some(u);
                first_hop[e.to.index()] =
                    if u == source { Some(e.to) } else { first_hop[u.index()] };
                queue.push_back(e.to);
            }
        }
    }
    ShortestPathTree { source, dist, parent, first_hop }
}

/// The vicinity `B(u, ℓ)` of a vertex: its `ℓ` closest vertices under the
/// `(distance, id)` order, together with the routing information Lemma 2
/// needs (the first hop of a shortest path to each member).
#[derive(Debug, Clone)]
pub struct Ball {
    center: VertexId,
    /// Members sorted by `(distance, id)`, including the center at index 0.
    members: Vec<(VertexId, Weight)>,
    /// First hop from the center towards each member (`None` for the center).
    first_hops: Vec<Option<VertexId>>,
    /// Member -> index in `members`.
    // lint:allow(det-hash-iter): membership lookup only; enumeration always goes through the settle-ordered `members` vec
    index: HashMap<VertexId, usize>,
    /// The radius `r_u(ℓ)` (see `Ball::radius`).
    radius: Weight,
}

impl Ball {
    pub(crate) fn from_parts(
        center: VertexId,
        members: Vec<(VertexId, Weight)>,
        first_hops: Vec<Option<VertexId>>,
        radius: Weight,
    ) -> Self {
        let index = members
            .iter()
            .enumerate()
            .map(|(i, &(v, _))| (v, i))
            .collect();
        Ball { center, members, first_hops, index, radius }
    }

    /// The center vertex `u`.
    pub fn center(&self) -> VertexId {
        self.center
    }

    /// Number of members (including the center).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ball contains only its center or is empty.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }

    /// Returns true if `v` is in the ball.
    pub fn contains(&self, v: VertexId) -> bool {
        self.index.contains_key(&v)
    }

    /// Distance from the center to member `v`, or `None` if `v` is not in the
    /// ball.
    pub fn dist_to(&self, v: VertexId) -> Option<Weight> {
        self.index.get(&v).map(|&i| self.members[i].1)
    }

    /// The first hop of a shortest path from the center to member `v`.
    ///
    /// Returns `None` if `v` is not a member or is the center itself.
    pub fn first_hop(&self, v: VertexId) -> Option<VertexId> {
        self.index.get(&v).and_then(|&i| self.first_hops[i])
    }

    /// Members in `(distance, id)` order, including the center first.
    pub fn members(&self) -> &[(VertexId, Weight)] {
        &self.members
    }

    /// The rank of `v` in the `(distance, id)` order (0 for the center), or
    /// `None` if `v` is not a member.
    ///
    /// Because balls are nested, `rank(v) < k` is exactly the membership test
    /// `v ∈ B(u, k)` for any `k` no larger than this ball's size — the
    /// multilevel schemes (Theorems 13 and 15) use this to answer membership
    /// for every level out of one stored ball.
    pub fn rank(&self, v: VertexId) -> Option<usize> {
        self.index.get(&v).copied()
    }

    /// The largest distance value `r` such that every vertex at distance
    /// exactly `r` from the center is inside the ball (the paper's `r_u(ℓ)`).
    ///
    /// For unweighted graphs this satisfies `d(u, w) <= radius + 1` for every
    /// member `w`.
    pub fn radius(&self) -> Weight {
        self.radius
    }

    /// The largest distance of any member.
    pub fn max_dist(&self) -> Weight {
        self.members.last().map(|&(_, d)| d).unwrap_or(0)
    }
}

/// Computes the ball `B(u, ℓ)`: the `ℓ` closest vertices of `u` (including
/// `u` itself), breaking ties by vertex id.
///
/// If the connected component of `u` has fewer than `ℓ` vertices the whole
/// component is returned.
pub fn ball(g: &Graph, u: VertexId, ell: usize) -> Ball {
    let mut scratch = SearchScratch::for_graph(g);
    let radius = scratch.ball_into(g, u, ell);
    let members = scratch.order().to_vec();
    let first_hops = members.iter().map(|&(v, _)| scratch.first_hop(v)).collect();
    Ball::from_parts(u, members, first_hops, radius)
}

/// Result of a multi-source shortest-path search from a set `A`.
///
/// For every vertex `v` it records `d(v, A)` and the nearest source
/// `p_A(v)` (ties broken by source id, matching the paper's convention).
#[derive(Debug, Clone)]
pub struct MultiSourceShortestPaths {
    dist: Vec<Weight>,
    nearest: Vec<Option<VertexId>>,
}

impl MultiSourceShortestPaths {
    pub(crate) fn from_parts(dist: Vec<Weight>, nearest: Vec<Option<VertexId>>) -> Self {
        MultiSourceShortestPaths { dist, nearest }
    }

    /// Distance from `v` to the nearest source, or `None` if unreachable or
    /// the source set was empty.
    pub fn dist(&self, v: VertexId) -> Option<Weight> {
        let d = self.dist[v.index()];
        (d != INFINITY).then_some(d)
    }

    /// The nearest source `p_A(v)`, or `None` if unreachable.
    pub fn nearest(&self, v: VertexId) -> Option<VertexId> {
        self.nearest[v.index()]
    }

    /// Raw distance slice (`INFINITY` for unreachable vertices).
    pub fn dist_slice(&self) -> &[Weight] {
        &self.dist
    }
}

/// Computes `d(v, A)` and `p_A(v)` for every vertex `v` with a single
/// multi-source Dijkstra from the set `A` (`sources`).
///
/// Ties between sources at equal distance are broken by source id.
pub fn multi_source_dijkstra(g: &Graph, sources: &[VertexId]) -> MultiSourceShortestPaths {
    let n = g.n();
    let mut sorted_sources: Vec<VertexId> = sources.to_vec();
    sorted_sources.sort_unstable();
    sorted_sources.dedup();
    let mut scratch = SearchScratch::for_graph(g);
    scratch.multi_source_into(g, &sorted_sources);
    let mut dist = vec![INFINITY; n];
    scratch.write_dist_row(&mut dist);
    let nearest = (0..n as u32).map(|v| scratch.nearest(VertexId(v))).collect();
    MultiSourceShortestPaths::from_parts(dist, nearest)
}

/// A restricted shortest-path search used to compute Thorup–Zwick clusters.
///
/// `cluster_dijkstra(g, w, bound)` explores from `w` but only keeps a vertex
/// `v` if `d(w, v) < bound[v]`. With `bound[v] = d(v, A)` the kept set is the
/// cluster `C_A(w)` and the parent pointers form the shortest-path tree
/// `T_{C_A(w)}` the paper routes on. The subpath property of clusters
/// guarantees the restricted distances equal the true distances for every
/// kept vertex.
#[derive(Debug, Clone)]
pub struct RestrictedTree {
    root: VertexId,
    /// Cluster members (including the root) with their distances, in
    /// `(distance, id)` settle order.
    members: Vec<(VertexId, Weight)>,
    /// Parent of each member inside the cluster tree (`None` for the root).
    // lint:allow(det-hash-iter): keyed parent lookups only; tree traversals walk the settle-ordered `members` vec
    parent: HashMap<VertexId, Option<VertexId>>,
}

impl RestrictedTree {
    pub(crate) fn from_parts(
        root: VertexId,
        members: Vec<(VertexId, Weight)>,
        // lint:allow(det-hash-iter): stored as the keyed parent lookup above
        parent: HashMap<VertexId, Option<VertexId>>,
    ) -> Self {
        RestrictedTree { root, members, parent }
    }

    /// Materializes the result of the last
    /// [`SearchScratch::cluster_into`] search as an owned cluster tree.
    pub fn from_scratch(scratch: &SearchScratch) -> Self {
        let members = scratch.order().to_vec();
        // Only settled vertices are members; their parents are final.
        let parent = members.iter().map(|&(v, _)| (v, scratch.parent(v))).collect();
        RestrictedTree { root: scratch.source(), members, parent }
    }

    /// The root `w`.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Cluster members (including the root) with distances.
    pub fn members(&self) -> &[(VertexId, Weight)] {
        &self.members
    }

    /// Number of members, including the root.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster contains only the root.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }

    /// Returns true if `v` is in the cluster.
    pub fn contains(&self, v: VertexId) -> bool {
        self.parent.contains_key(&v)
    }

    /// Distance from the root to member `v`.
    pub fn dist(&self, v: VertexId) -> Option<Weight> {
        self.members.iter().find(|&&(x, _)| x == v).map(|&(_, d)| d)
    }

    /// Parent of `v` in the cluster tree (`None` for the root), if `v` is a
    /// member.
    pub fn parent(&self, v: VertexId) -> Option<Option<VertexId>> {
        self.parent.get(&v).copied()
    }

    /// The tree as (child, parent) pairs, root excluded.
    pub fn tree_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.parent
            .iter()
            .filter_map(|(&v, &p)| p.map(|p| (v, p)))
    }
}

/// Computes the restricted shortest-path tree from `w` keeping only vertices
/// `v` with `d(w, v) < bound[v.index()]`. See [`RestrictedTree`].
pub fn cluster_dijkstra(g: &Graph, w: VertexId, bound: &[Weight]) -> RestrictedTree {
    let mut scratch = SearchScratch::for_graph(g);
    scratch.cluster_into(g, w, bound);
    RestrictedTree::from_scratch(&scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_unit_edge(i, i + 1).unwrap();
        }
        b.build()
    }

    fn weighted_diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 1).unwrap();
        b.add_edge(0, 2, 3).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.build()
    }

    #[test]
    fn dijkstra_distances_and_paths() {
        let g = weighted_diamond();
        let sp = dijkstra(&g, VertexId(0));
        assert_eq!(sp.dist(VertexId(3)), Some(2));
        assert_eq!(sp.dist(VertexId(2)), Some(3));
        assert_eq!(sp.path_to(VertexId(3)), Some(vec![VertexId(0), VertexId(1), VertexId(3)]));
        assert_eq!(sp.first_hop(VertexId(3)), Some(VertexId(1)));
        assert_eq!(sp.first_hop(VertexId(0)), None);
        assert_eq!(sp.source(), VertexId(0));
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_unit_edge(0, 1).unwrap();
        let g = b.build();
        let sp = dijkstra(&g, VertexId(0));
        assert_eq!(sp.dist(VertexId(2)), None);
        assert_eq!(sp.path_to(VertexId(2)), None);
        assert_eq!(sp.reachable().count(), 2);
    }

    #[test]
    fn bfs_matches_dijkstra_on_unweighted() {
        let g = path_graph(6);
        let a = bfs(&g, VertexId(0));
        let b = dijkstra(&g, VertexId(0));
        for v in g.vertices() {
            assert_eq!(a.dist(v), b.dist(v));
        }
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn bfs_panics_on_weighted() {
        let g = weighted_diamond();
        let _ = bfs(&g, VertexId(0));
    }

    #[test]
    fn children_lists_cover_tree() {
        let g = path_graph(5);
        let sp = dijkstra(&g, VertexId(2));
        let children = sp.children();
        assert_eq!(children.of(VertexId(2)), &[VertexId(1), VertexId(3)]);
        assert_eq!(children.of(VertexId(1)), &[VertexId(0)]);
        assert!(children.of(VertexId(0)).is_empty());
        assert_eq!(children.len(), 4);
        assert!(!children.is_empty());
    }

    #[test]
    fn ball_contains_closest_with_tie_break() {
        // Star: center 0, leaves 1..=4, all at distance 1. Ball of size 3 at 0
        // must contain 0 plus the two smallest-id leaves.
        let mut b = GraphBuilder::new(5);
        for i in 1..5 {
            b.add_unit_edge(0, i).unwrap();
        }
        let g = b.build();
        let ball = ball(&g, VertexId(0), 3);
        assert_eq!(ball.len(), 3);
        assert!(ball.contains(VertexId(0)));
        assert!(ball.contains(VertexId(1)));
        assert!(ball.contains(VertexId(2)));
        assert!(!ball.contains(VertexId(3)));
        // Not every vertex at distance 1 is inside, so the radius falls back
        // to the previous distance value (0).
        assert_eq!(ball.radius(), 0);
        assert_eq!(ball.max_dist(), 1);
    }

    #[test]
    fn ball_radius_complete_level() {
        let g = path_graph(6);
        // From vertex 0 the 4 closest are 0,1,2,3 and every vertex at
        // distance <= 3 is included, so the radius is 3.
        let ball = ball(&g, VertexId(0), 4);
        assert_eq!(ball.len(), 4);
        assert_eq!(ball.radius(), 3);
        assert_eq!(ball.dist_to(VertexId(3)), Some(3));
        assert_eq!(ball.first_hop(VertexId(3)), Some(VertexId(1)));
        assert_eq!(ball.first_hop(VertexId(0)), None);
    }

    #[test]
    fn ball_larger_than_component_returns_component() {
        let g = path_graph(4);
        let ball = ball(&g, VertexId(1), 100);
        assert_eq!(ball.len(), 4);
        assert_eq!(ball.radius(), ball.max_dist());
    }

    #[test]
    fn ball_center_is_first_member() {
        let g = weighted_diamond();
        let ball = ball(&g, VertexId(2), 3);
        assert_eq!(ball.members()[0], (VertexId(2), 0));
        assert_eq!(ball.center(), VertexId(2));
        assert!(!ball.is_empty());
    }

    #[test]
    fn multi_source_nearest_and_tie_break() {
        let g = path_graph(7);
        let ms = multi_source_dijkstra(&g, &[VertexId(0), VertexId(6)]);
        assert_eq!(ms.dist(VertexId(2)), Some(2));
        assert_eq!(ms.nearest(VertexId(2)), Some(VertexId(0)));
        assert_eq!(ms.nearest(VertexId(5)), Some(VertexId(6)));
        // Vertex 3 is equidistant (3) from both sources; the smaller id wins.
        assert_eq!(ms.dist(VertexId(3)), Some(3));
        assert_eq!(ms.nearest(VertexId(3)), Some(VertexId(0)));
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = path_graph(3);
        let ms = multi_source_dijkstra(&g, &[]);
        assert_eq!(ms.dist(VertexId(0)), None);
        assert_eq!(ms.nearest(VertexId(0)), None);
    }

    #[test]
    fn cluster_dijkstra_respects_bound() {
        let g = path_graph(6);
        // bound[v] = distance from v to the set {5}. Cluster of 0 is every v
        // with d(0,v) < d(v,5), i.e. vertices 0,1,2.
        let ms = multi_source_dijkstra(&g, &[VertexId(5)]);
        let bound: Vec<Weight> = g.vertices().map(|v| ms.dist(v).unwrap()).collect();
        let tree = cluster_dijkstra(&g, VertexId(0), &bound);
        let members: Vec<VertexId> = tree.members().iter().map(|&(v, _)| v).collect();
        assert_eq!(members, vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(tree.parent(VertexId(2)), Some(Some(VertexId(1))));
        assert_eq!(tree.parent(VertexId(0)), Some(None));
        assert!(tree.contains(VertexId(1)));
        assert!(!tree.contains(VertexId(4)));
        assert_eq!(tree.dist(VertexId(2)), Some(2));
        assert_eq!(tree.tree_edges().count(), 2);
        assert_eq!(tree.root(), VertexId(0));
        assert!(!tree.is_empty());
    }

    #[test]
    fn cluster_distances_equal_true_distances() {
        // Subpath property: restricted distances must equal true distances
        // for every cluster member.
        let g = weighted_diamond();
        let ms = multi_source_dijkstra(&g, &[VertexId(2)]);
        let bound: Vec<Weight> = g.vertices().map(|v| ms.dist(v).unwrap()).collect();
        let tree = cluster_dijkstra(&g, VertexId(0), &bound);
        let sp = dijkstra(&g, VertexId(0));
        for &(v, d) in tree.members() {
            assert_eq!(Some(d), sp.dist(v));
        }
    }
}
