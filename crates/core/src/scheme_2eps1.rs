//! Theorem 10: a `(2+ε, 1)`-stretch labeled routing scheme for unweighted
//! graphs with `Õ((1/ε)·n^{2/3})`-word routing tables.
//!
//! Ingredients (all with `q = ⌈n^{1/3}⌉`):
//!
//! * vicinities `B(u, q̃)` (Lemma 2);
//! * a landmark set `A` of size `Õ(n^{2/3})` with clusters of size
//!   `O(n^{1/3})` (Lemma 4), the cluster trees `T_{C_A(w)}`, and a global
//!   shortest-path tree `T(a)` for every landmark `a ∈ A`, whose Lemma 3
//!   routing information every vertex stores;
//! * a per-vertex hash table mapping each `v` with
//!   `B(u, q̃) ∩ B_A(v) ≠ ∅` to the intersection vertex minimizing
//!   `d(u, w) + d(w, v)` (this pins down an *exact* shortest path);
//! * a Lemma 6 coloring inducing a partition `U` over which Lemma 7 routes
//!   with stretch `(1+ε)`.
//!
//! Routing from `u` to `v`: if the vicinity/bunch intersection is non-empty
//! the message travels an exact shortest path through the intersection
//! vertex and its cluster tree. Otherwise `u` compares `d(v, p_A(v))` (from
//! `v`'s label) with the distance to its stored color representative `w` of
//! color `c(v)`: the smaller of "route on the global tree `T(p_A(v))`" and
//! "walk to `w`, then Lemma 7 to `v`" gives a path of length at most
//! `(2+2ε)·d(u, v) + 1`.

use std::collections::HashMap;

use rand::Rng;

use routing_graph::{Graph, SearchScratch, VertexId, Weight};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_tree::{tree_route_step, TreeLabel, TreeScheme};
use routing_vicinity::{all_clusters, bunches, sample_centers_bounded, BallTable, Coloring, Landmarks};

use crate::scheme_3eps::build_color_reps;
use crate::technique1::{Technique1Header, Technique1Router};
use crate::{BuildError, Params};

/// Label of a destination under Theorem 10.
#[derive(Debug, Clone)]
pub struct Scheme2Label {
    /// The destination vertex `v`.
    pub vertex: VertexId,
    /// Its color `c(v)`.
    pub color: u32,
    /// Its nearest landmark `p_A(v)` (equals `v` when `v ∈ A`).
    pub p_a: VertexId,
    /// The distance `d(v, p_A(v))`.
    pub d_pa: Weight,
    /// The Lemma 3 label of `v` in the global tree `T(p_A(v))`.
    pub global_label: TreeLabel,
}

impl Scheme2Label {
    /// Size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        4 + self.global_label.words()
    }
}

/// Routing phase carried in the header.
#[derive(Debug, Clone)]
enum Phase {
    /// Destination is inside the source's vicinity.
    Direct,
    /// Walking to the intersection vertex `w ∈ B(u, q̃) ∩ B_A(v)`.
    ToIntersection(VertexId),
    /// Routing on the cluster tree `T_{C_A(root)}` with the destination's
    /// label in that tree (fetched from `root`'s table).
    ClusterTree {
        root: VertexId,
        label: TreeLabel,
    },
    /// Routing on the global tree `T(p_A(v))` (label comes from `v`'s label).
    GlobalTree,
    /// Walking to the color representative before Lemma 7 takes over.
    ToRep(VertexId),
    /// Lemma 7 routing inside the destination's color class.
    Intra(Technique1Header),
}

/// Header of the Theorem 10 scheme.
#[derive(Debug, Clone)]
pub struct Scheme2Header {
    phase: Phase,
}

impl HeaderSize for Scheme2Header {
    fn words(&self) -> usize {
        match &self.phase {
            Phase::Direct | Phase::GlobalTree => 1,
            Phase::ToIntersection(_) | Phase::ToRep(_) => 2,
            Phase::ClusterTree { label, .. } => 2 + label.words(),
            Phase::Intra(h) => 1 + h.words(),
        }
    }
}

/// The Theorem 10 `(2+ε, 1)`-stretch routing scheme.
#[derive(Debug, Clone)]
pub struct SchemeTwoPlusEps {
    n: usize,
    epsilon: f64,
    q: u32,
    balls: BallTable,
    landmarks: Landmarks,
    /// Cluster tree of every vertex (indexed by vertex id).
    cluster_trees: Vec<TreeScheme>,
    /// Bunch of every vertex: `B_A(v)` with distances.
    bunch_of: Vec<Vec<(VertexId, Weight)>>,
    /// Global trees `T(a)` for every landmark `a`.
    // lint:allow(det-hash-iter): keyed lookup by landmark; the only iteration is an order-independent usize sum of table words
    global_trees: HashMap<VertexId, TreeScheme>,
    /// At `u`: destination `v` -> best intersection vertex `w`.
    // lint:allow(det-hash-iter): keyed lookup at query time; len() is the only whole-map read
    best_intersection: Vec<HashMap<VertexId, VertexId>>,
    color_of: Vec<u32>,
    /// At `u`, per color: `(representative, d(u, representative))`.
    color_rep: Vec<Vec<(VertexId, Weight)>>,
    router: Technique1Router,
}

impl SchemeTwoPlusEps {
    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Preprocesses the scheme for an unweighted connected graph `g`.
    ///
    /// # Errors
    ///
    /// Fails for disconnected graphs, invalid parameters, weighted graphs
    /// (the `(2+ε,1)` guarantee is for unweighted graphs), or when the
    /// Lemma 6 coloring cannot be built.
    pub fn build<R: Rng>(g: &Graph, params: &Params, rng: &mut R) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        if !g.is_connected() {
            return Err(BuildError::Disconnected);
        }
        if !g.is_unweighted() {
            return Err(BuildError::BadParameter {
                what: "theorem 10 applies to unweighted graphs".into(),
            });
        }
        let n = g.n();
        let q = (n as f64).powf(1.0 / 3.0).ceil().max(1.0) as u32;
        let ell = params.scaled(q as usize, n);
        let balls = BallTable::build(g, ell);

        // Lemma 4 landmarks with clusters of size O(n^{1/3}).
        let s = ((params.landmark_scale * (n as f64).powf(2.0 / 3.0)).ceil() as usize).clamp(1, n);
        let landmarks = sample_centers_bounded(g, s, rng);
        let clusters = all_clusters(g, &landmarks);
        let bunch_of = bunches(g, &clusters);
        let span_ct = routing_obs::span("cluster-trees");
        let cluster_trees: Vec<TreeScheme> = routing_par::par_map(&clusters, |tree| {
            TreeScheme::from_restricted(g, tree)
                .map_err(|e| BuildError::TooSmall { what: e.to_string() })
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        drop(span_ct);

        // Global trees for every landmark (one full Dijkstra each, fanned
        // out in parallel over per-worker search workspaces).
        let span_gt = routing_obs::span("global-trees");
        let built: Vec<Result<TreeScheme, BuildError>> = routing_par::par_map_scratch(
            landmarks.len(),
            || SearchScratch::for_graph(g),
            |scratch, i| {
                scratch.dijkstra_into(g, landmarks.members()[i]);
                TreeScheme::from_scratch(g, scratch)
                    .map_err(|e| BuildError::TooSmall { what: e.to_string() })
            },
        );
        // lint:allow(det-hash-iter): filled in sorted landmark order, read by key (see the field pragma)
        let mut global_trees = HashMap::with_capacity(landmarks.len());
        for (&a, tree) in landmarks.members().iter().zip(built) {
            global_trees.insert(a, tree?);
        }
        drop(span_gt);

        // Best intersection vertex per (u, v) with B(u, q̃) ∩ B_A(v) != ∅.
        let span_ix = routing_obs::span("intersections");
        // lint:allow(det-hash-iter): per-destination best is keyed; ties broken by explicit comparison below, not visit order
        let mut best_intersection: Vec<HashMap<VertexId, VertexId>> = vec![HashMap::new(); n];
        // lint:allow(det-hash-iter): keyed min-tracking companion of best_intersection; never iterated
        let mut best_sum: Vec<HashMap<VertexId, Weight>> = vec![HashMap::new(); n];
        for u in g.vertices() {
            for &(w, d_uw) in balls.ball(u).members() {
                for &(v, d_wv) in clusters[w.index()].members() {
                    let sum = d_uw + d_wv;
                    let better = match best_sum[u.index()].get(&v) {
                        Some(&old) => sum < old,
                        None => true,
                    };
                    if better {
                        best_sum[u.index()].insert(v, sum);
                        best_intersection[u.index()].insert(v, w);
                    }
                }
            }
        }

        drop(span_ix);

        // Lemma 6 coloring and Lemma 7 over the induced partition.
        let span_coloring = routing_obs::span("coloring");
        let ball_sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect();
        let coloring = Coloring::build_for_sets(n, q, &ball_sets, params.coloring_retries, rng)?;
        let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();
        drop(span_coloring);
        let span_reps = routing_obs::span("color-reps");
        let reps = build_color_reps(g, &balls, &color_of, q);
        let color_rep: Vec<Vec<(VertexId, Weight)>> = g
            .vertices()
            .map(|u| {
                reps[u.index()]
                    .iter()
                    .map(|&w| (w, balls.dist(u, w).unwrap_or(0)))
                    .collect()
            })
            .collect();
        drop(span_reps);
        let router = Technique1Router::build(g, &balls, color_of.clone(), params, rng)?;

        Ok(SchemeTwoPlusEps {
            n,
            epsilon: params.epsilon,
            q,
            balls,
            landmarks,
            cluster_trees,
            bunch_of,
            global_trees,
            best_intersection,
            color_of,
            color_rep,
            router,
        })
    }

    /// The number of colors / the parameter `q = ⌈n^{1/3}⌉`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// The landmark set `A`.
    pub fn landmarks(&self) -> &Landmarks {
        &self.landmarks
    }
}

impl RoutingScheme for SchemeTwoPlusEps {
    type Label = Scheme2Label;
    type Header = Scheme2Header;

    fn name(&self) -> &str {
        "thm10"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> Scheme2Label {
        let p_a = self.landmarks.nearest(v).unwrap_or(v);
        let d_pa = self.landmarks.dist_to_set(v).unwrap_or(0);
        let global_label = self
            .global_trees
            .get(&p_a)
            .and_then(|t| t.label(v))
            .cloned()
            .unwrap_or(TreeLabel { tin: u32::MAX, light_ports: Vec::new() });
        Scheme2Label { vertex: v, color: self.color_of[v.index()], p_a, d_pa, global_label }
    }

    fn init_header(&self, source: VertexId, dest: &Scheme2Label) -> Result<Scheme2Header, RouteError> {
        let v = dest.vertex;
        if source == v || self.balls.contains(source, v) {
            routing_obs::counters::ROUTING_PHASE_DIRECT.inc();
            return Ok(Scheme2Header { phase: Phase::Direct });
        }
        if let Some(&w) = self.best_intersection[source.index()].get(&v) {
            if w == source {
                let label = self.cluster_trees[source.index()]
                    .label(v)
                    .cloned()
                    .ok_or_else(|| RouteError::MissingInformation {
                        at: source,
                        what: format!("{v} missing from own cluster tree"),
                    })?;
                routing_obs::counters::ROUTING_PHASE_TREE.inc();
                return Ok(Scheme2Header { phase: Phase::ClusterTree { root: source, label } });
            }
            routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc();
            return Ok(Scheme2Header { phase: Phase::ToIntersection(w) });
        }
        let (w, d_uw) = self.color_rep[source.index()][dest.color as usize];
        if dest.d_pa <= d_uw {
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(Scheme2Header { phase: Phase::GlobalTree });
        }
        if w == source {
            let h = self.router.start(source, v)?;
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(Scheme2Header { phase: Phase::Intra(h) });
        }
        routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc();
        Ok(Scheme2Header { phase: Phase::ToRep(w) })
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut Scheme2Header,
        dest: &Scheme2Label,
    ) -> Result<Decision, RouteError> {
        let v = dest.vertex;
        if at == v {
            return Ok(Decision::Deliver);
        }
        loop {
            match &mut header.phase {
                Phase::Direct => {
                    return self
                        .balls
                        .first_port(at, v)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("{v} left the vicinity during direct routing"),
                        })
                }
                Phase::ToIntersection(w) => {
                    if at == *w {
                        let label = self.cluster_trees[at.index()].label(v).cloned().ok_or_else(
                            || RouteError::MissingInformation {
                                at,
                                what: format!("{v} is not in the cluster of {at}"),
                            },
                        )?;
                        header.phase = Phase::ClusterTree { root: at, label };
                        continue;
                    }
                    let w = *w;
                    return self
                        .balls
                        .first_port(at, w)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("intersection vertex {w} left the vicinity"),
                        });
                }
                Phase::ClusterTree { root, label } => {
                    let node = self.cluster_trees[root.index()].node_info(at).ok_or_else(|| {
                        RouteError::MissingInformation {
                            at,
                            what: format!("no cluster-tree information for T_C({root})"),
                        }
                    })?;
                    return tree_route_step(node, label).map_err(|e| match e {
                        RouteError::MissingInformation { what, .. } => {
                            RouteError::MissingInformation { at, what }
                        }
                        other => other,
                    });
                }
                Phase::GlobalTree => {
                    let tree = self.global_trees.get(&dest.p_a).ok_or_else(|| {
                        RouteError::BadLabel { what: format!("{} is not a landmark", dest.p_a) }
                    })?;
                    let node = tree.node_info(at).ok_or_else(|| RouteError::MissingInformation {
                        at,
                        what: format!("no routing information for global tree T({})", dest.p_a),
                    })?;
                    return tree_route_step(node, &dest.global_label).map_err(|e| match e {
                        RouteError::MissingInformation { what, .. } => {
                            RouteError::MissingInformation { at, what }
                        }
                        other => other,
                    });
                }
                Phase::ToRep(w) => {
                    if at == *w {
                        let h = self.router.start(at, v)?;
                        header.phase = Phase::Intra(h);
                        continue;
                    }
                    let w = *w;
                    return self
                        .balls
                        .first_port(at, w)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("representative {w} left the vicinity"),
                        });
                }
                Phase::Intra(h) => return self.router.step(at, h, v, &self.balls),
            }
        }
    }

    fn table_words(&self, u: VertexId) -> usize {
        let cluster_membership: usize = self.bunch_of[u.index()]
            .iter()
            .map(|&(w, _)| self.cluster_trees[w.index()].table_words(u))
            .sum();
        let own_cluster_labels: usize = self.cluster_trees[u.index()]
            .vertices()
            .map(|v| self.cluster_trees[u.index()].label(v).map(TreeLabel::words).unwrap_or(0))
            .sum();
        let global: usize =
            self.global_trees.values().map(|t| t.table_words(u)).sum();
        self.balls.words_at(u)
            + cluster_membership
            + own_cluster_labels
            + global
            + 2 * self.best_intersection[u.index()].len()
            + 2 * self.q as usize
            + self.router.table_words(u)
    }

    fn label_words(&self, v: VertexId) -> usize {
        self.label_of(v).words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn check_all_pairs(g: &Graph, epsilon: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = Params::with_epsilon(epsilon);
        let scheme = SchemeTwoPlusEps::build(g, &params, &mut rng).unwrap();
        let exact = DistanceMatrix::new(g);
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let out = simulate(g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                let bound = (2.0 + 2.0 * epsilon) * d as f64 + 1.0 + 1e-9;
                assert!(
                    (out.weight as f64) <= bound,
                    "theorem 10 bound violated for {u}->{v}: routed {} vs d={d}",
                    out.weight
                );
            }
        }
    }

    #[test]
    fn thm10_bound_on_sparse_random_graph() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::erdos_renyi(90, 0.05, WeightModel::Unit, &mut rng);
        check_all_pairs(&g, 0.5, 1);
    }

    #[test]
    fn thm10_bound_on_grid() {
        let g = generators::grid(8, 8);
        check_all_pairs(&g, 0.5, 2);
    }

    #[test]
    fn thm10_bound_on_scale_free_graph() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::barabasi_albert(80, 3, WeightModel::Unit, &mut rng);
        check_all_pairs(&g, 1.0, 3);
    }

    #[test]
    fn thm10_rejects_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(44);
        let g =
            generators::erdos_renyi(30, 0.2, WeightModel::Uniform { lo: 1, hi: 5 }, &mut rng);
        let err = SchemeTwoPlusEps::build(&g, &Params::default(), &mut rng).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter { .. }));
    }

    #[test]
    fn thm10_metadata_and_sizes() {
        let mut rng = StdRng::seed_from_u64(45);
        let g = generators::erdos_renyi(60, 0.08, WeightModel::Unit, &mut rng);
        let scheme = SchemeTwoPlusEps::build(&g, &Params::default(), &mut rng).unwrap();
        assert!(scheme.name().contains("thm10"));
        assert_eq!(RoutingScheme::n(&scheme), 60);
        assert!(scheme.q() >= 4);
        assert!(!scheme.landmarks().is_empty());
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            assert!(scheme.label_words(v) >= 4);
        }
    }
}
