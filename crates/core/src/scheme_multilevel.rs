//! The multilevel `(3 ± 2/ℓ + ε, 2)` schemes of Theorems 13 and 15.
//!
//! Section 5 refines the warm-up scheme with a hierarchy of `ℓ` nested
//! vicinities per vertex. The crucial observation is Lemma 2's settle
//! order: because a vicinity of size `t·b` contains the vicinity of size
//! `b` as a prefix of its member list, **one** stored ball of size `ℓ·b`
//! answers membership queries for every level — `v` is in the level-`t`
//! vicinity of `u` iff [`routing_vicinity::BallView::rank`]`(v) < t·b`. Vertices therefore
//! store a single [`BallTable`] of the top-level size and derive all `ℓ`
//! levels from ranks, paying one table instead of `ℓ`.
//!
//! Routing from `u` to `v`: exact Lemma 2 forwarding when `v` is in `u`'s
//! stored (top-level) ball; otherwise walk towards the remembered color
//! representative `w` of `c(v)` — with the multilevel shortcut that any
//! intermediate vertex whose own ball already contains `v` finishes the
//! route exactly — and from `w` route with Lemma 7 at slack `ε/2`. The
//! larger the top-level ball (the larger `ℓ`), the more often the direct
//! and shortcut cases fire, trading table space `Õ(ℓ√n/ε)` for stretch
//! `(3 + 2/ℓ + ε)·d + 2`: Theorem 13 instantiates `ℓ = 2`, Theorem 15
//! `ℓ = 4`.
//!
//! The bound this implementation *declares* (see the bench crate's
//! `SchemeMeta`) is the `+` branch of Theorem 13/15 with additive 2; the
//! internal slack split (Lemma 7 runs at `ε/2`) makes the implemented
//! worst case `(3+ε)·d`, strictly inside the declared envelope for every
//! `ℓ ≥ 2`, so the machine-checked conformance bound holds with margin on
//! every input.

use rand::Rng;

use routing_graph::{Graph, VertexId};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_vicinity::{BallTable, Coloring};

use crate::scheme_3eps::build_color_reps;
use crate::technique1::{Technique1Header, Technique1Router};
use crate::{BuildError, Params};

/// Routing phase carried in the message header.
#[derive(Debug, Clone)]
enum Phase {
    /// The destination is in the current vertex's stored ball: pure
    /// Lemma 2 forwarding (exact by Property 1).
    Direct,
    /// Walking towards the color representative `w` of the destination's
    /// color, with the level shortcut: switch to [`Phase::Direct`] at the
    /// first vertex whose stored ball contains the destination.
    ToRep(VertexId),
    /// Lemma 7 routing from the representative to the destination.
    Intra(Technique1Header),
}

/// Header of the multilevel scheme.
#[derive(Debug, Clone)]
pub struct MultilevelHeader {
    phase: Phase,
}

impl HeaderSize for MultilevelHeader {
    fn words(&self) -> usize {
        match &self.phase {
            Phase::Direct => 1,
            Phase::ToRep(_) => 2,
            Phase::Intra(h) => 1 + h.words(),
        }
    }
}

/// Label of the multilevel scheme: the destination and its color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultilevelLabel {
    /// The destination vertex.
    pub vertex: VertexId,
    /// The destination's color `c(v)` under the level-1 coloring.
    pub color: u32,
}

/// The multilevel `(3 ± 2/ℓ + ε, 2)` scheme with `Õ(ℓ√n/ε)`-word tables
/// (Theorems 13 and 15; `ℓ` is chosen at build time).
#[derive(Debug, Clone)]
pub struct SchemeMultilevel {
    name: &'static str,
    n: usize,
    epsilon: f64,
    levels: usize,
    /// Members per level: level `t` (1-based) is the first `t·level_base`
    /// entries of the stored ball.
    level_base: usize,
    q: u32,
    balls: BallTable,
    router: Technique1Router,
    color_of: Vec<u32>,
    /// `color_rep[u][i]` = the closest vertex of color `i` in `u`'s stored
    /// (top-level) ball.
    color_rep: Vec<Vec<VertexId>>,
}

impl SchemeMultilevel {
    /// Preprocesses the scheme for `g` with `levels = ℓ` nested vicinity
    /// levels, registered under `name`.
    ///
    /// # Errors
    ///
    /// Fails on disconnected graphs, invalid parameters, `levels == 0`, or
    /// if the Lemma 6 coloring cannot be constructed.
    pub fn build<R: Rng>(
        g: &Graph,
        levels: usize,
        name: &'static str,
        params: &Params,
        rng: &mut R,
    ) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        if levels == 0 {
            return Err(BuildError::BadParameter { what: "levels must be >= 1".to_string() });
        }
        if !g.is_connected() {
            return Err(BuildError::Disconnected);
        }
        let n = g.n();
        let q = (n as f64).sqrt().ceil().max(1.0) as u32;
        // One stored ball of ℓ·b members; level t is its t·b-prefix.
        let level_base = params.scaled(q as usize, n);
        let ell = (level_base * levels).clamp(1, n);
        let balls = BallTable::build(g, ell);

        // The Lemma 6 coloring partitions by the *level-1* vicinities, so
        // Lemma 7's per-class guarantee matches the warm-up analysis; the
        // larger stored ball only adds direct-routing reach on top.
        let span_coloring = routing_obs::span("coloring");
        let level1_sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| {
                let ball = balls.ball(u);
                let members = ball.members();
                let take = level_base.min(members.len());
                members[..take].iter().map(|&(v, _)| v).collect()
            })
            .collect();
        let coloring = Coloring::build_for_sets(n, q, &level1_sets, params.coloring_retries, rng)?;
        let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();
        drop(span_coloring);

        // Representatives come from the full stored ball: the settle order
        // is by distance, so the first member of each color is the closest.
        let span_reps = routing_obs::span("color-reps");
        let color_rep = build_color_reps(g, &balls, &color_of, q);
        drop(span_reps);

        // Split the slack: Lemma 7 runs at ε/2, so the end-to-end worst
        // case d + (1 + ε/2)·2d = (3+ε)d sits inside (3 + 2/ℓ + ε)d + 2
        // for every ℓ ≥ 2 — the declared bound holds with margin.
        let inner = Params { epsilon: params.epsilon / 2.0, ..*params };
        let router = Technique1Router::build(g, &balls, color_of.clone(), &inner, rng)?;

        Ok(SchemeMultilevel {
            name,
            n,
            epsilon: params.epsilon,
            levels,
            level_base,
            q,
            balls,
            router,
            color_of,
            color_rep,
        })
    }

    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The number of vicinity levels `ℓ`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Members per level: level `t` (1-based) of a vertex's vicinity
    /// hierarchy is the first `t · level_base()` entries of its stored
    /// ball.
    pub fn level_base(&self) -> usize {
        self.level_base
    }

    /// The number of colors `q = ⌈√n⌉`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// The color of vertex `v`.
    pub fn color(&self, v: VertexId) -> u32 {
        self.color_of[v.index()]
    }

    /// The smallest level `t ∈ 1..=levels` whose vicinity of `u` contains
    /// `v`, derived from the single stored ball via [`routing_vicinity::BallView::rank`]:
    /// `v` is in level `t` iff `rank < t · level_base`. `None` when `v` is
    /// outside the top-level (stored) ball.
    ///
    /// This is the multilevel substrate: one table answers membership at
    /// every level, no per-level storage.
    pub fn member_level(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let rank = self.balls.ball(u).rank(v)?;
        let t = rank / self.level_base + 1;
        (t <= self.levels).then_some(t)
    }
}

impl RoutingScheme for SchemeMultilevel {
    type Label = MultilevelLabel;
    type Header = MultilevelHeader;

    fn name(&self) -> &str {
        self.name
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> MultilevelLabel {
        MultilevelLabel { vertex: v, color: self.color_of[v.index()] }
    }

    fn init_header(
        &self,
        source: VertexId,
        dest: &MultilevelLabel,
    ) -> Result<MultilevelHeader, RouteError> {
        if source == dest.vertex || self.balls.contains(source, dest.vertex) {
            routing_obs::counters::ROUTING_PHASE_DIRECT.inc();
            return Ok(MultilevelHeader { phase: Phase::Direct });
        }
        let rep = self.color_rep[source.index()][dest.color as usize];
        if rep == source {
            let h = self.router.start(source, dest.vertex)?;
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(MultilevelHeader { phase: Phase::Intra(h) });
        }
        routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc();
        Ok(MultilevelHeader { phase: Phase::ToRep(rep) })
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut MultilevelHeader,
        dest: &MultilevelLabel,
    ) -> Result<Decision, RouteError> {
        if at == dest.vertex {
            return Ok(Decision::Deliver);
        }
        loop {
            match &mut header.phase {
                Phase::Direct => {
                    return self
                        .balls
                        .first_port(at, dest.vertex)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("{} left the vicinity during direct routing", dest.vertex),
                        });
                }
                Phase::ToRep(rep) => {
                    // The multilevel shortcut: larger stored balls mean
                    // intermediate vertices often already see the
                    // destination — finish exactly (Property 1) instead of
                    // detouring through the representative.
                    if self.balls.contains(at, dest.vertex) {
                        header.phase = Phase::Direct;
                        continue;
                    }
                    if at == *rep {
                        let h = self.router.start(at, dest.vertex)?;
                        header.phase = Phase::Intra(h);
                        continue;
                    }
                    let rep = *rep;
                    return self
                        .balls
                        .first_port(at, rep)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("representative {rep} left the vicinity"),
                        });
                }
                Phase::Intra(h) => return self.router.step(at, h, dest.vertex, &self.balls),
            }
        }
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.balls.words_at(v) + self.router.table_words(v) + self.q as usize
    }

    fn label_words(&self, _v: VertexId) -> usize {
        2
    }
}

/// Builds the Theorem 13 multilevel scheme, `ℓ = 2` (registry key `thm13`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Thm13Builder;

/// `ℓ` used by [`Thm13Builder`].
pub const THM13_LEVELS: usize = 2;

impl crate::SchemeBuilder for Thm13Builder {
    fn key(&self) -> &str {
        "thm13"
    }

    fn build(
        &self,
        g: &Graph,
        ctx: &crate::BuildContext,
    ) -> Result<Box<dyn routing_model::DynScheme>, BuildError> {
        let scheme =
            SchemeMultilevel::build(g, THM13_LEVELS, "thm13", &ctx.params, &mut ctx.rng())?;
        Ok(Box::new(scheme))
    }
}

/// Builds the Theorem 15 multilevel scheme, `ℓ = 4` (registry key `thm15`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Thm15Builder;

/// `ℓ` used by [`Thm15Builder`].
pub const THM15_LEVELS: usize = 4;

impl crate::SchemeBuilder for Thm15Builder {
    fn key(&self) -> &str {
        "thm15"
    }

    fn build(
        &self,
        g: &Graph,
        ctx: &crate::BuildContext,
    ) -> Result<Box<dyn routing_model::DynScheme>, BuildError> {
        let scheme =
            SchemeMultilevel::build(g, THM15_LEVELS, "thm15", &ctx.params, &mut ctx.rng())?;
        Ok(Box::new(scheme))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn check_all_pairs(g: &Graph, levels: usize, epsilon: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = Params::with_epsilon(epsilon);
        let scheme = SchemeMultilevel::build(g, levels, "thm13", &params, &mut rng).unwrap();
        let exact = DistanceMatrix::new(g);
        // The declared Theorem 13/15 envelope: (3 + 2/ℓ + ε)·d + 2.
        let factor = 3.0 + 2.0 / levels as f64 + epsilon;
        let mut worst: f64 = 1.0;
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let out = simulate(g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap() as f64;
                worst = worst.max(out.weight as f64 / d);
                assert!(
                    out.weight as f64 <= factor * d + 2.0 + 1e-9,
                    "bound violated for {u}->{v}: routed {} vs dist {d}",
                    out.weight
                );
            }
        }
        worst
    }

    #[test]
    fn multilevel_l2_meets_bound_on_unweighted_graph() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::erdos_renyi(80, 0.06, WeightModel::Unit, &mut rng);
        let worst = check_all_pairs(&g, 2, 0.5, 1);
        assert!(worst >= 1.0);
    }

    #[test]
    fn multilevel_l4_meets_bound_on_weighted_graph() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::erdos_renyi(60, 0.08, WeightModel::Uniform { lo: 1, hi: 20 }, &mut rng);
        check_all_pairs(&g, 4, 0.25, 2);
    }

    #[test]
    fn multilevel_on_grid() {
        let g = generators::grid(7, 7);
        check_all_pairs(&g, 4, 1.0, 3);
    }

    #[test]
    fn one_stored_ball_answers_membership_at_every_level() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::erdos_renyi(70, 0.08, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
        let scheme =
            SchemeMultilevel::build(&g, 4, "thm15", &Params::with_epsilon(0.5), &mut rng).unwrap();
        let b = scheme.level_base();
        for u in g.vertices() {
            let view = scheme.balls.ball(u);
            // Level 1 membership: exactly the b-prefix of the stored ball.
            assert_eq!(scheme.member_level(u, u), Some(1), "center is level-1");
            for (rank, &(v, _)) in view.members().iter().enumerate() {
                let level = scheme.member_level(u, v);
                assert_eq!(level, Some(rank / b + 1), "rank {rank} of {u}");
                // Monotonicity: levels are nested, so membership at level t
                // implies membership at every t' >= t.
                if let Some(t) = level {
                    assert!(t <= scheme.levels());
                    assert!(rank < t * b && (t == 1 || rank >= (t - 1) * b));
                }
            }
            // A vertex outside the stored ball is at no level.
            for v in g.vertices() {
                if !view.contains(v) {
                    assert_eq!(scheme.member_level(u, v), None);
                }
            }
        }
    }

    #[test]
    fn multilevel_reports_metadata() {
        let mut rng = StdRng::seed_from_u64(44);
        let g = generators::cycle(36);
        let scheme =
            SchemeMultilevel::build(&g, 2, "thm13", &Params::default(), &mut rng).unwrap();
        assert_eq!(scheme.q(), 6);
        assert_eq!(scheme.levels(), 2);
        assert_eq!(RoutingScheme::n(&scheme), 36);
        assert_eq!(scheme.name(), "thm13");
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            assert_eq!(scheme.label_words(v), 2);
            assert!(scheme.color(v) < 6);
            assert_eq!(scheme.label_of(v).color, scheme.color(v));
        }
    }

    #[test]
    fn multilevel_rejects_bad_inputs() {
        let mut b = routing_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let err =
            SchemeMultilevel::build(&g, 2, "thm13", &Params::default(), &mut rng).unwrap_err();
        assert_eq!(err, BuildError::Disconnected);

        let g = generators::cycle(12);
        let err =
            SchemeMultilevel::build(&g, 0, "thm13", &Params::default(), &mut rng).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter { .. }));
    }

    #[test]
    fn builders_build_schemes_named_after_their_key() {
        let mut rng = StdRng::seed_from_u64(45);
        let g = generators::erdos_renyi(70, 0.08, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
        let ctx = crate::BuildContext::with_seed(11);
        for (builder, key) in
            [(&Thm13Builder as &dyn crate::SchemeBuilder, "thm13"), (&Thm15Builder, "thm15")]
        {
            assert_eq!(builder.key(), key);
            let scheme = builder.build(&g, &ctx).unwrap();
            assert_eq!(scheme.name(), key);
            let out = simulate(&g, scheme.as_ref(), VertexId(0), VertexId(69)).unwrap();
            assert_eq!(out.destination(), VertexId(69));
        }
    }
}
