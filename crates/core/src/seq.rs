//! The routing sequences at the heart of both techniques.
//!
//! A sequence is a list of *temporary targets* `⟨x_1, ..., x_{b'}⟩` stored at
//! a source for a particular destination. The message hops from one
//! temporary target to the next; each hop is either
//!
//! * a **ball hop** — the next target lies in the vicinity `B(·, q̃)` of the
//!   current one, so Lemma 2 forwarding reaches it on a shortest path, or
//! * an **edge hop** — the next target is an immediate neighbour of the
//!   current one, reached over a single stored port (this is the paper's
//!   footnote about storing edges instead of vertices so the fixed-port
//!   model needs no neighbour-to-port oracle).

use serde::{Deserialize, Serialize};

use routing_graph::{Port, VertexId};

/// How a temporary target is reached from the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopKind {
    /// The target is in the vicinity of the previous target; route with
    /// Lemma 2 (every intermediate vertex knows the first-hop port).
    Ball,
    /// The target is a neighbour of the previous target; forward over this
    /// port (valid at the previous target).
    Edge(Port),
}

/// One temporary target of a routing sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqEntry {
    /// The temporary target vertex.
    pub vertex: VertexId,
    /// How to reach it from the previous temporary target.
    pub hop: HopKind,
}

impl SeqEntry {
    /// A ball-hop entry.
    pub fn ball(vertex: VertexId) -> Self {
        SeqEntry { vertex, hop: HopKind::Ball }
    }

    /// An edge-hop entry over `port` (the port lives at the previous target).
    pub fn edge(vertex: VertexId, port: Port) -> Self {
        SeqEntry { vertex, hop: HopKind::Edge(port) }
    }

    /// Size of one entry in `O(log n)`-bit words (vertex + hop descriptor).
    pub fn words() -> usize {
        2
    }
}

/// Size of a whole sequence in `O(log n)`-bit words.
pub fn sequence_words(entries: &[SeqEntry]) -> usize {
    SeqEntry::words() * entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_words() {
        let a = SeqEntry::ball(VertexId(3));
        assert_eq!(a.hop, HopKind::Ball);
        let b = SeqEntry::edge(VertexId(4), Port(1));
        assert_eq!(b.hop, HopKind::Edge(Port(1)));
        assert_eq!(SeqEntry::words(), 2);
        assert_eq!(sequence_words(&[a, b]), 4);
        assert_eq!(sequence_words(&[]), 0);
    }
}
