use std::error::Error;
use std::fmt;

use routing_vicinity::ColoringError;

/// Errors produced while preprocessing (building) a routing scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The input graph is not connected; every scheme in the paper assumes a
    /// connected graph (route between any pair of vertices).
    Disconnected,
    /// The graph is too small for the requested parameters (for example a
    /// multilevel scheme with more levels than meaningful ball sizes).
    TooSmall {
        /// Human-readable description.
        what: String,
    },
    /// A parameter was out of range (for example `epsilon <= 0`).
    BadParameter {
        /// Human-readable description.
        what: String,
    },
    /// The Lemma 6 coloring could not be constructed for the derived sets.
    Coloring(ColoringError),
    /// A scheme name was looked up in a registry that has no builder for it
    /// (see the facade crate's `SchemeRegistry`).
    UnknownScheme {
        /// The unrecognized scheme name.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Disconnected => write!(f, "input graph is not connected"),
            BuildError::TooSmall { what } => write!(f, "graph too small for parameters: {what}"),
            BuildError::BadParameter { what } => write!(f, "bad parameter: {what}"),
            BuildError::Coloring(e) => write!(f, "coloring failed: {e}"),
            BuildError::UnknownScheme { name } => {
                write!(f, "no registered scheme is named {name:?}")
            }
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Coloring(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColoringError> for BuildError {
    fn from(e: ColoringError) -> Self {
        BuildError::Coloring(e)
    }
}

// Build errors cross thread boundaries when a background rebuild worker
// reports a failed preprocessing to the serving layer, so
// `Send + Sync + 'static` is part of the contract — checked at compile
// time, not merely by a test.
const fn assert_send_sync_static<T: Send + Sync + 'static>() {}
const _: () = assert_send_sync_static::<BuildError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert_eq!(BuildError::Disconnected.to_string(), "input graph is not connected");
        let e = BuildError::BadParameter { what: "epsilon must be positive".into() };
        assert!(e.to_string().contains("epsilon"));
        let c = ColoringError { set_index: 1, missing_color: 2 };
        let e: BuildError = c.into();
        assert!(e.to_string().contains("coloring failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&BuildError::Disconnected).is_none());
        let e = BuildError::UnknownScheme { name: "thm12".into() };
        assert!(e.to_string().contains("thm12"));
    }
}
