//! The first routing technique (Lemma 7): `(1+ε)`-stretch routing between
//! vertices of the same set of a partition `U = {U_1, ..., U_q}` of `V`.
//!
//! **Preprocessing.** Every vertex stores its vicinity `B(u, q̃)` (Lemma 2).
//! A hitting set `H` of size `Õ(n/q)` hits every vicinity (Lemma 5); for
//! every `w ∈ H` a shortest-path tree `T(w)` spanning `V` is built and every
//! vertex keeps the Lemma 3 tree-routing information of every `T(w)`.
//! Finally, for every pair `u, v` in the same set of `U`, `u` stores a
//! routing *sequence* of at most `2⌈2/ε⌉` temporary targets along a shortest
//! `u`–`v` path; if the sequence does not end at `v` it ends at a hitting-set
//! vertex `w ∈ B(·, q̃)` and `u` additionally stores `v`'s label in `T(w)`.
//!
//! **Routing.** The sequence travels in the message header. The message hops
//! from temporary target to temporary target (ball hops via Lemma 2, edge
//! hops via a stored port); if the last target is a hitting-set vertex `w`
//! the remaining distance is covered on the tree `T(w)` using `v`'s tree
//! label. The traversed path has weight at most `(1+ε)·d(u, v)`.

use rand::Rng;

use routing_graph::{Graph, SearchScratch, VertexId, Weight};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_tree::{tree_route_step, TreeLabel, TreeScheme};
use routing_vicinity::{hitting_set_greedy, hitting_set_random, BallTable};

use crate::params::HittingStrategy;
use crate::seq::{sequence_words, HopKind, SeqEntry};
use crate::{BuildError, Params};

/// A stored routing sequence for one (source, destination) pair.
#[derive(Debug, Clone)]
struct StoredSeq {
    entries: Vec<SeqEntry>,
    /// When the last entry is a hitting-set vertex `w` (not the destination),
    /// the destination's label in `T(w)`.
    final_tree_label: Option<TreeLabel>,
}

impl StoredSeq {
    fn words(&self) -> usize {
        sequence_words(&self.entries)
            + self.final_tree_label.as_ref().map(TreeLabel::words).unwrap_or(0)
    }
}

/// The header carried by a message routed with the first technique.
#[derive(Debug, Clone)]
pub struct Technique1Header {
    seq: Vec<SeqEntry>,
    idx: usize,
    /// `(w, label of destination in T(w))` when the sequence ends at a
    /// hitting-set vertex.
    final_tree: Option<(VertexId, TreeLabel)>,
    /// True once the message switched to routing on `T(w)`.
    tree_mode: bool,
}

impl HeaderSize for Technique1Header {
    fn words(&self) -> usize {
        sequence_words(&self.seq)
            + 1
            + self.final_tree.as_ref().map(|(_, l)| 1 + l.words()).unwrap_or(0)
    }
}

/// The flat per-source sequence store: one CSR slot per source vertex with
/// id-sorted destination keys, in the PR 4 `BallTable`/`FlatBunches` style.
/// Replaces the former `HashMap<(u, v), StoredSeq>` — a lookup is one
/// binary search over the source's contiguous slot, and the resident
/// memory is three flat arrays instead of a hash table of tuple keys.
#[derive(Debug, Clone)]
struct SeqStore {
    /// `offsets[u] .. offsets[u + 1]` delimits `u`'s slot in `dests` /
    /// `stored` (empty for vertices whose partition set is a singleton).
    offsets: Vec<usize>,
    /// Destination keys, id-sorted within each source slot.
    dests: Vec<VertexId>,
    /// `stored[i]` is the sequence for destination `dests[i]`.
    stored: Vec<StoredSeq>,
}

impl SeqStore {
    /// The stored sequence at `u` for `v`, if the pair shares a set.
    fn get(&self, u: VertexId, v: VertexId) -> Option<&StoredSeq> {
        let lo = self.offsets[u.index()];
        let hi = self.offsets[u.index() + 1];
        self.dests[lo..hi].binary_search(&v).ok().map(|i| &self.stored[lo + i])
    }
}

/// The Lemma 7 router. It is designed to be *embedded* in the full schemes:
/// the schemes own the shared [`BallTable`] and pass it to
/// [`Technique1Router::step`], while the router owns the hitting-set trees
/// and the per-pair sequences.
#[derive(Debug, Clone)]
pub struct Technique1Router {
    set_of: Vec<u32>,
    /// The hitting set, id-sorted; `trees[i]` is the global tree of
    /// `hitting[i]`, so one binary search resolves both membership and
    /// tree lookups.
    hitting: Vec<VertexId>,
    trees: Vec<TreeScheme>,
    seqs: SeqStore,
    /// Per-vertex word count of the stored sequences (precomputed).
    seq_words: Vec<usize>,
    b: usize,
}

impl Technique1Router {
    /// Builds the router for the partition described by `set_of` (the set
    /// index of every vertex). Sequences are stored for every ordered pair of
    /// distinct vertices sharing a set index.
    ///
    /// `balls` must have been built with the `q̃` the scheme uses; the same
    /// table must later be passed to [`Technique1Router::step`].
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is disconnected (global shortest-path
    /// trees must span `V`) or the parameters are invalid.
    pub fn build<R: Rng>(
        g: &Graph,
        balls: &BallTable,
        set_of: Vec<u32>,
        params: &Params,
        rng: &mut R,
    ) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        if !g.is_connected() {
            return Err(BuildError::Disconnected);
        }
        assert_eq!(set_of.len(), g.n(), "set_of must cover every vertex");
        let b = params.b_lemma7();
        let _span = routing_obs::span("technique1");

        // Lemma 5: a hitting set for every vicinity.
        let span_hitting = routing_obs::span("hitting-set");
        let ball_sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect();
        let hitting = match params.hitting {
            HittingStrategy::Greedy => hitting_set_greedy(g.n(), &ball_sets),
            HittingStrategy::Random => hitting_set_random(g.n(), &ball_sets, rng),
        };
        drop(span_hitting);

        // Global shortest-path trees for the hitting set: one full Dijkstra
        // plus a heavy-path decomposition per hitting-set vertex, all
        // independent — fan them out, one reused search workspace per worker.
        // These searches stay *full*: every tree must span V.
        let span_trees = routing_obs::span("global-trees");
        let trees: Vec<TreeScheme> = routing_par::par_map_scratch(
            hitting.len(),
            || SearchScratch::for_graph(g),
            |scratch, i| {
                scratch.dijkstra_into(g, hitting[i]);
                TreeScheme::from_scratch(g, scratch)
                    .map_err(|e| BuildError::TooSmall { what: e.to_string() })
            },
        )
        .into_iter()
        .collect::<Result<_, _>>()?;
        drop(span_trees);
        let _span_seqs = routing_obs::span("sequences");

        // Group vertices by set: sort once by (set, id) and take the
        // consecutive runs — each run is id-sorted, which is what makes the
        // per-source destination slots of the flat store binary-searchable.
        let mut by_set: Vec<VertexId> = g.vertices().collect();
        by_set.sort_unstable_by_key(|&v| (set_of[v.index()], v));

        // Sequences for every same-set ordered pair. Each source vertex `u`
        // needs one *target-bounded* search — it only ever reads shortest
        // paths to its own set members, and every vertex those paths visit
        // is an ancestor of a member, settled before it — so the search
        // stops at the member settled last instead of paying for the whole
        // graph. The per-source work items run in parallel; the merge below
        // fills the CSR slots in vertex order, making the result
        // independent of the thread count.
        let mut sources: Vec<(VertexId, &[VertexId])> = Vec::new();
        let mut run_start = 0usize;
        for i in 1..=by_set.len() {
            let run_ends = i == by_set.len()
                || set_of[by_set[i].index()] != set_of[by_set[run_start].index()];
            if !run_ends {
                continue;
            }
            let members = &by_set[run_start..i];
            if members.len() >= 2 {
                for &u in members {
                    sources.push((u, members));
                }
            }
            run_start = i;
        }
        sources.sort_unstable_by_key(|&(u, _)| u);

        // CSR offsets for the flat store: one destination slot per same-set
        // ordered pair, keyed in member (= id) order.
        let mut offsets = vec![0usize; g.n() + 1];
        for &(u, members) in &sources {
            offsets[u.index() + 1] = members.len() - 1;
        }
        for i in 0..g.n() {
            offsets[i + 1] += offsets[i];
        }

        let per_source: Vec<Vec<StoredSeq>> = routing_par::par_map_scratch(
            sources.len(),
            || SearchScratch::for_graph(g),
            |scratch, i| {
                let (u, members) = sources[i];
                let _frontier = routing_obs::span("settled-frontier");
                scratch.dijkstra_targets_into(g, u, members);
                routing_obs::counters::BUILD_EARLY_EXIT_SEARCHES.inc();
                let out = members
                    .iter()
                    .filter(|&&v| v != u)
                    .map(|&v| build_sequence(g, balls, scratch, u, v, b, &hitting, &trees))
                    .collect();
                routing_obs::counters::BUILD_SETTLED_VERTICES.add(scratch.order().len() as u64);
                out
            },
        );
        // One pass fills the flat store's slots directly *and* accumulates
        // the word accounting: sources are sorted by vertex id, so pushing
        // in iteration order lands every sequence exactly at its CSR slot.
        let mut dests = Vec::with_capacity(offsets[g.n()]);
        let mut stored = Vec::with_capacity(offsets[g.n()]);
        let mut seq_words = vec![0usize; g.n()];
        for (&(u, members), stored_list) in sources.iter().zip(per_source) {
            debug_assert_eq!(stored.len(), offsets[u.index()]);
            for (&v, s) in members.iter().filter(|&&v| v != u).zip(stored_list) {
                seq_words[u.index()] += 1 + s.words();
                dests.push(v);
                stored.push(s);
            }
        }
        let seqs = SeqStore { offsets, dests, stored };

        Ok(Technique1Router { set_of, hitting, trees, seqs, seq_words, b })
    }

    /// The hitting set `H` used by the router.
    pub fn hitting_set(&self) -> &[VertexId] {
        &self.hitting
    }

    /// Lemma 7's round budget `b = ⌈2/ε⌉`.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The set index of `v` in the partition the router was built with.
    pub fn set_of(&self, v: VertexId) -> u32 {
        self.set_of[v.index()]
    }

    /// True if a sequence is stored at `u` for `v` (i.e. they share a set).
    pub fn has_sequence(&self, u: VertexId, v: VertexId) -> bool {
        self.seqs.get(u, v).is_some()
    }

    /// The global tree of hitting-set vertex `w`, if `w ∈ H` — one binary
    /// search over the sorted hitting vec, no hash table.
    fn tree_of(&self, w: VertexId) -> Option<&TreeScheme> {
        self.hitting.binary_search(&w).ok().map(|i| &self.trees[i])
    }

    /// Builds the header a message needs when it starts the Lemma 7 phase at
    /// `at` towards `dest`. `at` and `dest` must share a set of the
    /// partition.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::MissingInformation`] if `at` stores no sequence
    /// for `dest` (the pair is not in the same set).
    pub fn start(&self, at: VertexId, dest: VertexId) -> Result<Technique1Header, RouteError> {
        if at == dest {
            return Ok(Technique1Header { seq: Vec::new(), idx: 0, final_tree: None, tree_mode: false });
        }
        let stored = self.seqs.get(at, dest).ok_or_else(|| RouteError::MissingInformation {
            at,
            what: format!("no Lemma 7 sequence for destination {dest} (different partition set)"),
        })?;
        let final_tree = stored.final_tree_label.as_ref().map(|label| {
            let w = stored.entries.last().expect("sequence is non-empty").vertex;
            (w, label.clone())
        });
        let tree_mode = stored.entries.len() == 1 && final_tree.is_some();
        Ok(Technique1Header { seq: stored.entries.clone(), idx: 0, final_tree, tree_mode })
    }

    /// One local routing decision of the Lemma 7 phase at vertex `at`.
    ///
    /// `balls` must be the same table the router was built with.
    ///
    /// # Errors
    ///
    /// Returns an error if required local information is missing, which
    /// indicates a preprocessing bug rather than a routable situation.
    pub fn step(
        &self,
        at: VertexId,
        header: &mut Technique1Header,
        dest: VertexId,
        balls: &BallTable,
    ) -> Result<Decision, RouteError> {
        if at == dest {
            return Ok(Decision::Deliver);
        }
        if header.tree_mode {
            return self.tree_step(at, header);
        }
        if header.seq.is_empty() {
            return Err(RouteError::MissingInformation {
                at,
                what: "empty Lemma 7 sequence for a non-trivial destination".into(),
            });
        }
        // Advance past targets we are standing on.
        while header.seq[header.idx].vertex == at {
            if header.idx + 1 < header.seq.len() {
                header.idx += 1;
                if header.idx + 1 == header.seq.len() && header.final_tree.is_some() {
                    // The next (= last) target is the hitting-set vertex: the
                    // paper routes the rest on T(w) starting here.
                    header.tree_mode = true;
                    return self.tree_step(at, header);
                }
            } else {
                // Standing on the last target which is not the destination
                // and not a hitting-set final vertex: preprocessing bug.
                return Err(RouteError::MissingInformation {
                    at,
                    what: "reached end of Lemma 7 sequence before the destination".into(),
                });
            }
        }
        if header.idx + 1 == header.seq.len() && header.final_tree.is_some() {
            header.tree_mode = true;
            return self.tree_step(at, header);
        }
        let target = header.seq[header.idx];
        match target.hop {
            HopKind::Edge(port) => Ok(Decision::Forward(port)),
            HopKind::Ball => balls
                .first_port(at, target.vertex)
                .map(Decision::Forward)
                .ok_or_else(|| RouteError::MissingInformation {
                    at,
                    what: format!("temporary target {} is outside B({at}, q̃)", target.vertex),
                }),
        }
    }

    fn tree_step(&self, at: VertexId, header: &Technique1Header) -> Result<Decision, RouteError> {
        let (w, label) = header.final_tree.as_ref().ok_or_else(|| RouteError::MissingInformation {
            at,
            what: "tree mode without a final tree label".into(),
        })?;
        let tree = self.tree_of(*w).ok_or_else(|| RouteError::MissingInformation {
            at,
            what: format!("no global tree stored for hitting-set vertex {w}"),
        })?;
        let node = tree.node_info(at).ok_or_else(|| RouteError::MissingInformation {
            at,
            what: format!("vertex has no routing information for T({w})"),
        })?;
        tree_route_step(node, label).map_err(|e| match e {
            RouteError::MissingInformation { what, .. } => RouteError::MissingInformation { at, what },
            other => other,
        })
    }

    /// The words Lemma 7 charges to `v`: tree-routing information for every
    /// hitting-set tree plus the stored sequences. (The shared ball table is
    /// accounted by the embedding scheme.)
    pub fn table_words(&self, v: VertexId) -> usize {
        let tree_words: usize = self.trees.iter().map(|t| t.table_words(v)).sum();
        tree_words + self.seq_words[v.index()]
    }
}

/// Computes the Lemma 7 sequence stored at `u` for `v`. `spt_u` holds the
/// result of a target-bounded Dijkstra from `u`
/// ([`SearchScratch::dijkstra_targets_into`]) whose targets included `v`.
/// Every vertex this walk probes lies on the tree path to `v` — an
/// ancestor of `v`, settled before it — so the probes stay inside the
/// settled frontier; the `ensure_settled` below is the defensive fallback
/// that resumes the search should `v` itself ever not be covered.
///
/// `hitting` is the id-sorted hitting set; `trees[i]` is the global tree
/// of `hitting[i]`.
#[allow(clippy::too_many_arguments)]
fn build_sequence(
    g: &Graph,
    balls: &BallTable,
    spt_u: &mut SearchScratch,
    _u: VertexId,
    v: VertexId,
    b: usize,
    hitting: &[VertexId],
    trees: &[TreeScheme],
) -> StoredSeq {
    if !spt_u.is_settled(v) && spt_u.ensure_settled(g, v) {
        routing_obs::counters::BUILD_FRONTIER_RESUMES.inc();
    }
    let path = spt_u.path_to(v).expect("graph is connected");
    let d_uv = spt_u.dist(v).expect("graph is connected");
    let mut entries: Vec<SeqEntry> = Vec::new();
    let mut pos = 0usize;
    loop {
        let xi = path[pos];
        if balls.contains(xi, v) {
            entries.push(SeqEntry::ball(v));
            return StoredSeq { entries, final_tree_label: None };
        }
        // First vertex on the remaining path outside B(xi, q̃); it exists
        // because v itself is outside.
        let mut j = pos + 1;
        while balls.contains(xi, path[j]) {
            j += 1;
        }
        let zi = path[j];
        let yi = path[j - 1];
        if zi == v {
            if yi != xi {
                entries.push(SeqEntry::ball(yi));
            }
            let port = g.port_to(yi, v).expect("consecutive path vertices are adjacent");
            entries.push(SeqEntry::edge(v, port));
            return StoredSeq { entries, final_tree_label: None };
        }
        let d_xi_zi: Weight = spt_u.dist(zi).expect("on path") - spt_u.dist(xi).expect("on path");
        if (d_xi_zi as u128) * (b as u128) < d_uv as u128 {
            // Progress below the threshold s = d(u,v)/b: finish via a
            // hitting-set vertex of B(xi, q̃).
            let w = balls
                .ball(xi)
                .members()
                .iter()
                .map(|&(m, _)| m)
                .find(|m| hitting.binary_search(m).is_ok())
                .expect("hitting set hits every vicinity");
            let tree_idx =
                hitting.binary_search(&w).expect("w was found in the hitting set above");
            let label = trees[tree_idx]
                .label(v)
                .expect("global tree spans every vertex")
                .clone();
            entries.push(SeqEntry::ball(w));
            return StoredSeq { entries, final_tree_label: Some(label) };
        }
        if yi != xi {
            entries.push(SeqEntry::ball(yi));
        }
        let port = g.port_to(yi, zi).expect("consecutive path vertices are adjacent");
        entries.push(SeqEntry::edge(zi, port));
        pos = j;
    }
}

/// The standalone Lemma 7 routing scheme: routes between any two vertices of
/// the same partition set with stretch `(1+ε)`. Destinations in a different
/// set are rejected (the full schemes of Section 4 are what extends this to
/// all pairs).
#[derive(Debug, Clone)]
pub struct Technique1Scheme {
    n: usize,
    epsilon: f64,
    balls: BallTable,
    router: Technique1Router,
}

impl Technique1Scheme {
    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Builds the standalone scheme for a given partition (`set_of[v]` is the
    /// set index of `v`) using balls of size `q̃ = scaled(q)` where `q` is the
    /// number of distinct sets.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the underlying router.
    pub fn build<R: Rng>(
        g: &Graph,
        set_of: Vec<u32>,
        params: &Params,
        rng: &mut R,
    ) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        let q = set_of.iter().copied().max().map(|m| m as usize + 1).unwrap_or(1);
        let ell = params.scaled(q, g.n());
        let balls = BallTable::build(g, ell);
        let router = Technique1Router::build(g, &balls, set_of, params, rng)?;
        Ok(Technique1Scheme { n: g.n(), epsilon: params.epsilon, balls, router })
    }

    /// The underlying router (for inspection in tests and experiments).
    pub fn router(&self) -> &Technique1Router {
        &self.router
    }

    /// The shared ball table.
    pub fn balls(&self) -> &BallTable {
        &self.balls
    }
}

/// Label of a destination for the standalone Lemma 7 scheme: the vertex and
/// its partition set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Technique1Label {
    /// The destination vertex.
    pub vertex: VertexId,
    /// Its set in the partition.
    pub set: u32,
}

impl RoutingScheme for Technique1Scheme {
    type Label = Technique1Label;
    type Header = Technique1Header;

    fn name(&self) -> &str {
        "lemma7"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> Technique1Label {
        Technique1Label { vertex: v, set: self.router.set_of(v) }
    }

    fn init_header(
        &self,
        source: VertexId,
        dest: &Technique1Label,
    ) -> Result<Technique1Header, RouteError> {
        if source != dest.vertex && self.router.set_of(source) != dest.set {
            return Err(RouteError::BadLabel {
                what: format!(
                    "lemma 7 routes only within a partition set ({source} is in set {}, {} in set {})",
                    self.router.set_of(source),
                    dest.vertex,
                    dest.set
                ),
            });
        }
        self.router.start(source, dest.vertex)
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut Technique1Header,
        dest: &Technique1Label,
    ) -> Result<Decision, RouteError> {
        self.router.step(at, header, dest.vertex, &self.balls)
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.balls.words_at(v) + self.router.table_words(v)
    }

    fn label_words(&self, _v: VertexId) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn partition_mod(n: usize, q: u32) -> Vec<u32> {
        (0..n).map(|v| (v as u32) % q).collect()
    }

    fn check_intra_set_stretch(g: &Graph, set_of: Vec<u32>, epsilon: f64) {
        let mut rng = StdRng::seed_from_u64(99);
        let params = Params::with_epsilon(epsilon);
        let scheme = Technique1Scheme::build(g, set_of.clone(), &params, &mut rng).unwrap();
        let exact = DistanceMatrix::new(g);
        let mut checked = 0usize;
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v || set_of[u.index()] != set_of[v.index()] {
                    continue;
                }
                let out = simulate(g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                let bound = (1.0 + epsilon) * d as f64 + 1e-9;
                assert!(
                    (out.weight as f64) <= bound,
                    "stretch violated for {u}->{v}: routed {} vs (1+{epsilon})*{d}",
                    out.weight
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn lemma7_stretch_on_unweighted_random_graph() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::erdos_renyi(90, 0.06, WeightModel::Unit, &mut rng);
        check_intra_set_stretch(&g, partition_mod(90, 6), 0.5);
    }

    #[test]
    fn lemma7_stretch_on_weighted_graph() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::erdos_renyi(70, 0.07, WeightModel::Uniform { lo: 1, hi: 10 }, &mut rng);
        check_intra_set_stretch(&g, partition_mod(70, 5), 0.25);
    }

    #[test]
    fn lemma7_stretch_on_grid() {
        // Large-diameter graph: sequences actually use several rounds.
        let g = generators::grid(8, 8);
        check_intra_set_stretch(&g, partition_mod(64, 4), 1.0);
    }

    #[test]
    fn lemma7_rejects_cross_set_destinations() {
        let g = generators::cycle(20);
        let mut rng = StdRng::seed_from_u64(1);
        let scheme =
            Technique1Scheme::build(&g, partition_mod(20, 4), &Params::default(), &mut rng).unwrap();
        let err = simulate(&g, &scheme, VertexId(0), VertexId(1)).unwrap_err();
        assert!(matches!(err, RouteError::BadLabel { .. }));
        // Same set works (0 and 4 are both in set 0).
        let out = simulate(&g, &scheme, VertexId(0), VertexId(4)).unwrap();
        assert_eq!(out.destination(), VertexId(4));
    }

    #[test]
    fn lemma7_self_route() {
        let g = generators::path(10);
        let mut rng = StdRng::seed_from_u64(1);
        let scheme =
            Technique1Scheme::build(&g, partition_mod(10, 2), &Params::default(), &mut rng).unwrap();
        let out = simulate(&g, &scheme, VertexId(3), VertexId(3)).unwrap();
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn lemma7_disconnected_graph_is_rejected() {
        let mut b = routing_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let err = Technique1Scheme::build(&g, partition_mod(4, 2), &Params::default(), &mut rng)
            .unwrap_err();
        assert_eq!(err, BuildError::Disconnected);
    }

    #[test]
    fn lemma7_bad_epsilon_is_rejected() {
        let g = generators::path(6);
        let mut rng = StdRng::seed_from_u64(1);
        let err = Technique1Scheme::build(
            &g,
            partition_mod(6, 2),
            &Params::with_epsilon(0.0),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, BuildError::BadParameter { .. }));
    }

    #[test]
    fn greedy_and_random_hitting_sets_both_work() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = generators::erdos_renyi(60, 0.08, WeightModel::Unit, &mut rng);
        for strategy in [HittingStrategy::Greedy, HittingStrategy::Random] {
            let params = Params { hitting: strategy, ..Params::default() };
            let scheme =
                Technique1Scheme::build(&g, partition_mod(60, 5), &params, &mut rng).unwrap();
            assert!(!scheme.router().hitting_set().is_empty());
            let out = simulate(&g, &scheme, VertexId(0), VertexId(55)).unwrap();
            assert_eq!(out.destination(), VertexId(55));
        }
    }

    #[test]
    fn header_and_table_sizes_are_reported() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(50, 0.1, WeightModel::Unit, &mut rng);
        let params = Params::with_epsilon(0.5);
        let scheme = Technique1Scheme::build(&g, partition_mod(50, 5), &params, &mut rng).unwrap();
        assert_eq!(RoutingScheme::n(&scheme), 50);
        assert!(scheme.name().contains("lemma7"));
        assert_eq!(scheme.router().b(), 4);
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            assert_eq!(scheme.label_words(v), 2);
        }
        // Header length is bounded by the sequence budget plus the tree label.
        let out = simulate(&g, &scheme, VertexId(0), VertexId(45)).unwrap();
        assert!(out.max_header_words <= 2 * (2 * scheme.router().b() + 2) + 64);
        assert!(scheme.router().has_sequence(VertexId(0), VertexId(5)));
        assert!(!scheme.router().has_sequence(VertexId(0), VertexId(1)));
        assert_eq!(scheme.balls().len(), 50);
    }
}
