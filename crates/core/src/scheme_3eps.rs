//! The warm-up `(3+ε)`-stretch scheme of Section 4.
//!
//! Let `q = ⌈√n⌉`. A Lemma 6 coloring with `q` colors of the vicinities
//! `B(u, q̃)` induces a partition `U` of `V` into `q` classes of `Õ(√n)`
//! vertices, over which Lemma 7 routes with stretch `(1+ε)`. Every vertex
//! additionally remembers, for each color, one vertex of that color inside
//! its own vicinity.
//!
//! Routing from `u` to `v`: if `v ∈ B(u, q̃)` route exactly with Lemma 2;
//! otherwise walk (exactly) to the remembered vertex `w` of color `c(v)` —
//! which satisfies `d(u, w) ≤ d(u, v)` — and from `w` use Lemma 7 to reach
//! `v` with stretch `(1+ε)`. The total is at most `(3+2ε)·d(u, v)`.

use rand::Rng;

use routing_graph::{Graph, VertexId};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_vicinity::{BallTable, Coloring};

use crate::technique1::{Technique1Header, Technique1Router};
use crate::{BuildError, Params};

/// Routing phase carried in the message header.
#[derive(Debug, Clone)]
enum Phase {
    /// The destination is in the source's vicinity: pure Lemma 2 forwarding.
    Direct,
    /// Walking towards the color representative `w` of the destination's
    /// color.
    ToRep(VertexId),
    /// Lemma 7 routing from the representative to the destination.
    Intra(Technique1Header),
}

/// Header of the warm-up scheme.
#[derive(Debug, Clone)]
pub struct Scheme3Header {
    phase: Phase,
}

impl HeaderSize for Scheme3Header {
    fn words(&self) -> usize {
        match &self.phase {
            Phase::Direct => 1,
            Phase::ToRep(_) => 2,
            Phase::Intra(h) => 1 + h.words(),
        }
    }
}

/// Label of the warm-up scheme: the destination and its color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme3Label {
    /// The destination vertex.
    pub vertex: VertexId,
    /// The destination's color `c(v)`.
    pub color: u32,
}

/// The `(3+ε)`-stretch scheme with `Õ((1/ε)√n)`-word tables.
#[derive(Debug, Clone)]
pub struct SchemeThreePlusEps {
    n: usize,
    epsilon: f64,
    q: u32,
    balls: BallTable,
    router: Technique1Router,
    color_of: Vec<u32>,
    /// `color_rep[u][i]` = a vertex of color `i` inside `B(u, q̃)`.
    color_rep: Vec<Vec<VertexId>>,
}

impl SchemeThreePlusEps {
    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Preprocesses the scheme for `g`.
    ///
    /// # Errors
    ///
    /// Fails on disconnected graphs, invalid parameters, or if the Lemma 6
    /// coloring cannot be constructed (graph too small for `q` colors).
    pub fn build<R: Rng>(g: &Graph, params: &Params, rng: &mut R) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        if !g.is_connected() {
            return Err(BuildError::Disconnected);
        }
        let n = g.n();
        let q = (n as f64).sqrt().ceil().max(1.0) as u32;
        let ell = params.scaled(q as usize, n);
        let balls = BallTable::build(g, ell);

        let span_coloring = routing_obs::span("coloring");
        let ball_sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect();
        let coloring = Coloring::build_for_sets(n, q, &ball_sets, params.coloring_retries, rng)?;
        let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();
        drop(span_coloring);

        let span_reps = routing_obs::span("color-reps");
        let color_rep = build_color_reps(g, &balls, &color_of, q);
        drop(span_reps);
        let router = Technique1Router::build(g, &balls, color_of.clone(), params, rng)?;

        Ok(SchemeThreePlusEps {
            n,
            epsilon: params.epsilon,
            q,
            balls,
            router,
            color_of,
            color_rep,
        })
    }

    /// The number of colors `q = ⌈√n⌉`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// The color of vertex `v`.
    pub fn color(&self, v: VertexId) -> u32 {
        self.color_of[v.index()]
    }
}

/// Builds, for every vertex and every color, the closest vicinity member of
/// that color (shared by several schemes).
pub(crate) fn build_color_reps(
    g: &Graph,
    balls: &BallTable,
    color_of: &[u32],
    q: u32,
) -> Vec<Vec<VertexId>> {
    g.vertices()
        .map(|u| {
            let mut reps = vec![u; q as usize];
            let mut found = vec![false; q as usize];
            for &(v, _) in balls.ball(u).members() {
                let c = color_of[v.index()] as usize;
                if !found[c] {
                    found[c] = true;
                    reps[c] = v;
                }
            }
            // Colors missing from the vicinity (possible at tiny scales when
            // the coloring repair had to give up on balance) fall back to the
            // vertex itself; routing then starts Lemma 7 directly at `u`,
            // which is still correct, merely without the paper's guarantee
            // that `d(u, w) <= d(u, v)`.
            reps
        })
        .collect()
}

impl RoutingScheme for SchemeThreePlusEps {
    type Label = Scheme3Label;
    type Header = Scheme3Header;

    fn name(&self) -> &str {
        "warmup"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> Scheme3Label {
        Scheme3Label { vertex: v, color: self.color_of[v.index()] }
    }

    fn init_header(&self, source: VertexId, dest: &Scheme3Label) -> Result<Scheme3Header, RouteError> {
        if source == dest.vertex || self.balls.contains(source, dest.vertex) {
            routing_obs::counters::ROUTING_PHASE_DIRECT.inc();
            return Ok(Scheme3Header { phase: Phase::Direct });
        }
        let rep = self.color_rep[source.index()][dest.color as usize];
        if rep == source {
            let h = self.router.start(source, dest.vertex)?;
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(Scheme3Header { phase: Phase::Intra(h) });
        }
        routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc();
        Ok(Scheme3Header { phase: Phase::ToRep(rep) })
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut Scheme3Header,
        dest: &Scheme3Label,
    ) -> Result<Decision, RouteError> {
        if at == dest.vertex {
            return Ok(Decision::Deliver);
        }
        loop {
            match &mut header.phase {
                Phase::Direct => {
                    return self
                        .balls
                        .first_port(at, dest.vertex)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("{} left the vicinity during direct routing", dest.vertex),
                        });
                }
                Phase::ToRep(rep) => {
                    if at == *rep {
                        let h = self.router.start(at, dest.vertex)?;
                        header.phase = Phase::Intra(h);
                        continue;
                    }
                    let rep = *rep;
                    return self
                        .balls
                        .first_port(at, rep)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("representative {rep} left the vicinity"),
                        });
                }
                Phase::Intra(h) => return self.router.step(at, h, dest.vertex, &self.balls),
            }
        }
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.balls.words_at(v) + self.router.table_words(v) + self.q as usize
    }

    fn label_words(&self, _v: VertexId) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn check_all_pairs(g: &Graph, epsilon: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = Params::with_epsilon(epsilon);
        let scheme = SchemeThreePlusEps::build(g, &params, &mut rng).unwrap();
        let exact = DistanceMatrix::new(g);
        let mut worst: f64 = 1.0;
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let out = simulate(g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                let stretch = out.weight as f64 / d as f64;
                worst = worst.max(stretch);
                assert!(
                    stretch <= 3.0 + 2.0 * epsilon + 1e-9,
                    "stretch bound violated for {u}->{v}: {stretch}"
                );
            }
        }
        worst
    }

    #[test]
    fn warmup_meets_bound_on_unweighted_graph() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::erdos_renyi(80, 0.06, WeightModel::Unit, &mut rng);
        let worst = check_all_pairs(&g, 0.5, 1);
        assert!(worst >= 1.0);
    }

    #[test]
    fn warmup_meets_bound_on_weighted_graph() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = generators::erdos_renyi(60, 0.08, WeightModel::Uniform { lo: 1, hi: 20 }, &mut rng);
        check_all_pairs(&g, 0.25, 2);
    }

    #[test]
    fn warmup_on_grid() {
        let g = generators::grid(7, 7);
        check_all_pairs(&g, 1.0, 3);
    }

    #[test]
    fn warmup_reports_metadata() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = generators::cycle(36);
        let scheme = SchemeThreePlusEps::build(&g, &Params::default(), &mut rng).unwrap();
        assert_eq!(scheme.q(), 6);
        assert_eq!(RoutingScheme::n(&scheme), 36);
        assert_eq!(scheme.name(), "warmup");
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            assert_eq!(scheme.label_words(v), 2);
            assert!(scheme.color(v) < 6);
            assert_eq!(scheme.label_of(v).color, scheme.color(v));
        }
    }

    #[test]
    fn warmup_rejects_disconnected_graphs() {
        let mut b = routing_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let err = SchemeThreePlusEps::build(&g, &Params::default(), &mut rng).unwrap_err();
        assert_eq!(err, BuildError::Disconnected);
    }
}
