//! Theorem 11: a `(5+ε)`-stretch labeled routing scheme for weighted graphs
//! with `Õ((1/ε)·n^{1/3}·log D)`-word routing tables — the paper's headline
//! result, breaking the `√n` space barrier for stretch below 7.
//!
//! Ingredients (all with `q = ⌈n^{1/3}⌉`):
//!
//! * vicinities `B(u, q̃)` (Lemma 2);
//! * a landmark set `A` of size `Õ(n^{2/3})` with clusters of size
//!   `O(n^{1/3})` (Lemma 4) and the cluster trees `T_{C_A(w)}`: every vertex
//!   `w` stores the tree labels of its own cluster members and the tree
//!   routing information of the clusters containing it;
//! * a Lemma 6 coloring inducing the source partition `U`, an arbitrary
//!   balanced partition `W` of `A`, and the Lemma 8 router between them;
//! * per color, one representative inside each vicinity.
//!
//! Routing from `u` to `v`: vicinity and cluster hits are exact. Otherwise
//! the message walks (exactly) to the representative `w` of color
//! `α(p_A(v))`, uses Lemma 8 to reach `p_A(v)` with stretch `(1+ε)`, steps
//! over the first edge `(p_A(v), z)` of a shortest path to `v` (stored in
//! `v`'s label) and finishes on the cluster tree of `z`, which contains `v`.
//! The total is at most `(5+3ε)·d(u, v)`.

use rand::Rng;

use routing_graph::{Graph, Port, VertexId};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_tree::{tree_route_step, TreeLabel, TreeScheme};
use routing_vicinity::{all_clusters, bunches, sample_centers_bounded, BallTable, Coloring, Landmarks};

use crate::scheme_3eps::build_color_reps;
use crate::technique2::{Technique2Header, Technique2Router};
use crate::{BuildError, Params};

/// Label of a destination under Theorem 11.
#[derive(Debug, Clone)]
pub struct Scheme5Label {
    /// The destination vertex `v`.
    pub vertex: VertexId,
    /// Its nearest landmark `p_A(v)`.
    pub p_a: VertexId,
    /// The index `α(p_A(v))` of the destination set of `W` containing the
    /// landmark.
    pub alpha: u32,
    /// The second endpoint `z` of the first edge on a shortest path from
    /// `p_A(v)` to `v`, together with the port of that edge at `p_A(v)`.
    /// `None` when `v` is itself a landmark.
    pub first_edge: Option<(VertexId, Port)>,
}

impl Scheme5Label {
    /// Size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        3 + if self.first_edge.is_some() { 2 } else { 0 }
    }
}

/// Routing phase carried in the header.
#[derive(Debug, Clone)]
enum Phase {
    /// Destination inside the source's vicinity.
    Direct,
    /// Destination inside the source's cluster; route on that cluster tree.
    ClusterTree {
        root: VertexId,
        label: TreeLabel,
    },
    /// Walking to the color representative of `α(p_A(v))`.
    ToRep(VertexId),
    /// Lemma 8 routing from the representative to `p_A(v)`.
    ToLandmark(Technique2Header),
    /// The message is at `p_A(v)` and is about to cross the stored first
    /// edge towards `z`.
    CrossFirstEdge,
}

/// Header of the Theorem 11 scheme.
#[derive(Debug, Clone)]
pub struct Scheme5Header {
    phase: Phase,
}

impl HeaderSize for Scheme5Header {
    fn words(&self) -> usize {
        match &self.phase {
            Phase::Direct | Phase::CrossFirstEdge => 1,
            Phase::ToRep(_) => 2,
            Phase::ClusterTree { label, .. } => 2 + label.words(),
            Phase::ToLandmark(h) => 1 + h.words(),
        }
    }
}

/// The Theorem 11 `(5+ε)`-stretch routing scheme.
#[derive(Debug, Clone)]
pub struct SchemeFivePlusEps {
    n: usize,
    epsilon: f64,
    q: u32,
    balls: BallTable,
    landmarks: Landmarks,
    cluster_trees: Vec<TreeScheme>,
    bunch_of: Vec<Vec<(VertexId, routing_graph::Weight)>>,
    /// `α(a)` for every landmark `a`: its set in the destination partition.
    // lint:allow(det-hash-iter): keyed lookup at query time; never iterated
    alpha_of: std::collections::HashMap<VertexId, u32>,
    color_of: Vec<u32>,
    color_rep: Vec<Vec<VertexId>>,
    router: Technique2Router,
    /// Port at `p_A(v)` of the first edge towards `v`, per vertex `v`.
    first_edge: Vec<Option<(VertexId, Port)>>,
}

impl SchemeFivePlusEps {
    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Preprocesses the scheme for a connected weighted graph `g`.
    ///
    /// # Errors
    ///
    /// Fails for disconnected graphs, invalid parameters, or when the Lemma 6
    /// coloring cannot be built.
    pub fn build<R: Rng>(g: &Graph, params: &Params, rng: &mut R) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        if !g.is_connected() {
            return Err(BuildError::Disconnected);
        }
        let n = g.n();
        let q = (n as f64).powf(1.0 / 3.0).ceil().max(1.0) as u32;
        let ell = params.scaled(q as usize, n);
        let balls = BallTable::build(g, ell);

        let s = ((params.landmark_scale * (n as f64).powf(2.0 / 3.0)).ceil() as usize).clamp(1, n);
        let landmarks = sample_centers_bounded(g, s, rng);
        let clusters = all_clusters(g, &landmarks);
        let bunch_of = bunches(g, &clusters);
        let span_ct = routing_obs::span("cluster-trees");
        let cluster_trees: Vec<TreeScheme> = routing_par::par_map(&clusters, |tree| {
            TreeScheme::from_restricted(g, tree)
                .map_err(|e| BuildError::TooSmall { what: e.to_string() })
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        drop(span_ct);

        // First edge (p_A(v), z) of a shortest path from the landmark to v.
        // One Dijkstra per landmark, in parallel over per-worker search
        // workspaces; each landmark only claims the vertices it is the
        // nearest landmark of, so the merged writes are disjoint and
        // order-independent.
        let span_fe = routing_obs::span("first-edge");
        // Invert the nearest-landmark assignment once so each landmark's
        // search can stop as soon as its claimed vertices are settled; the
        // claimed lists are built in vertex-id order, matching the old
        // full-scan filter order exactly.
        let mut landmark_idx = vec![u32::MAX; n];
        for (i, &a) in landmarks.members().iter().enumerate() {
            landmark_idx[a.index()] = i as u32;
        }
        let mut claimed: Vec<Vec<VertexId>> = vec![Vec::new(); landmarks.len()];
        for v in g.vertices() {
            if let Some(a) = landmarks.nearest(v) {
                if v != a {
                    claimed[landmark_idx[a.index()] as usize].push(v);
                }
            }
        }
        let per_landmark: Vec<Vec<(VertexId, (VertexId, Port))>> = routing_par::par_map_scratch(
            landmarks.len(),
            || routing_graph::SearchScratch::for_graph(g),
            |scratch, i| {
                let a = landmarks.members()[i];
                let _frontier = routing_obs::span("settled-frontier");
                scratch.dijkstra_targets_into(g, a, &claimed[i]);
                routing_obs::counters::BUILD_EARLY_EXIT_SEARCHES.inc();
                let out = claimed[i]
                    .iter()
                    .filter_map(|&v| {
                        scratch.first_hop(v).map(|z| {
                            let port = g.port_to(a, z).expect("first hop is a neighbour");
                            (v, (z, port))
                        })
                    })
                    .collect();
                routing_obs::counters::BUILD_SETTLED_VERTICES.add(scratch.order().len() as u64);
                out
            },
        );
        let mut first_edge: Vec<Option<(VertexId, Port)>> = vec![None; n];
        for (v, edge) in per_landmark.into_iter().flatten() {
            first_edge[v.index()] = Some(edge);
        }
        drop(span_fe);

        // Lemma 6 coloring for the source partition U.
        let span_coloring = routing_obs::span("coloring");
        let ball_sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect();
        let coloring = Coloring::build_for_sets(n, q, &ball_sets, params.coloring_retries, rng)?;
        let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();
        drop(span_coloring);
        let span_reps = routing_obs::span("color-reps");
        let color_rep = build_color_reps(g, &balls, &color_of, q);
        drop(span_reps);

        // Arbitrary balanced partition W of the landmark set A.
        let mut dest_partition: Vec<Vec<VertexId>> = vec![Vec::new(); q as usize];
        // lint:allow(det-hash-iter): filled in sorted landmark order, read by key; never iterated
        let mut alpha_of = std::collections::HashMap::new();
        for (i, &a) in landmarks.members().iter().enumerate() {
            let j = (i % q as usize) as u32;
            dest_partition[j as usize].push(a);
            alpha_of.insert(a, j);
        }
        let router = Technique2Router::build(g, &balls, color_of.clone(), &dest_partition, params)?;

        Ok(SchemeFivePlusEps {
            n,
            epsilon: params.epsilon,
            q,
            balls,
            landmarks,
            cluster_trees,
            bunch_of,
            alpha_of,
            color_of,
            color_rep,
            router,
            first_edge,
        })
    }

    /// The parameter `q = ⌈n^{1/3}⌉`.
    pub fn q(&self) -> u32 {
        self.q
    }

    /// The color (source-partition set) of vertex `v`.
    pub fn color(&self, v: VertexId) -> u32 {
        self.color_of[v.index()]
    }

    /// The landmark set `A`.
    pub fn landmarks(&self) -> &Landmarks {
        &self.landmarks
    }
}

impl RoutingScheme for SchemeFivePlusEps {
    type Label = Scheme5Label;
    type Header = Scheme5Header;

    fn name(&self) -> &str {
        "thm11"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> Scheme5Label {
        let p_a = self.landmarks.nearest(v).unwrap_or(v);
        let alpha = self.alpha_of.get(&p_a).copied().unwrap_or(0);
        Scheme5Label { vertex: v, p_a, alpha, first_edge: self.first_edge[v.index()] }
    }

    fn init_header(&self, source: VertexId, dest: &Scheme5Label) -> Result<Scheme5Header, RouteError> {
        let v = dest.vertex;
        if source == v || self.balls.contains(source, v) {
            routing_obs::counters::ROUTING_PHASE_DIRECT.inc();
            return Ok(Scheme5Header { phase: Phase::Direct });
        }
        // v in C_A(source): the label of v in the source's cluster tree is
        // stored at the source.
        if let Some(label) = self.cluster_trees[source.index()].label(v) {
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(Scheme5Header {
                phase: Phase::ClusterTree { root: source, label: label.clone() },
            });
        }
        let w = self.color_rep[source.index()][dest.alpha as usize];
        if w == source {
            let h = self.router.start(source, dest.p_a)?;
            routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc();
            return Ok(Scheme5Header { phase: Phase::ToLandmark(h) });
        }
        routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc();
        Ok(Scheme5Header { phase: Phase::ToRep(w) })
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut Scheme5Header,
        dest: &Scheme5Label,
    ) -> Result<Decision, RouteError> {
        let v = dest.vertex;
        if at == v {
            return Ok(Decision::Deliver);
        }
        loop {
            match &mut header.phase {
                Phase::Direct => {
                    return self
                        .balls
                        .first_port(at, v)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("{v} left the vicinity during direct routing"),
                        })
                }
                Phase::ClusterTree { root, label } => {
                    let node = self.cluster_trees[root.index()].node_info(at).ok_or_else(|| {
                        RouteError::MissingInformation {
                            at,
                            what: format!("no cluster-tree information for T_C({root})"),
                        }
                    })?;
                    return tree_route_step(node, label).map_err(|e| match e {
                        RouteError::MissingInformation { what, .. } => {
                            RouteError::MissingInformation { at, what }
                        }
                        other => other,
                    });
                }
                Phase::ToRep(w) => {
                    if at == *w {
                        let h = self.router.start(at, dest.p_a)?;
                        header.phase = Phase::ToLandmark(h);
                        continue;
                    }
                    let w = *w;
                    return self
                        .balls
                        .first_port(at, w)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("representative {w} left the vicinity"),
                        });
                }
                Phase::ToLandmark(h) => {
                    if at == dest.p_a {
                        header.phase = Phase::CrossFirstEdge;
                        continue;
                    }
                    return self.router.step(at, h, dest.p_a, &self.balls);
                }
                Phase::CrossFirstEdge => {
                    // We are at p_A(v) (or just arrived at z after crossing).
                    if at == dest.p_a {
                        let (_, port) = dest.first_edge.ok_or_else(|| RouteError::BadLabel {
                            what: format!("label of {v} lacks the first edge at its landmark"),
                        })?;
                        return Ok(Decision::Forward(port));
                    }
                    // At z now: v is in C_A(z); finish on z's cluster tree.
                    let label = self.cluster_trees[at.index()].label(v).cloned().ok_or_else(
                        || RouteError::MissingInformation {
                            at,
                            what: format!("{v} is not in the cluster of {at}"),
                        },
                    )?;
                    header.phase = Phase::ClusterTree { root: at, label };
                    continue;
                }
            }
        }
    }

    fn table_words(&self, u: VertexId) -> usize {
        let cluster_membership: usize = self.bunch_of[u.index()]
            .iter()
            .map(|&(w, _)| self.cluster_trees[w.index()].table_words(u))
            .sum();
        let own_cluster_labels: usize = self.cluster_trees[u.index()]
            .vertices()
            .map(|v| self.cluster_trees[u.index()].label(v).map(TreeLabel::words).unwrap_or(0))
            .sum();
        self.balls.words_at(u)
            + cluster_membership
            + own_cluster_labels
            + self.q as usize
            + self.router.table_words(u)
    }

    fn label_words(&self, v: VertexId) -> usize {
        self.label_of(v).words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn check_all_pairs(g: &Graph, epsilon: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = Params::with_epsilon(epsilon);
        let scheme = SchemeFivePlusEps::build(g, &params, &mut rng).unwrap();
        let exact = DistanceMatrix::new(g);
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let out = simulate(g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                let bound = (5.0 + 3.0 * epsilon) * d as f64 + 1e-9;
                assert!(
                    (out.weight as f64) <= bound,
                    "theorem 11 bound violated for {u}->{v}: routed {} vs d={d}",
                    out.weight
                );
            }
        }
    }

    #[test]
    fn thm11_bound_on_weighted_random_graph() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = generators::erdos_renyi(80, 0.06, WeightModel::Uniform { lo: 1, hi: 16 }, &mut rng);
        check_all_pairs(&g, 0.5, 1);
    }

    #[test]
    fn thm11_bound_on_unweighted_graph() {
        let mut rng = StdRng::seed_from_u64(52);
        let g = generators::erdos_renyi(80, 0.06, WeightModel::Unit, &mut rng);
        check_all_pairs(&g, 0.25, 2);
    }

    #[test]
    fn thm11_bound_on_weighted_geometric_graph() {
        let mut rng = StdRng::seed_from_u64(53);
        let g =
            generators::random_geometric(70, 0.2, WeightModel::Uniform { lo: 1, hi: 8 }, &mut rng);
        check_all_pairs(&g, 1.0, 3);
    }

    #[test]
    fn thm11_metadata_and_sizes() {
        let mut rng = StdRng::seed_from_u64(54);
        let g = generators::erdos_renyi(60, 0.08, WeightModel::Uniform { lo: 1, hi: 4 }, &mut rng);
        let scheme = SchemeFivePlusEps::build(&g, &Params::default(), &mut rng).unwrap();
        assert!(scheme.name().contains("thm11"));
        assert_eq!(RoutingScheme::n(&scheme), 60);
        assert!(scheme.q() >= 4);
        assert!(!scheme.landmarks().is_empty());
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            assert!(scheme.label_words(v) >= 3);
        }
    }

    #[test]
    fn thm11_rejects_disconnected_graphs() {
        let mut b = routing_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let err = SchemeFivePlusEps::build(&g, &Params::default(), &mut rng).unwrap_err();
        assert_eq!(err, BuildError::Disconnected);
    }
}
