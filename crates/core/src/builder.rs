//! The uniform build surface: [`SchemeBuilder`] + [`BuildContext`].
//!
//! Preprocessing a routing scheme used to have as many signatures as there
//! were schemes (`build(g, &Params, &mut R)`, `build(g, k, &mut R)`,
//! `build(g)`, …), which forced every harness binary to carry a per-scheme
//! `match` just to construct things. [`SchemeBuilder`] erases that
//! variation the same way [`routing_model::DynScheme`] erases the routing
//! surface: one object-safe `build(&self, g, &BuildContext)` producing a
//! `Box<dyn DynScheme>` or a [`BuildError`], with everything a build may
//! consume — parameters, the RNG seed, the worker-thread count — carried by
//! the [`BuildContext`].
//!
//! Builders are deterministic in `(g, ctx)`: the context's seed derives a
//! fresh `StdRng` per build (exactly what the harness binaries did by hand
//! before), and the thread count is applied through
//! [`routing_par::set_threads`] — which never changes *what* is built, only
//! how fast (see `routing-par`). The facade crate's `SchemeRegistry` maps
//! CLI names to boxed builders; this module provides the builders for the
//! paper's schemes (`warmup`, `thm10`, `thm11`), and `routing-baselines`
//! provides the baseline builders (`tz2`/`tz3`, `exact`, `spanner`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use routing_graph::Graph;
use routing_model::DynScheme;

use crate::error::BuildError;
use crate::params::Params;
use crate::{SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};

/// Everything a [`SchemeBuilder`] may consume besides the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildContext {
    /// Scheme parameters (`ε`, ball/landmark scaling, hitting strategy).
    /// Builders that take no parameters (the baselines) ignore it.
    pub params: Params,
    /// Seed from which the build derives a fresh RNG, so a build is
    /// reproducible given `(graph, context)`.
    pub seed: u64,
    /// Worker threads for the preprocessing fan-out, applied via
    /// [`routing_par::set_threads`] at the registry's dispatch point. `0`
    /// means "leave the process-wide configuration untouched" (which
    /// `routing-par` itself resolves to all hardware threads when nothing
    /// was ever set) — so a default context never clobbers a thread count
    /// the caller configured explicitly. Thread count never changes what
    /// gets built — only wall-clock time.
    pub threads: usize,
}

impl Default for BuildContext {
    fn default() -> Self {
        BuildContext { params: Params::default(), seed: 7, threads: 0 }
    }
}

impl BuildContext {
    /// A context with the given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        BuildContext { seed, ..BuildContext::default() }
    }

    /// The fresh RNG this context prescribes for one build.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Applies the context's thread count to the global `routing-par`
    /// executor. `threads == 0` is a no-op: the process-wide setting
    /// (explicitly configured, or `routing-par`'s all-hardware default)
    /// stays in force.
    pub fn apply_threads(&self) {
        if self.threads != 0 {
            routing_par::set_threads(self.threads);
        }
    }
}

/// An object-safe scheme factory: the preprocessing-phase twin of
/// [`DynScheme`].
///
/// Implementations must be deterministic in `(g, ctx)` and must build a
/// scheme whose [`DynScheme::name`] equals the key the builder is
/// registered under (the facade's `SchemeRegistry` and the CI smoke run
/// both enforce this).
///
/// Builders do **not** apply `ctx.threads` themselves — the registry's
/// `build` applies it once at the dispatch point ([`BuildContext::
/// apply_threads`]), so the convention cannot be forgotten per scheme.
/// Thread count never changes what gets built; callers invoking a builder
/// directly (bypassing the registry) apply it themselves if they care
/// about build wall-clock.
pub trait SchemeBuilder {
    /// The registry key this builder is known by (`"warmup"`, `"tz2"`, …);
    /// equals the built scheme's [`DynScheme::name`].
    fn key(&self) -> &str;

    /// Preprocesses a scheme for `g`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the graph or the context's parameters
    /// do not admit the scheme (disconnected input, `ε ≤ 0`, graph too
    /// small, …).
    fn build(&self, g: &Graph, ctx: &BuildContext) -> Result<Box<dyn DynScheme>, BuildError>;
}

/// Builds the `(3+ε)` warm-up scheme (registry key `warmup`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmupBuilder;

impl SchemeBuilder for WarmupBuilder {
    fn key(&self) -> &str {
        "warmup"
    }

    fn build(&self, g: &Graph, ctx: &BuildContext) -> Result<Box<dyn DynScheme>, BuildError> {
        let scheme = SchemeThreePlusEps::build(g, &ctx.params, &mut ctx.rng())?;
        Ok(Box::new(scheme))
    }
}

/// Builds the Theorem 10 `(2+ε, 1)` scheme (registry key `thm10`).
///
/// Theorem 10 is stated for unweighted graphs; the builder, like the typed
/// `build`, accepts whatever graph it is given — harness metadata decides
/// which flavour each experiment feeds it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Thm10Builder;

impl SchemeBuilder for Thm10Builder {
    fn key(&self) -> &str {
        "thm10"
    }

    fn build(&self, g: &Graph, ctx: &BuildContext) -> Result<Box<dyn DynScheme>, BuildError> {
        let scheme = SchemeTwoPlusEps::build(g, &ctx.params, &mut ctx.rng())?;
        Ok(Box::new(scheme))
    }
}

/// Builds the Theorem 11 `(5+ε)` scheme (registry key `thm11`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Thm11Builder;

impl SchemeBuilder for Thm11Builder {
    fn key(&self) -> &str {
        "thm11"
    }

    fn build(&self, g: &Graph, ctx: &BuildContext) -> Result<Box<dyn DynScheme>, BuildError> {
        let scheme = SchemeFivePlusEps::build(g, &ctx.params, &mut ctx.rng())?;
        Ok(Box::new(scheme))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;
    use routing_graph::VertexId;

    fn graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(3);
        generators::erdos_renyi(80, 0.08, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng)
    }

    #[test]
    fn builders_build_schemes_named_after_their_key() {
        let weighted = graph();
        let unweighted = {
            let mut rng = StdRng::seed_from_u64(3);
            generators::erdos_renyi(80, 0.08, WeightModel::Unit, &mut rng)
        };
        let ctx = BuildContext::with_seed(11);
        // Theorem 10 is stated for unweighted graphs; the other two take any.
        let builders: [(&dyn SchemeBuilder, &Graph); 3] = [
            (&WarmupBuilder, &weighted),
            (&Thm10Builder, &unweighted),
            (&Thm11Builder, &weighted),
        ];
        for (b, g) in builders {
            let scheme = b.build(g, &ctx).unwrap();
            assert_eq!(scheme.name(), b.key(), "scheme name must equal its builder key");
            assert_eq!(scheme.n(), 80);
            let out = simulate(g, scheme.as_ref(), VertexId(0), VertexId(79)).unwrap();
            assert_eq!(out.destination(), VertexId(79));
        }
    }

    #[test]
    fn builds_are_deterministic_in_the_context() {
        let g = graph();
        let ctx = BuildContext { seed: 5, threads: 1, ..BuildContext::default() };
        let a = WarmupBuilder.build(&g, &ctx).unwrap();
        let b = WarmupBuilder.build(&g, &ctx).unwrap();
        for v in g.vertices() {
            assert_eq!(a.table_words(v), b.table_words(v));
            assert_eq!(a.label_words(v), b.label_words(v));
        }
        for (u, v) in [(0u32, 40u32), (7, 63), (12, 9)] {
            let ra = simulate(&g, a.as_ref(), VertexId(u), VertexId(v)).unwrap();
            let rb = simulate(&g, b.as_ref(), VertexId(u), VertexId(v)).unwrap();
            assert_eq!(ra.path, rb.path);
        }
    }

    #[test]
    fn bad_parameters_surface_as_build_errors() {
        let g = graph();
        let ctx = BuildContext {
            params: Params::with_epsilon(-1.0),
            ..BuildContext::default()
        };
        let err = WarmupBuilder.build(&g, &ctx).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter { .. }));
    }
}
