//! The second routing technique (Lemma 8): `(1+ε)`-stretch routing from any
//! vertex of `U_i` to any vertex of `W_i`, for partitions `U = {U_1,...,U_q}`
//! of `V` and `W = {W_1,...,W_q}` of a destination set `W ⊆ V`, under the
//! assumption that every set of `U` intersects every vicinity `B(u, q̃)`.
//!
//! **Preprocessing.** Every vertex stores `B(u, q̃)` (shared ball table).
//! For every `j` and every pair `u ∈ U_j`, `w ∈ W_j`, `u` stores a sequence
//! along a shortest `u`–`w` path: the first two path vertices followed by
//! *subsequences* built with geometrically doubling thresholds
//! `s = 2/b, 4/b, 8/b, ...` (`b = ⌈2/ε⌉+1`). A subsequence stops when it
//! reaches `w`, or when the remaining step falls below the threshold — in
//! which case it ends at a vertex `z ∈ B(·, q̃) ∩ U_j`, whose **own** stored
//! sequence continues the journey (Claim 9 shows the distance to `w` shrinks
//! every time, so the recursion terminates and the total detour is `ε·d`).
//!
//! **Routing.** The current sequence travels in the header; hops between
//! temporary targets are ball hops (Lemma 2) or single-edge hops over stored
//! ports, exactly as in Lemma 7. When the message reaches the last vertex of
//! the sequence and it is not `w`, that vertex swaps in its own sequence for
//! `w` and forwarding continues.

use std::collections::HashMap;

use routing_graph::{Graph, SearchScratch, VertexId, Weight};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_vicinity::BallTable;

use crate::seq::{sequence_words, HopKind, SeqEntry};
use crate::{BuildError, Params};

/// The header carried by a message routed with the second technique.
#[derive(Debug, Clone)]
pub struct Technique2Header {
    seq: Vec<SeqEntry>,
    idx: usize,
}

impl HeaderSize for Technique2Header {
    fn words(&self) -> usize {
        sequence_words(&self.seq) + 1
    }
}

/// The Lemma 8 router, designed to be embedded in the full schemes. The
/// embedding scheme owns the shared [`BallTable`] and passes it to
/// [`Technique2Router::step`].
#[derive(Debug, Clone)]
pub struct Technique2Router {
    color_of: Vec<u32>,
    /// Destination vertex -> its index `j` in the destination partition `W`.
    // lint:allow(det-hash-iter): keyed membership lookup at query time; never iterated
    dest_set_of: HashMap<VertexId, u32>,
    // lint:allow(det-hash-iter): keyed sequence lookup at query time; never iterated
    seqs: HashMap<(VertexId, VertexId), Vec<SeqEntry>>,
    seq_words: Vec<usize>,
    b: usize,
}

impl Technique2Router {
    /// Builds the router.
    ///
    /// * `color_of[v]` is the index of the set of `U` containing `v` (every
    ///   vertex of `V` has one);
    /// * `dest_partition[j]` lists the vertices of `W_j` (the destination
    ///   sets); indices must align with the `U` indices.
    ///
    /// The Lemma 8 assumption — every `U_j` intersects every `B(u, q̃)` — is
    /// what the Lemma 6 coloring provides; if it fails for some vicinity the
    /// construction degrades gracefully (the affected sequence keeps walking
    /// the shortest path instead of stopping early, so routing stays correct
    /// but the sequence may be longer than `2b·log(nD)`).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters or a disconnected graph.
    pub fn build(
        g: &Graph,
        balls: &BallTable,
        color_of: Vec<u32>,
        dest_partition: &[Vec<VertexId>],
        params: &Params,
    ) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        if !g.is_connected() {
            return Err(BuildError::Disconnected);
        }
        assert_eq!(color_of.len(), g.n(), "color_of must cover every vertex");
        let b = params.b_lemma8();
        let _span = routing_obs::span("technique2");

        // lint:allow(det-hash-iter): filled per key, read by key; never iterated
        let mut dest_set_of = HashMap::new();
        for (j, set) in dest_partition.iter().enumerate() {
            for &w in set {
                dest_set_of.insert(w, j as u32);
            }
        }

        // Group the sources by color.
        // lint:allow(det-hash-iter): read by key (classes.get) only; each class vec is filled in deterministic vertex order
        let mut classes: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for v in g.vertices() {
            classes.entry(color_of[v.index()]).or_default().push(v);
        }

        // One Dijkstra per destination `w`, then a sequence per matched
        // source — independent work items, fanned out in parallel. The merge
        // below runs in a fixed (j, w) order so the router is identical for
        // every thread count.
        let mut work: Vec<(u32, VertexId, &[VertexId])> = Vec::new();
        for (j, dests) in dest_partition.iter().enumerate() {
            let Some(sources) = classes.get(&(j as u32)) else { continue };
            for &w in dests {
                work.push((j as u32, w, sources.as_slice()));
            }
        }
        let per_dest: Vec<Vec<(VertexId, Vec<SeqEntry>)>> = routing_par::par_map_scratch(
            work.len(),
            || SearchScratch::for_graph(g),
            |scratch, i| {
                let (j, w, sources) = work[i];
                // The sequence for source `u` only reads dist/parent on the
                // shortest `u`-`w` path, and every path vertex is an SPT
                // ancestor of the target `u` — settled before `u` — so the
                // target-bounded search is sufficient as well as bit-identical.
                let _frontier = routing_obs::span("settled-frontier");
                scratch.dijkstra_targets_into(g, w, sources);
                routing_obs::counters::BUILD_EARLY_EXIT_SEARCHES.inc();
                let out = sources
                    .iter()
                    .filter(|&&u| u != w)
                    .map(|&u| {
                        let mut path = scratch.path_to(u).expect("graph is connected");
                        path.reverse(); // now u -> w
                        (u, build_t2_sequence(g, balls, scratch, &path, w, j, &color_of, b))
                    })
                    .collect();
                routing_obs::counters::BUILD_SETTLED_VERTICES.add(scratch.order().len() as u64);
                out
            },
        );
        // lint:allow(det-hash-iter): filled per key in deterministic work order, read by key at query time; never iterated
        let mut seqs = HashMap::new();
        let mut seq_words = vec![0usize; g.n()];
        for (&(_, w, _), entries_list) in work.iter().zip(per_dest) {
            for (u, entries) in entries_list {
                seq_words[u.index()] += 1 + sequence_words(&entries);
                seqs.insert((u, w), entries);
            }
        }

        Ok(Technique2Router { color_of, dest_set_of, seqs, seq_words, b })
    }

    /// Lemma 8's round budget `b = ⌈2/ε⌉ + 1`.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The `U` set index of vertex `v`.
    pub fn color_of(&self, v: VertexId) -> u32 {
        self.color_of[v.index()]
    }

    /// The `W` set index of destination `w`, if `w ∈ W`.
    pub fn dest_set_of(&self, w: VertexId) -> Option<u32> {
        self.dest_set_of.get(&w).copied()
    }

    /// True if `u` stores a sequence for destination `w`.
    pub fn has_sequence(&self, u: VertexId, w: VertexId) -> bool {
        self.seqs.contains_key(&(u, w))
    }

    /// Builds the header for a message starting its Lemma 8 phase at `at`
    /// towards destination `dest ∈ W`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::MissingInformation`] if `at` stores no sequence
    /// for `dest` (they are not matched by the partitions).
    pub fn start(&self, at: VertexId, dest: VertexId) -> Result<Technique2Header, RouteError> {
        if at == dest {
            return Ok(Technique2Header { seq: Vec::new(), idx: 0 });
        }
        let seq = self.seqs.get(&(at, dest)).ok_or_else(|| RouteError::MissingInformation {
            at,
            what: format!("no Lemma 8 sequence for destination {dest} at this vertex"),
        })?;
        Ok(Technique2Header { seq: seq.clone(), idx: 0 })
    }

    /// One local routing decision of the Lemma 8 phase at vertex `at`.
    ///
    /// # Errors
    ///
    /// Returns an error when local information the construction promises is
    /// missing (a preprocessing bug).
    pub fn step(
        &self,
        at: VertexId,
        header: &mut Technique2Header,
        dest: VertexId,
        balls: &BallTable,
    ) -> Result<Decision, RouteError> {
        if at == dest {
            return Ok(Decision::Deliver);
        }
        if header.seq.is_empty() {
            // The start vertex had no sequence of its own (at == dest case is
            // handled above) — reload from this vertex.
            *header = self.start(at, dest)?;
        }
        // Advance past targets we are standing on; when standing on the final
        // target (which is not `dest`), swap in this vertex's own sequence.
        let mut guard = 0usize;
        while header.seq[header.idx].vertex == at {
            if header.idx + 1 < header.seq.len() {
                header.idx += 1;
            } else {
                let next = self.seqs.get(&(at, dest)).ok_or_else(|| {
                    RouteError::MissingInformation {
                        at,
                        what: format!(
                            "sequence ended at {at} which stores no continuation for {dest}"
                        ),
                    }
                })?;
                header.seq = next.clone();
                header.idx = 0;
            }
            guard += 1;
            if guard > header.seq.len() + 2 {
                return Err(RouteError::MissingInformation {
                    at,
                    what: "lemma 8 sequence advance did not make progress".into(),
                });
            }
        }
        let target = header.seq[header.idx];
        match target.hop {
            HopKind::Edge(port) => Ok(Decision::Forward(port)),
            HopKind::Ball => balls
                .first_port(at, target.vertex)
                .map(Decision::Forward)
                .ok_or_else(|| RouteError::MissingInformation {
                    at,
                    what: format!("temporary target {} is outside B({at}, q̃)", target.vertex),
                }),
        }
    }

    /// The words Lemma 8 charges to `v`: the stored sequences (the shared
    /// ball table is accounted by the embedding scheme).
    pub fn table_words(&self, v: VertexId) -> usize {
        self.seq_words[v.index()]
    }
}

/// Builds the Lemma 8 sequence stored at `path[0]` for destination `w`.
///
/// `spt_w` is the shortest-path tree rooted at `w`, so `spt_w.dist(x)` is
/// `d(x, w)` for every path vertex `x`.
#[allow(clippy::too_many_arguments)]
fn build_t2_sequence(
    g: &Graph,
    balls: &BallTable,
    spt_w: &SearchScratch,
    path: &[VertexId],
    w: VertexId,
    j: u32,
    color_of: &[u32],
    b: usize,
) -> Vec<SeqEntry> {
    let mut entries = Vec::new();
    let dist_to_w = |x: VertexId| -> Weight { spt_w.dist(x).expect("path vertex reaches w") };

    // First two path vertices are explicit edge hops.
    let u1 = path[1];
    entries.push(SeqEntry::edge(u1, g.port_to(path[0], u1).expect("path edge")));
    if u1 == w {
        return entries;
    }
    let u2 = path[2];
    entries.push(SeqEntry::edge(u2, g.port_to(u1, u2).expect("path edge")));
    if u2 == w {
        return entries;
    }

    // Subsequences with doubling thresholds s = thr_num / b.
    let mut pos = 2usize; // position of the current subsequence's last vertex (x_i)
    let mut thr_num: u128 = 2;
    loop {
        let mut count = 0usize;
        loop {
            let xi = path[pos];
            if balls.contains(xi, w) {
                entries.push(SeqEntry::ball(w));
                return entries;
            }
            let mut jdx = pos + 1;
            while balls.contains(xi, path[jdx]) {
                jdx += 1;
            }
            let zi = path[jdx];
            let yi = path[jdx - 1];
            if zi == w {
                if yi != xi {
                    entries.push(SeqEntry::ball(yi));
                }
                entries.push(SeqEntry::edge(w, g.port_to(yi, w).expect("path edge")));
                return entries;
            }
            let d_xi_zi = dist_to_w(xi) - dist_to_w(zi);
            if (d_xi_zi as u128) * (b as u128) < thr_num {
                // Below the threshold: hand over to a vertex of U_j inside
                // the vicinity (guaranteed by the Lemma 8 assumption).
                let z = balls
                    .ball(xi)
                    .members()
                    .iter()
                    .map(|&(m, _)| m)
                    .find(|&m| color_of[m.index()] == j);
                if let Some(z) = z {
                    entries.push(SeqEntry::ball(z));
                    return entries;
                }
                // Assumption violated at this vicinity (possible at tiny
                // scales): keep walking the path instead; routing stays
                // correct, the sequence is just longer.
            }
            if yi != xi {
                entries.push(SeqEntry::ball(yi));
                count += 1;
            }
            entries.push(SeqEntry::edge(zi, g.port_to(yi, zi).expect("path edge")));
            count += 1;
            pos = jdx;
            if count >= 2 * b {
                break;
            }
        }
        thr_num = thr_num.saturating_mul(2);
    }
}

/// The standalone Lemma 8 routing scheme: routes from any vertex to any
/// destination in `W` whose `W`-set index matches the source's `U`-set index
/// — or, when they differ, first walks (exactly, inside the source's
/// vicinity) to a `U`-set representative, which is how the full schemes use
/// the technique. Destinations outside `W` are rejected.
#[derive(Debug, Clone)]
pub struct Technique2Scheme {
    n: usize,
    epsilon: f64,
    balls: BallTable,
    router: Technique2Router,
}

impl Technique2Scheme {
    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Builds the standalone scheme. `color_of` assigns every vertex its `U`
    /// set; `dest_partition` lists the `W_j`. Balls use `q̃ = scaled(q)` where
    /// `q` is the number of sets.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the underlying router.
    pub fn build(
        g: &Graph,
        color_of: Vec<u32>,
        dest_partition: Vec<Vec<VertexId>>,
        params: &Params,
    ) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        let q = dest_partition.len().max(1);
        let ell = params.scaled(q, g.n());
        let balls = BallTable::build(g, ell);
        let router = Technique2Router::build(g, &balls, color_of, &dest_partition, params)?;
        Ok(Technique2Scheme { n: g.n(), epsilon: params.epsilon, balls, router })
    }

    /// The underlying router.
    pub fn router(&self) -> &Technique2Router {
        &self.router
    }

    /// The shared ball table.
    pub fn balls(&self) -> &BallTable {
        &self.balls
    }
}

/// Label for the standalone Lemma 8 scheme: the destination and its `W` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Technique2Label {
    /// The destination vertex (must be in `W`).
    pub vertex: VertexId,
    /// Its set index in the `W` partition.
    pub set: u32,
}

impl RoutingScheme for Technique2Scheme {
    type Label = Technique2Label;
    type Header = Technique2Header;

    fn name(&self) -> &str {
        "lemma8"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> Technique2Label {
        Technique2Label { vertex: v, set: self.router.dest_set_of(v).unwrap_or(u32::MAX) }
    }

    fn init_header(
        &self,
        source: VertexId,
        dest: &Technique2Label,
    ) -> Result<Technique2Header, RouteError> {
        if source == dest.vertex {
            return Ok(Technique2Header { seq: Vec::new(), idx: 0 });
        }
        if dest.set == u32::MAX {
            return Err(RouteError::BadLabel {
                what: format!("{} is not a lemma 8 destination (not in W)", dest.vertex),
            });
        }
        if self.router.color_of(source) != dest.set {
            return Err(RouteError::BadLabel {
                what: format!(
                    "source set {} does not match destination set {}",
                    self.router.color_of(source),
                    dest.set
                ),
            });
        }
        self.router.start(source, dest.vertex)
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut Technique2Header,
        dest: &Technique2Label,
    ) -> Result<Decision, RouteError> {
        self.router.step(at, header, dest.vertex, &self.balls)
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.balls.words_at(v) + self.router.table_words(v)
    }

    fn label_words(&self, _v: VertexId) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;
    use routing_vicinity::Coloring;

    /// Builds a Lemma-6-style coloring of the graph's vicinities so the
    /// Lemma 8 assumption holds, and an arbitrary partition of `dests`.
    fn setup(
        g: &Graph,
        q: u32,
        dests: Vec<VertexId>,
        params: &Params,
        seed: u64,
    ) -> (Vec<u32>, Vec<Vec<VertexId>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ell = params.scaled(q as usize, g.n());
        let balls = BallTable::build(g, ell);
        let sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect();
        let coloring = Coloring::build_for_sets(g.n(), q, &sets, 8, &mut rng).unwrap();
        let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();
        let mut dest_partition = vec![Vec::new(); q as usize];
        for (i, w) in dests.into_iter().enumerate() {
            dest_partition[i % q as usize].push(w);
        }
        (color_of, dest_partition)
    }

    fn check_stretch(g: &Graph, q: u32, epsilon: f64, seed: u64) {
        let params = Params::with_epsilon(epsilon);
        let dests: Vec<VertexId> = g.vertices().filter(|v| v.0 % 3 == 0).collect();
        let (color_of, dest_partition) = setup(g, q, dests, &params, seed);
        let scheme =
            Technique2Scheme::build(g, color_of.clone(), dest_partition.clone(), &params).unwrap();
        let exact = DistanceMatrix::new(g);
        let mut checked = 0;
        for (j, dests) in dest_partition.iter().enumerate() {
            for &w in dests {
                for u in g.vertices() {
                    if u == w || color_of[u.index()] != j as u32 {
                        continue;
                    }
                    let out = simulate(g, &scheme, u, w).unwrap();
                    let d = exact.dist(u, w).unwrap();
                    let bound = (1.0 + epsilon) * d as f64 + 1e-9;
                    assert!(
                        (out.weight as f64) <= bound,
                        "lemma 8 stretch violated for {u}->{w}: {} vs (1+{epsilon})*{d}",
                        out.weight
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn lemma8_stretch_on_unweighted_random_graph() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generators::erdos_renyi(80, 0.07, WeightModel::Unit, &mut rng);
        check_stretch(&g, 4, 0.5, 1);
    }

    #[test]
    fn lemma8_stretch_on_weighted_random_graph() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::erdos_renyi(70, 0.08, WeightModel::Uniform { lo: 1, hi: 12 }, &mut rng);
        check_stretch(&g, 4, 0.25, 2);
    }

    #[test]
    fn lemma8_stretch_on_grid() {
        let g = generators::grid(9, 9);
        check_stretch(&g, 3, 1.0, 3);
    }

    #[test]
    fn lemma8_rejects_non_destinations_and_mismatched_sets() {
        let g = generators::cycle(24);
        let params = Params::default();
        let dests = vec![VertexId(0), VertexId(6), VertexId(12), VertexId(18)];
        let (color_of, dest_partition) = setup(&g, 2, dests.clone(), &params, 5);
        let scheme = Technique2Scheme::build(&g, color_of.clone(), dest_partition, &params).unwrap();
        // A vertex that is not in W at all.
        let err = simulate(&g, &scheme, VertexId(1), VertexId(3)).unwrap_err();
        assert!(matches!(err, RouteError::BadLabel { .. }));
        // A W destination whose set does not match the source's color.
        let w = dests
            .iter()
            .copied()
            .find(|&w| scheme.router().dest_set_of(w) != Some(color_of[VertexId(1).index()]))
            .unwrap();
        let err = simulate(&g, &scheme, VertexId(1), w).unwrap_err();
        assert!(matches!(err, RouteError::BadLabel { .. }));
    }

    #[test]
    fn lemma8_self_route_and_sizes() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = generators::erdos_renyi(50, 0.1, WeightModel::Unit, &mut rng);
        let params = Params::with_epsilon(0.5);
        let dests: Vec<VertexId> = (0..10).map(VertexId).collect();
        let (color_of, dest_partition) = setup(&g, 3, dests, &params, 6);
        let scheme = Technique2Scheme::build(&g, color_of, dest_partition, &params).unwrap();
        let out = simulate(&g, &scheme, VertexId(5), VertexId(5)).unwrap();
        assert_eq!(out.hops, 0);
        assert!(scheme.name().contains("lemma8"));
        assert_eq!(RoutingScheme::n(&scheme), 50);
        assert_eq!(scheme.router().b(), 5);
        assert_eq!(scheme.balls().len(), 50);
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            assert_eq!(scheme.label_words(v), 2);
        }
    }

    #[test]
    fn lemma8_disconnected_is_rejected() {
        let mut b = routing_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1).unwrap();
        b.add_unit_edge(2, 3).unwrap();
        let g = b.build();
        let err = Technique2Scheme::build(
            &g,
            vec![0, 0, 0, 0],
            vec![vec![VertexId(0)]],
            &Params::default(),
        )
        .unwrap_err();
        assert_eq!(err, BuildError::Disconnected);
    }
}
