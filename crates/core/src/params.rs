//! Tunable parameters shared by every scheme.
//!
//! The paper writes `x̃ = α·x·log n` for a "large enough constant" `α` and
//! hides all logarithmic factors inside `Õ(·)`. At the laptop scales of the
//! experiments the constants dominate the asymptotics, so they are exposed
//! here; the defaults are calibrated so the schemes' behaviour (who wins on
//! space at which stretch) is visible at `n` in the hundreds to thousands.

use serde::{Deserialize, Serialize};

/// Which Lemma 5 construction a scheme uses for its hitting sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HittingStrategy {
    /// Deterministic greedy set cover, ties broken by smallest vertex id
    /// (Elkin–Matar-style derandomization). The default: with it, every
    /// hitting-set-based build is seed-free — two runs on the same graph
    /// produce identical routers regardless of the RNG handed to `build`.
    Greedy,
    /// Randomized sampling with patching (smaller in practice). Kept behind
    /// this param for experiments that want the paper's Lemma 5 sampling.
    Random,
}

/// Parameters controlling preprocessing of every scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// The stretch slack `ε > 0` of Lemmas 7/8 and all theorems.
    pub epsilon: f64,
    /// The constant `α` in the paper's `x̃ = α·x·log n` scaling of ball
    /// sizes. `1.0` follows the paper literally; smaller values shrink
    /// preprocessing at the cost of more frequent fallback routing.
    pub ball_scale: f64,
    /// Multiplier on the Lemma 4 sampling parameter `s` (landmark density).
    pub landmark_scale: f64,
    /// How many random colorings to try before running the repair pass.
    pub coloring_retries: usize,
    /// Hitting-set construction to use (Lemma 5).
    pub hitting: HittingStrategy,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            epsilon: 0.25,
            ball_scale: 1.0,
            landmark_scale: 1.0,
            coloring_retries: 8,
            hitting: HittingStrategy::Greedy,
        }
    }
}

impl Params {
    /// Creates parameters with the given `ε` and defaults elsewhere.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Params { epsilon, ..Params::default() }
    }

    /// The paper's `x̃ = α·x·log n`, clamped to `[1, n]`.
    pub fn scaled(&self, x: usize, n: usize) -> usize {
        let ln = (n.max(2) as f64).ln();
        let v = (self.ball_scale * x as f64 * ln).ceil() as usize;
        v.clamp(1, n.max(1))
    }

    /// Lemma 7's round budget `b = ⌈2/ε⌉`.
    pub fn b_lemma7(&self) -> usize {
        (2.0 / self.epsilon).ceil() as usize
    }

    /// Lemma 8's round budget `b = ⌈2/ε⌉ + 1`.
    pub fn b_lemma8(&self) -> usize {
        (2.0 / self.epsilon).ceil() as usize + 1
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon > 0.0) {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if !(self.ball_scale > 0.0) {
            return Err(format!("ball_scale must be positive, got {}", self.ball_scale));
        }
        if !(self.landmark_scale > 0.0) {
            return Err(format!("landmark_scale must be positive, got {}", self.landmark_scale));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let p = Params::default();
        assert!(p.validate().is_ok());
        assert_eq!(p.b_lemma7(), 8);
        assert_eq!(p.b_lemma8(), 9);
        // The default build must be seed-free (deterministic hitting sets).
        assert_eq!(p.hitting, HittingStrategy::Greedy);
    }

    #[test]
    fn scaled_is_clamped() {
        let p = Params::default();
        assert_eq!(p.scaled(1000, 50), 50);
        assert!(p.scaled(2, 100) >= 2);
        assert_eq!(p.scaled(0, 100), 1);
        let tiny = Params { ball_scale: 0.1, ..Params::default() };
        assert!(tiny.scaled(10, 1000) < p.scaled(10, 1000));
    }

    #[test]
    fn with_epsilon_and_b() {
        let p = Params::with_epsilon(1.0);
        assert_eq!(p.b_lemma7(), 2);
        assert_eq!(p.b_lemma8(), 3);
        let p = Params::with_epsilon(0.5);
        assert_eq!(p.b_lemma7(), 4);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(Params::with_epsilon(0.0).validate().is_err());
        assert!(Params::with_epsilon(-1.0).validate().is_err());
        assert!(Params { ball_scale: 0.0, ..Params::default() }.validate().is_err());
        assert!(Params { landmark_scale: -2.0, ..Params::default() }.validate().is_err());
    }
}
