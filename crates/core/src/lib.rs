//! The primary contribution of Roditty & Tov, *New routing techniques and
//! their applications* (PODC 2015): two `(1+ε)`-stretch routing techniques
//! for predefined vertex sets (Lemmas 7 and 8) and the compact routing
//! schemes built from them (the `(3+ε)` warm-up, the `(2+ε, 1)` scheme of
//! Theorem 10, the `(5+ε)` scheme of Theorem 11, the `(3±2/ℓ+ε, 2)` schemes
//! of Theorems 13/15 and the `(4k−7+ε)` scheme of Theorem 16).
//!
//! Every scheme implements [`routing_model::RoutingScheme`], so it can be
//! driven by the shared simulator, measured by the shared evaluation
//! harness, and compared against the baselines in `routing-baselines`.
//!
//! # Quick start
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use routing_graph::generators::{self, WeightModel};
//! use routing_core::{Params, SchemeThreePlusEps};
//! use routing_model::simulate;
//! use routing_graph::VertexId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let g = generators::erdos_renyi(120, 0.06, WeightModel::Unit, &mut rng);
//! let scheme = SchemeThreePlusEps::build(&g, &Params::default(), &mut rng)?;
//! let out = simulate(&g, &scheme, VertexId(0), VertexId(97))?;
//! assert_eq!(out.destination(), VertexId(97));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod error;
mod params;
pub mod scheme_2eps1;
pub mod scheme_3eps;
pub mod scheme_5eps;
pub mod scheme_multilevel;
pub mod seq;
pub mod technique1;
pub mod technique2;

pub use builder::{BuildContext, SchemeBuilder, Thm10Builder, Thm11Builder, WarmupBuilder};
pub use error::BuildError;
pub use params::{HittingStrategy, Params};
pub use scheme_2eps1::SchemeTwoPlusEps;
pub use scheme_3eps::SchemeThreePlusEps;
pub use scheme_5eps::SchemeFivePlusEps;
pub use scheme_multilevel::{SchemeMultilevel, Thm13Builder, Thm15Builder};
pub use technique1::{Technique1Router, Technique1Scheme};
pub use technique2::{Technique2Router, Technique2Scheme};
