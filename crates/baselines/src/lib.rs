//! Baseline schemes the paper compares against (Table 1) and ground-truth
//! comparators used by the experiment harness:
//!
//! * [`exact`] — shortest-path routing with full `Θ(n)`-word tables
//!   (stretch 1), the space/stretch extreme point.
//! * [`tz`] — the Thorup–Zwick hierarchy (levels, bunches, clusters), the
//!   `(4k−5)`-stretch compact routing scheme \[21\] (stretch 3 at `k=2`,
//!   stretch 7 at `k=3` — the two prior rows of Table 1), and the
//!   `(2k−1)`-stretch distance oracle \[22\].
//! * [`spanner`] — the greedy `(2k−1)`-spanner, included for the
//!   spanner/oracle/routing storyline of the introduction.
//!
//! The crate also hosts the paper's [`thm16`] scheme — the `(4k−7+ε)`
//! refinement of Theorem 16 — because it is built directly on top of the
//! [`tz`] hierarchy rather than on the `routing-core` vicinity machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod spanner;
pub mod thm16;
pub mod tz;

pub use exact::{ExactBuilder, ExactScheme};
pub use spanner::{greedy_spanner, SpannerBuilder, SpannerScheme};
pub use thm16::{Thm16Builder, Thm16Scheme};
pub use tz::{TzBuilder, TzHierarchy, TzOracle, TzRoutingScheme};
