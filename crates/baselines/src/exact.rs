//! Exact shortest-path routing with full tables: every vertex stores the
//! next-hop port towards every destination. Stretch 1, `Θ(n)` words per
//! vertex — the ground-truth extreme of the space/stretch trade-off.
//!
//! This is the scheme the compact-routing lower bounds are measured
//! against: Peleg–Upfal showed stretch-1 routing *requires* `Ω(n)`-bit
//! tables on some graphs, which is why every scheme in `routing-core`
//! trades a bounded stretch (`1+ε` inside the Lemma 7/8 structures, `2+ε`
//! to `5+ε` end-to-end) for sublinear `Õ(n^x)` tables. In the experiment
//! harness this scheme plays two roles: the stretch-1.0 / `Θ(n)`-words
//! anchor row of the Table 1 comparison, and the "oracle operator" in the
//! churn experiments — the deliverability of freshly rebuilt full tables is
//! the ceiling any compact scheme's rebuild can reach.
//!
//! Next hops are derived from the shortest-path tree of each destination
//! (parent pointers with the paper's `(distance, id)` tie-breaking), so the
//! routed paths are exactly the trees every other scheme's stretch is
//! measured against. The `n` per-destination Dijkstra runs fan out over
//! [`routing_par::threads`] worker threads.

use routing_core::{BuildContext, BuildError, SchemeBuilder};
use routing_graph::SearchScratch;
use routing_graph::{Graph, Port, VertexId};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};

/// The full-table shortest-path routing scheme.
#[derive(Debug, Clone)]
pub struct ExactScheme {
    n: usize,
    /// `next[u][v]` = port at `u` towards `v` (`None` on the diagonal or for
    /// unreachable pairs).
    next: Vec<Vec<Option<Port>>>,
}

impl ExactScheme {
    /// Preprocesses full routing tables with `n` Dijkstra runs, fanned out
    /// over [`routing_par::threads`] threads.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TooSmall`] on an empty graph (there is nothing
    /// to route between).
    pub fn build(g: &Graph) -> Result<Self, BuildError> {
        let n = g.n();
        if n == 0 {
            return Err(BuildError::TooSmall {
                what: "exact routing needs at least one vertex".into(),
            });
        }
        // Column v of the table comes from the tree rooted at v: the parent
        // of u in that tree is the next hop on a shortest path from u to v.
        // One reused search workspace per worker thread.
        let span_cols = routing_obs::span("dijkstra-columns");
        let columns: Vec<Vec<Option<Port>>> = routing_par::par_map_scratch(
            n,
            || SearchScratch::for_graph(g),
            |scratch, v| {
                let v = VertexId(v as u32);
                scratch.dijkstra_into(g, v);
                g.vertices()
                    .map(|u| {
                        if u == v {
                            None
                        } else {
                            scratch.parent(u).and_then(|p| g.port_to(u, p))
                        }
                    })
                    .collect()
            },
        );
        drop(span_cols);
        let _span_next = routing_obs::span("next-table");
        let mut next = vec![vec![None; n]; n];
        for (v, column) in columns.into_iter().enumerate() {
            for u in 0..n {
                next[u][v] = column[u];
            }
        }
        Ok(ExactScheme { n, next })
    }
}

/// [`SchemeBuilder`] for [`ExactScheme`]; registry key `exact`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBuilder;

impl SchemeBuilder for ExactBuilder {
    fn key(&self) -> &str {
        "exact"
    }

    fn build(&self, g: &Graph, _ctx: &BuildContext) -> Result<Box<dyn routing_model::DynScheme>, BuildError> {
        Ok(Box::new(ExactScheme::build(g)?))
    }
}

/// Header for exact routing (nothing needs to be carried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactHeader;

impl HeaderSize for ExactHeader {
    fn words(&self) -> usize {
        0
    }
}

impl RoutingScheme for ExactScheme {
    type Label = VertexId;
    type Header = ExactHeader;

    fn name(&self) -> &str {
        "exact"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> VertexId {
        v
    }

    fn init_header(&self, _source: VertexId, dest: &VertexId) -> Result<ExactHeader, RouteError> {
        if dest.index() >= self.n {
            return Err(RouteError::BadLabel { what: format!("{dest} is not a vertex") });
        }
        Ok(ExactHeader)
    }

    fn decide(
        &self,
        at: VertexId,
        _header: &mut ExactHeader,
        dest: &VertexId,
    ) -> Result<Decision, RouteError> {
        if at == *dest {
            return Ok(Decision::Deliver);
        }
        self.next[at.index()][dest.index()]
            .map(Decision::Forward)
            .ok_or_else(|| RouteError::MissingInformation {
                at,
                what: format!("{dest} is unreachable"),
            })
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.next[v.index()].iter().filter(|p| p.is_some()).count()
    }

    fn label_words(&self, _v: VertexId) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    #[test]
    fn exact_routing_has_stretch_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::erdos_renyi(60, 0.08, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
        let scheme = ExactScheme::build(&g).unwrap();
        let exact = DistanceMatrix::new(&g);
        for u in g.vertices().take(20) {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let out = simulate(&g, &scheme, u, v).unwrap();
                assert_eq!(Some(out.weight), exact.dist(u, v));
            }
        }
    }

    #[test]
    fn exact_tables_are_linear_in_n() {
        let g = generators::cycle(40);
        let scheme = ExactScheme::build(&g).unwrap();
        for v in g.vertices() {
            assert_eq!(scheme.table_words(v), 39);
            assert_eq!(scheme.label_words(v), 1);
        }
        assert_eq!(scheme.name(), "exact");
        assert_eq!(RoutingScheme::n(&scheme), 40);
    }

    #[test]
    fn exact_reports_unreachable_destinations() {
        let mut b = routing_graph::GraphBuilder::new(3);
        b.add_unit_edge(0, 1).unwrap();
        let g = b.build();
        let scheme = ExactScheme::build(&g).unwrap();
        let err = simulate(&g, &scheme, VertexId(0), VertexId(2)).unwrap_err();
        assert!(matches!(err, RouteError::MissingInformation { .. }));
    }
}
