//! The `(4k−7+ε)`-stretch scheme of Theorem 16: Thorup–Zwick's hierarchy
//! augmented with an `ε`-vicinity per vertex.
//!
//! Section 6 of Roditty & Tov observes that the two expensive hops of the
//! TZ `(4k−5)` analysis — reaching the first pivot of the ladder and the
//! detour it costs — can be shaved when every vertex additionally stores a
//! vicinity (Lemma 2 ball) of `Õ((k/ε)·n^{1/k})` vertices on top of its
//! bunch. Routing from `u` to `v`:
//!
//! 1. **Direct** — `v` in `u`'s vicinity: exact Lemma 2 forwarding
//!    (Property 1 keeps the destination visible along the way).
//! 2. **Source cluster** — `v ∈ C(u)`: route on `u`'s own cluster tree,
//!    exact since `T(u)` is a shortest-path tree from `u`.
//! 3. **Cheapest pivot** — otherwise, cost every pivot `w = p_i(v)` whose
//!    tree label is present in `v`'s label: `d(u, w)` comes from `u`'s
//!    bunch (then `u ∈ C(w)` by duality and the cluster tree covers `u`
//!    already) or from `u`'s vicinity (then walk to `w` exactly first);
//!    `d(w, v)` is the pivot distance shipped in the label. Route via the
//!    candidate minimizing `d(u, w) + d(w, v)`. The top pivot
//!    `p_{k−1}(v) ∈ A_{k−1}` is in every bunch, so a candidate always
//!    exists; the routed weight never exceeds the cost of the plain TZ
//!    ladder choice, so `4k−5` still holds unconditionally while the
//!    vicinity buys the paper's `4k−7+ε` at the declared parameters.
//!
//! The tables grow by one vicinity (`3` words per member) over the TZ
//! scheme — `Õ((k/ε)·n^{1/k})` words total, matching the theorem.

use rand::Rng;

use routing_core::{BuildContext, BuildError, Params, SchemeBuilder};
use routing_graph::{Graph, VertexId, Weight};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_tree::{tree_route_step, TreeLabel};
use routing_vicinity::BallTable;

use crate::tz::{FlatBunches, TzHierarchy};

/// Routing phase carried in the message header.
#[derive(Debug, Clone)]
enum Phase {
    /// The destination is in the current vertex's vicinity: pure Lemma 2
    /// forwarding.
    Direct,
    /// Walking (exactly, through the vicinity) towards pivot `w`, then
    /// finishing on `w`'s cluster tree with the carried label.
    ToPivot { w: VertexId, label: TreeLabel },
    /// Routing on the cluster tree `T(root)` towards the destination.
    Tree { root: VertexId, label: TreeLabel },
}

/// Header of the Theorem 16 scheme.
#[derive(Debug, Clone)]
pub struct Thm16Header {
    phase: Phase,
}

impl HeaderSize for Thm16Header {
    fn words(&self) -> usize {
        match &self.phase {
            Phase::Direct => 1,
            Phase::ToPivot { label, .. } => 2 + label.words(),
            Phase::Tree { label, .. } => 1 + label.words(),
        }
    }
}

/// Label of a destination in the Theorem 16 scheme: the TZ pivot ladder
/// with distances (the distances are what lets the source cost its
/// candidates).
#[derive(Debug, Clone)]
pub struct Thm16Label {
    /// The destination vertex.
    pub vertex: VertexId,
    /// `(p_i(v), d(v, A_i))` for `i = 0..k`.
    pub pivots: Vec<(VertexId, Weight)>,
    /// The label of `v` in `T(p_i(v))`, aligned with `pivots`.
    pub tree_labels: Vec<TreeLabel>,
}

impl Thm16Label {
    /// Size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        1 + 2 * self.pivots.len() + self.tree_labels.iter().map(TreeLabel::words).sum::<usize>()
    }
}

/// The Theorem 16 `(4k−7+ε)`-stretch scheme with `Õ((k/ε)·n^{1/k})`-word
/// tables.
#[derive(Debug, Clone)]
pub struct Thm16Scheme {
    /// Cached scheme name: the registry key `thm16k<k>`.
    name: String,
    epsilon: f64,
    hierarchy: TzHierarchy,
    /// Bunch membership/distances as one flat id-sorted CSR table.
    bunch: FlatBunches,
    /// The `ε`-vicinities of Lemma 2, `Õ((k/ε)·n^{1/k})` members each.
    balls: BallTable,
}

/// The vicinity size Theorem 16 prescribes: `α·(k/ε)·n^{1/k}` members,
/// clamped to `[1, n]`. Deliberately without the `log n` factor of
/// [`Params::scaled`] — the theorem's vicinity is sized against the bunch
/// (`Õ(k·n^{1/k})`), not against `√n`, and the log factor would swallow
/// whole graphs at experiment scales.
fn vicinity_size(k: usize, n: usize, params: &Params) -> usize {
    let v = (params.ball_scale * (k as f64 / params.epsilon) * (n as f64).powf(1.0 / k as f64))
        .ceil() as usize;
    v.clamp(1, n.max(1))
}

impl Thm16Scheme {
    /// Preprocesses the scheme for `g` with hierarchy parameter `k ≥ 2`.
    ///
    /// # Errors
    ///
    /// As [`TzHierarchy::build`], plus parameter validation (`ε > 0`).
    pub fn build<R: Rng>(
        g: &Graph,
        k: usize,
        params: &Params,
        rng: &mut R,
    ) -> Result<Self, BuildError> {
        params.validate().map_err(|what| BuildError::BadParameter { what })?;
        let hierarchy = TzHierarchy::build(g, k, rng)?;
        let span_bunches = routing_obs::span("bunches");
        let bunch = FlatBunches::new(hierarchy.bunches_raw());
        drop(span_bunches);
        let balls = BallTable::build(g, vicinity_size(k, g.n(), params));
        Ok(Thm16Scheme {
            name: format!("thm16k{k}"),
            epsilon: params.epsilon,
            hierarchy,
            bunch,
            balls,
        })
    }

    /// The stretch slack `ε` this scheme was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &TzHierarchy {
        &self.hierarchy
    }

    /// The number of members in each stored `ε`-vicinity.
    pub fn vicinity_ell(&self) -> usize {
        self.balls.ell()
    }
}

impl RoutingScheme for Thm16Scheme {
    type Label = Thm16Label;
    type Header = Thm16Header;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.hierarchy.n()
    }

    fn label_of(&self, v: VertexId) -> Thm16Label {
        let k = self.hierarchy.k();
        let mut pivots = Vec::with_capacity(k);
        let mut tree_labels = Vec::with_capacity(k);
        for i in 0..k {
            let (p, d) = self.hierarchy.pivot(i, v);
            pivots.push((p, d));
            tree_labels.push(
                self.hierarchy
                    .cluster_tree(p)
                    .label(v)
                    .cloned()
                    .unwrap_or(TreeLabel { tin: u32::MAX, light_ports: Vec::new() }),
            );
        }
        Thm16Label { vertex: v, pivots, tree_labels }
    }

    fn init_header(&self, source: VertexId, dest: &Thm16Label) -> Result<Thm16Header, RouteError> {
        let v = dest.vertex;
        if source == v || self.balls.contains(source, v) {
            routing_obs::counters::ROUTING_PHASE_DIRECT.inc();
            return Ok(Thm16Header { phase: Phase::Direct });
        }
        // v in the source's own cluster: T(source) is a shortest-path tree
        // from the source, so this hop is exact.
        if let Some(label) = self.hierarchy.cluster_tree(source).label(v) {
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(Thm16Header { phase: Phase::Tree { root: source, label: label.clone() } });
        }
        // Cost every reachable pivot of v and take the cheapest; ties go to
        // the lower ladder level, reproducing plain TZ as the fallback.
        let mut best: Option<(Weight, Phase)> = None;
        for i in 0..self.hierarchy.k() {
            let (w, dwv) = dest.pivots[i];
            let label = &dest.tree_labels[i];
            if label.tin == u32::MAX {
                continue;
            }
            let (duw, phase) = if w == source {
                (0, Phase::Tree { root: w, label: label.clone() })
            } else if let Some(d) = self.bunch.get(source, w) {
                // u ∈ C(w) by bunch/cluster duality: T(w) already covers u.
                (d, Phase::Tree { root: w, label: label.clone() })
            } else if let Some(d) = self.balls.dist(source, w) {
                (d, Phase::ToPivot { w, label: label.clone() })
            } else {
                continue;
            };
            let cost = duw.saturating_add(dwv);
            if best.as_ref().map_or(true, |&(c, _)| cost < c) {
                best = Some((cost, phase));
            }
        }
        // p_{k−1}(v) ∈ A_{k−1} lies in every bunch, so a candidate exists.
        best.map(|(_, phase)| {
            match phase {
                Phase::ToPivot { .. } => routing_obs::counters::ROUTING_PHASE_TO_PIVOT.inc(),
                _ => routing_obs::counters::ROUTING_PHASE_TREE.inc(),
            }
            Thm16Header { phase }
        })
        .ok_or_else(|| RouteError::MissingInformation {
            at: source,
            what: format!("no pivot of {v} is reachable from {source}"),
        })
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut Thm16Header,
        dest: &Thm16Label,
    ) -> Result<Decision, RouteError> {
        if at == dest.vertex {
            return Ok(Decision::Deliver);
        }
        loop {
            match &mut header.phase {
                Phase::Direct => {
                    return self
                        .balls
                        .first_port(at, dest.vertex)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!(
                                "{} left the vicinity during direct routing",
                                dest.vertex
                            ),
                        });
                }
                Phase::ToPivot { w, label } => {
                    // Vicinity shortcut: an intermediate vertex that already
                    // sees the destination finishes exactly instead of
                    // detouring through the pivot.
                    if self.balls.contains(at, dest.vertex) {
                        header.phase = Phase::Direct;
                        continue;
                    }
                    if at == *w {
                        header.phase = Phase::Tree { root: *w, label: label.clone() };
                        continue;
                    }
                    let w = *w;
                    return self
                        .balls
                        .first_port(at, w)
                        .map(Decision::Forward)
                        .ok_or_else(|| RouteError::MissingInformation {
                            at,
                            what: format!("pivot {w} left the vicinity"),
                        });
                }
                Phase::Tree { root, label } => {
                    let tree = self.hierarchy.cluster_tree(*root);
                    let node = tree.node_info(at).ok_or_else(|| {
                        RouteError::MissingInformation {
                            at,
                            what: format!("no routing information for cluster tree T({root})"),
                        }
                    })?;
                    return tree_route_step(node, label).map_err(|e| match e {
                        RouteError::MissingInformation { what, .. } => {
                            RouteError::MissingInformation { at, what }
                        }
                        other => other,
                    });
                }
            }
        }
    }

    fn table_words(&self, v: VertexId) -> usize {
        let bunch = self.hierarchy.bunch(v);
        let membership: usize = bunch
            .iter()
            .map(|&(w, _)| self.hierarchy.cluster_tree(w).table_words(v))
            .sum();
        let own_labels: usize = self
            .hierarchy
            .cluster_tree(v)
            .vertices()
            .map(|x| self.hierarchy.cluster_tree(v).label(x).map(TreeLabel::words).unwrap_or(0))
            .sum();
        self.balls.words_at(v) + 2 * bunch.len() + membership + own_labels
            + 2 * self.hierarchy.k()
    }

    fn label_words(&self, v: VertexId) -> usize {
        self.label_of(v).words()
    }
}

/// [`SchemeBuilder`] for the Theorem 16 scheme; its registry key is
/// `thm16k<k>` (the default registry registers `thm16k3`).
#[derive(Debug, Clone)]
pub struct Thm16Builder {
    k: usize,
    key: String,
}

impl Thm16Builder {
    /// A builder for the given hierarchy parameter `k ≥ 2`.
    pub fn new(k: usize) -> Self {
        Thm16Builder { k, key: format!("thm16k{k}") }
    }
}

impl SchemeBuilder for Thm16Builder {
    fn key(&self) -> &str {
        &self.key
    }

    fn build(
        &self,
        g: &Graph,
        ctx: &BuildContext,
    ) -> Result<Box<dyn routing_model::DynScheme>, BuildError> {
        Ok(Box::new(Thm16Scheme::build(g, self.k, &ctx.params, &mut ctx.rng())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn weighted_graph(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(n, 0.07, WeightModel::Uniform { lo: 1, hi: 10 }, &mut rng)
    }

    fn check_all_pairs(g: &Graph, k: usize, params: &Params, seed: u64, factor: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = Thm16Scheme::build(g, k, params, &mut rng).unwrap();
        let exact = DistanceMatrix::new(g);
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v {
                    continue;
                }
                let out = simulate(g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap() as f64;
                assert!(
                    out.weight as f64 <= factor * d + 1e-9,
                    "stretch bound violated for k={k} {u}->{v}: {} vs {d}",
                    out.weight
                );
            }
        }
    }

    #[test]
    fn thm16_meets_declared_bound_at_default_parameters() {
        // The declared conformance envelope: (4k−7+ε)·d with k = 3.
        let params = Params::with_epsilon(0.5);
        for seed in [1u64, 2, 3] {
            let g = weighted_graph(70, 20 + seed);
            check_all_pairs(&g, 3, &params, seed, 4.0 * 3.0 - 7.0 + params.epsilon);
        }
    }

    #[test]
    fn thm16_never_exceeds_the_tz_fallback_bound() {
        // With a vicinity too small to help, the candidate choice still
        // includes the plain TZ ladder pivot, so 4k−5 holds unconditionally.
        let params = Params { ball_scale: 1e-9, ..Params::with_epsilon(0.5) };
        let g = weighted_graph(60, 31);
        let scheme = Thm16Scheme::build(&g, 3, &params, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(scheme.vicinity_ell(), 1, "tiny ball_scale must shrink the vicinity to 1");
        check_all_pairs(&g, 3, &params, 4, 4.0 * 3.0 - 5.0);
    }

    #[test]
    fn thm16_on_unweighted_and_grid_graphs() {
        let params = Params::with_epsilon(0.25);
        let mut rng = StdRng::seed_from_u64(33);
        let g = generators::erdos_renyi(80, 0.06, WeightModel::Unit, &mut rng);
        check_all_pairs(&g, 3, &params, 5, 5.0 + params.epsilon);
        let g = generators::grid(6, 6);
        check_all_pairs(&g, 2, &params, 6, 4.0 * 2.0 - 5.0);
    }

    #[test]
    fn thm16_reports_metadata() {
        let g = weighted_graph(60, 35);
        let mut rng = StdRng::seed_from_u64(7);
        let scheme = Thm16Scheme::build(&g, 3, &Params::default(), &mut rng).unwrap();
        assert_eq!(scheme.name(), "thm16k3");
        assert_eq!(RoutingScheme::n(&scheme), 60);
        assert_eq!(scheme.hierarchy().k(), 3);
        assert!(scheme.vicinity_ell() >= 1);
        assert!((scheme.epsilon() - 0.25).abs() < 1e-12);
        for v in g.vertices() {
            assert!(scheme.table_words(v) > 0);
            let label = scheme.label_of(v);
            assert_eq!(label.pivots.len(), 3);
            assert_eq!(scheme.label_words(v), label.words());
        }
    }

    #[test]
    fn thm16_rejects_bad_parameters() {
        let g = generators::cycle(12);
        let mut rng = StdRng::seed_from_u64(1);
        let err = Thm16Scheme::build(&g, 1, &Params::default(), &mut rng).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter { .. }));
        let err = Thm16Scheme::build(&g, 3, &Params::with_epsilon(0.0), &mut rng).unwrap_err();
        assert!(matches!(err, BuildError::BadParameter { .. }));
    }

    #[test]
    fn builder_builds_scheme_named_after_its_key() {
        let g = weighted_graph(60, 36);
        let b = Thm16Builder::new(3);
        assert_eq!(b.key(), "thm16k3");
        let ctx = BuildContext::with_seed(11);
        let scheme = b.build(&g, &ctx).unwrap();
        assert_eq!(scheme.name(), "thm16k3");
        let out = simulate(&g, scheme.as_ref(), VertexId(0), VertexId(59)).unwrap();
        assert_eq!(out.destination(), VertexId(59));
    }
}
