//! The Thorup–Zwick machinery: the level hierarchy `A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}`,
//! bunches and clusters, the `(4k−5)`-stretch compact routing scheme \[21\]
//! and the `(2k−1)`-stretch distance oracle \[22\].
//!
//! These are the baselines of the paper's Table 1 (`k=2` gives the 3-stretch
//! `Õ(√n)`-space routing scheme, `k=3` the 7-stretch `Õ(n^{1/3})`-space
//! scheme) and the substrate reused by Theorem 16.
//!
//! # Construction
//!
//! For parameter `k ≥ 2` the hierarchy samples nested levels
//! `A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1}`, each from the previous with probability
//! `n^{-1/k}` — except `A_1`, which is chosen with **Lemma 4 of the host
//! paper** ([`routing_vicinity::sample_centers_bounded`]) so that every
//! level-0 cluster has `O(n^{1/k})` vertices deterministically; this is the
//! very observation Roditty & Tov cite for turning the generic `4k−3`
//! routing stretch into `4k−5`. Every vertex `v` then stores
//!
//! * its **pivots** `p_i(v)` — the nearest `A_i`-vertex, with ties broken
//!   towards the higher level so `v ∈ C(p_i(v))` always holds (the "tie
//!   inheritance" rule of TZ §3), and
//! * its **bunch** `B(v) = ⋃_i {w ∈ A_i \ A_{i+1} : d(v, w) < d(v, A_{i+1})}`,
//!   of expected size `O(k·n^{1/k})`,
//!
//! and every `w` a **cluster tree** `T_{C(w)}` over
//! `C(w) = {v : d(w, v) < d(v, A_{level(w)+1})}` — the inverse of the bunch
//! relation (`v ∈ C(w) ⇔ w ∈ B(v)`) — routed with the Lemma 3 tree scheme
//! (`routing-tree`).
//!
//! # Routing and querying
//!
//! The routing scheme walks the pivot ladder: try `w = p_0(v), p_1(v), ...`
//! until the current vertex's bunch certifies `u ∈ C(w)` (TZ prove the
//! ladder stops within distance `(2i+1)·d(u, v)` at level `i`), then
//! finishes on the cluster tree `T_{C(w)}` using the tree label embedded in
//! `v`'s label. The distance oracle answers from bunches alone with the
//! classic ping-pong scan, returning `d̂(u, v) ≤ (2k−1)·d(u, v)` in `O(k)`
//! time.
//!
//! Preprocessing fans its `n` restricted cluster searches (the dominant
//! cost) out over [`routing_par::threads`] worker threads; sampling stays on
//! the caller's thread, so the built hierarchy is bit-identical for every
//! thread count.

use std::collections::HashMap;

use rand::Rng;

use routing_core::{BuildContext, BuildError, SchemeBuilder};
use routing_graph::shortest_path::multi_source_dijkstra;
use routing_graph::{Graph, SearchScratch, VertexId, Weight, INFINITY};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};
use routing_tree::{tree_route_step, TreeLabel, TreeScheme};
use routing_vicinity::sample_centers_bounded;

/// The Thorup–Zwick level hierarchy with pivots, bunches and cluster trees.
#[derive(Debug, Clone)]
pub struct TzHierarchy {
    k: usize,
    n: usize,
    /// `levels[i]` = the set `A_i` (sorted); `levels[0]` is all of `V`.
    levels: Vec<Vec<VertexId>>,
    /// `pivots[i][v]` = `(p_i(v), d(v, A_i))`; `pivots[0][v] = (v, 0)`.
    pivots: Vec<Vec<(VertexId, Weight)>>,
    /// The highest level that contains each vertex.
    level_of: Vec<usize>,
    /// `bunches[v]` = `B(v)` with distances, sorted by `(distance, id)`.
    bunches: Vec<Vec<(VertexId, Weight)>>,
    /// The cluster tree `T(w)` of every vertex `w` (rooted at `w`, spanning
    /// `C(w)` with respect to `w`'s level).
    // lint:allow(det-hash-iter): keyed lookup by pivot at query time; never iterated
    cluster_trees: HashMap<VertexId, TreeScheme>,
}

impl TzHierarchy {
    /// Builds the hierarchy for parameter `k ≥ 2`.
    ///
    /// `A_1` is chosen with Lemma 4 so that the clusters of level-0 vertices
    /// have `O(n^{1/k})` vertices (this is what turns the generic `4k−3`
    /// stretch into `4k−5`); the higher levels are obtained by sampling each
    /// vertex of the previous level with probability `n^{-1/k}`. Every level
    /// below `k` is forced to stay non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadParameter`] if `k < 2` and
    /// [`BuildError::TooSmall`] on an empty graph.
    pub fn build<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Result<Self, BuildError> {
        if k < 2 {
            return Err(BuildError::BadParameter {
                what: format!("thorup-zwick hierarchy needs k >= 2, got {k}"),
            });
        }
        let n = g.n();
        if n == 0 {
            return Err(BuildError::TooSmall {
                what: "thorup-zwick hierarchy needs at least one vertex".into(),
            });
        }
        let p = (n as f64).powf(-1.0 / k as f64);

        // Levels.
        let span_levels = routing_obs::span("levels");
        let mut levels: Vec<Vec<VertexId>> = Vec::with_capacity(k);
        levels.push(g.vertices().collect());
        let s1 = ((n as f64).powf(1.0 - 1.0 / k as f64).ceil() as usize).clamp(1, n);
        let a1 = sample_centers_bounded(g, s1, rng).members().to_vec();
        levels.push(if a1.is_empty() { vec![VertexId(0)] } else { a1 });
        for _ in 2..k {
            let prev = levels.last().expect("levels is non-empty");
            let mut next: Vec<VertexId> = prev.iter().copied().filter(|_| rng.gen::<f64>() < p).collect();
            if next.is_empty() {
                next.push(prev[0]);
            }
            levels.push(next);
        }

        let mut level_of = vec![0usize; n];
        for (i, level) in levels.iter().enumerate() {
            for &v in level {
                level_of[v.index()] = level_of[v.index()].max(i);
            }
        }
        drop(span_levels);

        // Pivots per level.
        let span_pivots = routing_obs::span("pivots");
        let mut pivots: Vec<Vec<(VertexId, Weight)>> = Vec::with_capacity(k);
        pivots.push(g.vertices().map(|v| (v, 0)).collect());
        for level in levels.iter().skip(1) {
            let ms = multi_source_dijkstra(g, level);
            pivots.push(
                g.vertices()
                    .map(|v| (ms.nearest(v).unwrap_or(v), ms.dist(v).unwrap_or(INFINITY)))
                    .collect(),
            );
        }
        // Tie inheritance (Thorup–Zwick): when d(v, A_i) = d(v, A_{i+1}) use
        // the higher-level pivot, so that v is guaranteed to lie in the
        // cluster of each of its pivots.
        for i in (1..k.saturating_sub(1)).rev() {
            for v in 0..n {
                if pivots[i][v].1 == pivots[i + 1][v].1 {
                    pivots[i][v] = pivots[i + 1][v];
                }
            }
        }

        // Clusters (and their trees) with respect to each vertex's level, and
        // the bunches obtained by inverting them. One restricted search plus
        // one heavy-path decomposition per vertex — the dominant cost of the
        // build — fanned out in parallel; the bunch inversion below merges in
        // ascending `w` order, so the hierarchy is thread-count independent.
        drop(span_pivots);
        let _span_ct = routing_obs::span("cluster-trees");
        let per_w: Vec<(Vec<(VertexId, Weight)>, TreeScheme)> = routing_par::par_map_scratch(
            n,
            || (SearchScratch::for_graph(g), vec![INFINITY; n]),
            |(scratch, bound), w| {
                let w = VertexId(w as u32);
                let lvl = level_of[w.index()];
                if lvl + 1 < k {
                    for v in 0..n {
                        bound[v] = pivots[lvl + 1][v].1;
                    }
                } else {
                    bound.fill(INFINITY);
                }
                scratch.cluster_into(g, w, bound);
                let tree = TreeScheme::from_scratch(g, scratch)
                    .expect("restricted tree of a connected component is valid");
                (scratch.order().to_vec(), tree)
            },
        );
        // lint:allow(det-hash-iter): filled in vertex order, read by key; never iterated
        let mut cluster_trees = HashMap::with_capacity(n);
        let mut bunches: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); n];
        for (w, (members, tree)) in per_w.into_iter().enumerate() {
            let w = VertexId(w as u32);
            for (v, d) in members {
                bunches[v.index()].push((w, d));
            }
            cluster_trees.insert(w, tree);
        }
        for bunch in &mut bunches {
            bunch.sort_unstable_by_key(|&(w, d)| (d, w));
        }

        Ok(TzHierarchy { k, n, levels, pivots, level_of, bunches, cluster_trees })
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The level sets `A_0, ..., A_{k-1}`.
    pub fn levels(&self) -> &[Vec<VertexId>] {
        &self.levels
    }

    /// The highest level containing `v`.
    pub fn level_of(&self, v: VertexId) -> usize {
        self.level_of[v.index()]
    }

    /// `(p_i(v), d(v, A_i))`.
    pub fn pivot(&self, i: usize, v: VertexId) -> (VertexId, Weight) {
        self.pivots[i][v.index()]
    }

    /// The bunch `B(v)` with distances.
    pub fn bunch(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.bunches[v.index()]
    }

    /// The cluster tree `T(w)`.
    pub fn cluster_tree(&self, w: VertexId) -> &TreeScheme {
        &self.cluster_trees[&w]
    }

    /// All bunches as raw per-vertex lists, for flattening into a
    /// [`FlatBunches`] table (shared with the Theorem 16 scheme).
    pub(crate) fn bunches_raw(&self) -> &[Vec<(VertexId, Weight)>] {
        &self.bunches
    }

    /// The largest bunch size (a `Õ(k·n^{1/k})` quantity).
    pub fn max_bunch_size(&self) -> usize {
        self.bunches.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// All bunches `B(v)` flattened into one id-sorted CSR table.
///
/// The query path of the oracle and the routing scheme is a **membership
/// probe** — "is `w ∈ B(v)`, and at what distance?" — which used to go
/// through one `HashMap`/`HashSet` per vertex. Here every bunch is a
/// contiguous id-sorted slice of `(w, d(v, w))` pairs inside two flat
/// arrays, so the probe is a binary search over adjacent memory: no hashing,
/// no per-vertex allocations, and the whole structure is two `Vec`s
/// regardless of `n`.
#[derive(Debug, Clone)]
pub(crate) struct FlatBunches {
    /// `offsets[v]..offsets[v+1]` indexes `entries` for vertex `v`.
    offsets: Vec<u32>,
    /// Bunch entries `(w, d(v, w))`, sorted by `w` within each vertex.
    entries: Vec<(VertexId, Weight)>,
}

impl FlatBunches {
    /// Flattens per-vertex bunch lists (any order) into the CSR form.
    pub(crate) fn new(bunches: &[Vec<(VertexId, Weight)>]) -> Self {
        let total = bunches.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(bunches.len() + 1);
        let mut entries = Vec::with_capacity(total);
        offsets.push(0u32);
        for bunch in bunches {
            let start = entries.len();
            entries.extend_from_slice(bunch);
            entries[start..].sort_unstable_by_key(|&(w, _)| w);
            offsets.push(entries.len() as u32);
        }
        FlatBunches { offsets, entries }
    }

    /// `d(v, w)` if `w ∈ B(v)`.
    #[inline]
    pub(crate) fn get(&self, v: VertexId, w: VertexId) -> Option<Weight> {
        let slice =
            &self.entries[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize];
        slice
            .binary_search_by_key(&w, |&(x, _)| x)
            .ok()
            .map(|i| slice[i].1)
    }

    /// True if `w ∈ B(v)`.
    #[inline]
    pub(crate) fn contains(&self, v: VertexId, w: VertexId) -> bool {
        self.get(v, w).is_some()
    }
}

/// The Thorup–Zwick `(2k−1)`-stretch distance oracle \[22\].
#[derive(Debug, Clone)]
pub struct TzOracle {
    hierarchy: TzHierarchy,
    /// Bunch distances as one flat id-sorted CSR table (see [`FlatBunches`]).
    bunch_dist: FlatBunches,
}

impl TzOracle {
    /// Builds the oracle on top of an existing hierarchy.
    pub fn new(hierarchy: TzHierarchy) -> Self {
        let bunch_dist = FlatBunches::new(&hierarchy.bunches);
        TzOracle { hierarchy, bunch_dist }
    }

    /// Builds the hierarchy and the oracle in one step.
    ///
    /// # Errors
    ///
    /// As [`TzHierarchy::build`].
    pub fn build<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Result<Self, BuildError> {
        Ok(Self::new(TzHierarchy::build(g, k, rng)?))
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &TzHierarchy {
        &self.hierarchy
    }

    /// Returns a `(2k−1)`-stretch estimate of `d(u, v)`.
    pub fn query(&self, u: VertexId, v: VertexId) -> Weight {
        if u == v {
            return 0;
        }
        let (mut u, mut v) = (u, v);
        let mut w = u;
        let mut i = 0usize;
        loop {
            if let Some(dwv) = self.bunch_dist.get(v, w) {
                let dwu = self.bunch_dist.get(u, w).unwrap_or_else(|| {
                    // w is p_i(u), so d(u, w) is the pivot distance.
                    self.hierarchy.pivots[i][u.index()].1
                });
                return dwu + dwv;
            }
            i += 1;
            std::mem::swap(&mut u, &mut v);
            w = self.hierarchy.pivots[i][u.index()].0;
        }
    }

    /// Per-vertex oracle storage in `O(log n)`-bit words (bunch entries plus
    /// pivots).
    pub fn words_at(&self, v: VertexId) -> usize {
        2 * self.hierarchy.bunch(v).len() + 2 * self.hierarchy.k()
    }
}

/// Label of a destination in the `(4k−5)` routing scheme.
#[derive(Debug, Clone)]
pub struct TzLabel {
    /// The destination vertex.
    pub vertex: VertexId,
    /// `p_i(v)` for `i = 0..k`.
    pub pivots: Vec<VertexId>,
    /// The label of `v` in `T(p_i(v))`, aligned with `pivots`.
    pub tree_labels: Vec<TreeLabel>,
}

impl TzLabel {
    /// Size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        1 + self.pivots.len() + self.tree_labels.iter().map(TreeLabel::words).sum::<usize>()
    }
}

/// Header of the `(4k−5)` routing scheme: the chosen cluster-tree root and
/// the destination's label in that tree.
#[derive(Debug, Clone)]
pub struct TzHeader {
    root: VertexId,
    label: TreeLabel,
}

impl HeaderSize for TzHeader {
    fn words(&self) -> usize {
        1 + self.label.words()
    }
}

/// The Thorup–Zwick `(4k−5)`-stretch compact routing scheme \[21\].
#[derive(Debug, Clone)]
pub struct TzRoutingScheme {
    /// Cached scheme name: the registry key `tz<k>` (`tz2`, `tz3`, ...).
    name: String,
    hierarchy: TzHierarchy,
    /// Bunch membership for routing decisions at the source, as one flat
    /// id-sorted CSR table probed by binary search (see [`FlatBunches`]).
    bunch_set: FlatBunches,
}

impl TzRoutingScheme {
    /// Builds the scheme on top of an existing hierarchy.
    pub fn new(hierarchy: TzHierarchy) -> Self {
        let _span = routing_obs::span("bunches");
        let bunch_set = FlatBunches::new(&hierarchy.bunches);
        TzRoutingScheme { name: format!("tz{}", hierarchy.k()), hierarchy, bunch_set }
    }

    /// Builds the hierarchy and the scheme in one step.
    ///
    /// # Errors
    ///
    /// As [`TzHierarchy::build`].
    pub fn build<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Result<Self, BuildError> {
        Ok(Self::new(TzHierarchy::build(g, k, rng)?))
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &TzHierarchy {
        &self.hierarchy
    }

    /// The stretch guarantee `4k − 5`.
    pub fn stretch_bound(&self) -> usize {
        4 * self.hierarchy.k() - 5
    }
}

impl RoutingScheme for TzRoutingScheme {
    type Label = TzLabel;
    type Header = TzHeader;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.hierarchy.n()
    }

    fn label_of(&self, v: VertexId) -> TzLabel {
        let k = self.hierarchy.k();
        let mut pivots = Vec::with_capacity(k);
        let mut tree_labels = Vec::with_capacity(k);
        for i in 0..k {
            let (p, _) = self.hierarchy.pivot(i, v);
            pivots.push(p);
            tree_labels.push(
                self.hierarchy
                    .cluster_tree(p)
                    .label(v)
                    .cloned()
                    .unwrap_or(TreeLabel { tin: u32::MAX, light_ports: Vec::new() }),
            );
        }
        TzLabel { vertex: v, pivots, tree_labels }
    }

    fn init_header(&self, source: VertexId, dest: &TzLabel) -> Result<TzHeader, RouteError> {
        let v = dest.vertex;
        if source == v {
            routing_obs::counters::ROUTING_PHASE_DIRECT.inc();
            return Ok(TzHeader { root: v, label: TreeLabel { tin: 0, light_ports: Vec::new() } });
        }
        // 4k-5 improvement: if v is in the source's own cluster, route on the
        // source's cluster tree with the label stored at the source.
        if let Some(label) = self.hierarchy.cluster_tree(source).label(v) {
            routing_obs::counters::ROUTING_PHASE_TREE.inc();
            return Ok(TzHeader { root: source, label: label.clone() });
        }
        for i in 0..self.hierarchy.k() {
            let w = dest.pivots[i];
            if w == source || self.bunch_set.contains(source, w) {
                let label = dest.tree_labels[i].clone();
                if label.tin == u32::MAX {
                    return Err(RouteError::BadLabel {
                        what: format!("{v} has no label in the cluster tree of pivot {w}"),
                    });
                }
                routing_obs::counters::ROUTING_PHASE_TREE.inc();
                return Ok(TzHeader { root: w, label });
            }
        }
        Err(RouteError::MissingInformation {
            at: source,
            what: format!("no pivot of {v} intersects the bunch of {source}"),
        })
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut TzHeader,
        dest: &TzLabel,
    ) -> Result<Decision, RouteError> {
        if at == dest.vertex {
            return Ok(Decision::Deliver);
        }
        let tree = self.hierarchy.cluster_tree(header.root);
        let node = tree.node_info(at).ok_or_else(|| RouteError::MissingInformation {
            at,
            what: format!("no routing information for cluster tree T({})", header.root),
        })?;
        tree_route_step(node, &header.label).map_err(|e| match e {
            RouteError::MissingInformation { what, .. } => RouteError::MissingInformation { at, what },
            other => other,
        })
    }

    fn table_words(&self, v: VertexId) -> usize {
        let bunch = self.hierarchy.bunch(v);
        let membership: usize = bunch
            .iter()
            .map(|&(w, _)| self.hierarchy.cluster_tree(w).table_words(v))
            .sum();
        let own_labels: usize = self
            .hierarchy
            .cluster_tree(v)
            .vertices()
            .map(|x| self.hierarchy.cluster_tree(v).label(x).map(TreeLabel::words).unwrap_or(0))
            .sum();
        2 * bunch.len() + membership + own_labels + 2 * self.hierarchy.k()
    }

    fn label_words(&self, v: VertexId) -> usize {
        self.label_of(v).words()
    }
}

/// [`SchemeBuilder`] for the Thorup–Zwick `(4k−5)` routing scheme; its
/// registry key is `tz<k>` (the two Table 1 rows are `tz2` and `tz3`).
#[derive(Debug, Clone)]
pub struct TzBuilder {
    k: usize,
    key: String,
}

impl TzBuilder {
    /// A builder for the given level count `k ≥ 2`.
    pub fn new(k: usize) -> Self {
        TzBuilder { k, key: format!("tz{k}") }
    }
}

impl SchemeBuilder for TzBuilder {
    fn key(&self) -> &str {
        &self.key
    }

    fn build(&self, g: &Graph, ctx: &BuildContext) -> Result<Box<dyn routing_model::DynScheme>, BuildError> {
        Ok(Box::new(TzRoutingScheme::build(g, self.k, &mut ctx.rng())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};
    use routing_model::simulate;

    fn weighted_graph(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::erdos_renyi(n, 0.07, WeightModel::Uniform { lo: 1, hi: 10 }, &mut rng)
    }

    #[test]
    fn hierarchy_levels_are_nested_and_nonempty() {
        let g = weighted_graph(80, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let h = TzHierarchy::build(&g, 3, &mut rng).unwrap();
        assert_eq!(h.k(), 3);
        assert_eq!(h.levels().len(), 3);
        assert_eq!(h.levels()[0].len(), 80);
        for i in 1..3 {
            assert!(!h.levels()[i].is_empty());
            let prev: HashSet<_> = h.levels()[i - 1].iter().collect();
            assert!(h.levels()[i].iter().all(|v| prev.contains(v)), "levels must be nested");
        }
        assert!(h.max_bunch_size() >= 1);
        // Pivot at level 0 is the vertex itself.
        for v in g.vertices() {
            assert_eq!(h.pivot(0, v), (v, 0));
            assert!(h.level_of(v) < 3);
        }
    }

    #[test]
    fn bunch_and_cluster_are_dual() {
        let g = weighted_graph(60, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let h = TzHierarchy::build(&g, 2, &mut rng).unwrap();
        for v in g.vertices() {
            for &(w, d) in h.bunch(v) {
                assert!(h.cluster_tree(w).contains(v));
                let spt = routing_graph::shortest_path::dijkstra(&g, w);
                assert_eq!(spt.dist(v), Some(d));
            }
        }
    }

    #[test]
    fn oracle_respects_2k_minus_1_stretch() {
        let g = weighted_graph(70, 5);
        let exact = DistanceMatrix::new(&g);
        for k in [2usize, 3] {
            let mut rng = StdRng::seed_from_u64(6 + k as u64);
            let oracle = TzOracle::build(&g, k, &mut rng).unwrap();
            for u in g.vertices() {
                for v in g.vertices() {
                    let est = oracle.query(u, v);
                    let d = exact.dist(u, v).unwrap();
                    assert!(est >= d, "oracle must never underestimate");
                    assert!(
                        est <= (2 * k as u64 - 1) * d,
                        "oracle stretch violated for k={k}: {est} vs {d}"
                    );
                }
                assert_eq!(oracle.query(u, u), 0);
                assert!(oracle.words_at(u) > 0);
            }
        }
    }

    #[test]
    fn routing_respects_4k_minus_5_stretch() {
        let g = weighted_graph(70, 7);
        let exact = DistanceMatrix::new(&g);
        for k in [2usize, 3] {
            let mut rng = StdRng::seed_from_u64(8 + k as u64);
            let scheme = TzRoutingScheme::build(&g, k, &mut rng).unwrap();
            assert_eq!(scheme.stretch_bound(), 4 * k - 5);
            for u in g.vertices() {
                for v in g.vertices() {
                    if u == v {
                        continue;
                    }
                    let out = simulate(&g, &scheme, u, v).unwrap();
                    let d = exact.dist(u, v).unwrap();
                    assert!(
                        out.weight <= (4 * k as u64 - 5) * d,
                        "tz routing stretch violated for k={k} {u}->{v}: {} vs {d}",
                        out.weight
                    );
                }
            }
        }
    }

    #[test]
    fn routing_tables_shrink_with_larger_k() {
        let g = weighted_graph(100, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let s2 = TzRoutingScheme::build(&g, 2, &mut rng).unwrap();
        let s3 = TzRoutingScheme::build(&g, 3, &mut rng).unwrap();
        let max2: usize = g.vertices().map(|v| s2.table_words(v)).max().unwrap();
        let max3: usize = g.vertices().map(|v| s3.table_words(v)).max().unwrap();
        // k=3 trades stretch for noticeably smaller tables on average; allow
        // slack on the max because the top level always spans V.
        let mean2: f64 = g.vertices().map(|v| s2.table_words(v)).sum::<usize>() as f64 / 100.0;
        let mean3: f64 = g.vertices().map(|v| s3.table_words(v)).sum::<usize>() as f64 / 100.0;
        assert!(mean3 < mean2 * 1.5, "mean table size should not grow much: {mean3} vs {mean2}");
        assert!(max2 > 0 && max3 > 0);
        assert_eq!(s2.name(), "tz2");
        assert_eq!(s3.name(), "tz3");
        for v in g.vertices().take(5) {
            assert!(s2.label_words(v) >= 3);
        }
    }

    #[test]
    fn self_route_and_metadata() {
        let g = generators::grid(5, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let scheme = TzRoutingScheme::build(&g, 2, &mut rng).unwrap();
        let out = simulate(&g, &scheme, VertexId(3), VertexId(3)).unwrap();
        assert_eq!(out.hops, 0);
        assert_eq!(RoutingScheme::n(&scheme), 25);
        assert_eq!(scheme.hierarchy().n(), 25);
    }
}
