//! The greedy `(2k−1)`-spanner (Althöfer–Das–Dobkin–Joseph–Soares, 1993),
//! included because the paper's introduction frames spanners, distance
//! oracles and routing schemes as three views of the same stretch/space
//! trade-off governed by the girth conjecture:
//!
//! * a `(2k−1)`-**spanner** with `O(n^{1+1/k})` edges (this module),
//! * a `(2k−1)`-stretch **distance oracle** with `O(k·n^{1+1/k})` space
//!   (Thorup–Zwick \[22\], [`crate::tz::TzOracle`]),
//! * a `(4k−5)`-stretch **compact routing scheme** with `Õ(n^{1/k})`-word
//!   tables (Thorup–Zwick \[21\], [`crate::tz::TzRoutingScheme`]) — the
//!   prior art whose stretch the paper's Theorems 10 and 11 beat at equal
//!   space.
//!
//! The greedy construction is the classic generalization of Kruskal's
//! algorithm: scan edges by non-decreasing weight and keep an edge `(u, v)`
//! only if the spanner built so far has no `u`–`v` path of weight at most
//! `(2k−1)·w(u, v)`. Every kept edge therefore closes no cycle of length
//! `≤ 2k`, so the result has girth `> 2k`, and by the Bondy–Simonovits
//! bound any graph with `Ω(n^{1+1/k})` edges contains such a cycle — which
//! is what caps the spanner at `O(n^{1+1/k})` edges. The stretch bound is
//! immediate: a discarded edge is certified by a `(2k−1)`-approximate
//! detour, and shortest paths compose such certificates edge by edge.

use routing_core::{BuildContext, BuildError, SchemeBuilder};
use routing_graph::SearchScratch;
use routing_graph::{Graph, GraphBuilder, Port, VertexId};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};

/// Computes the greedy `(2k−1)`-spanner of `g`: edges are scanned in
/// non-decreasing weight order and kept only if the spanner built so far has
/// no path of weight at most `(2k−1)` times the edge weight between its
/// endpoints.
///
/// The result has girth greater than `2k`, hence `O(n^{1+1/k})` edges, and
/// preserves all distances within a factor `2k−1`.
pub fn greedy_spanner(g: &Graph, k: usize) -> Graph {
    let k = k.max(1);
    let factor = (2 * k - 1) as u128;
    let mut edges: Vec<_> = g.all_edges().collect();
    edges.sort_by_key(|&(u, v, w)| (w, u, v));
    let mut builder = GraphBuilder::new(g.n());
    let mut spanner = builder.clone().build();
    // One workspace reused across all O(m) distance queries.
    let mut scratch = SearchScratch::new(g.n());
    for (u, v, w) in edges {
        // Distance between u and v in the current spanner.
        scratch.dijkstra_into(&spanner, u);
        let keep = match scratch.dist(v) {
            Some(d) => (d as u128) > factor * (w as u128),
            None => true,
        };
        if keep {
            builder.add_edge(u.index(), v.index(), w).expect("edge comes from a valid graph");
            spanner = builder.clone().build();
        }
    }
    spanner
}

/// Header for spanner routing (nothing needs to be carried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpannerHeader;

impl HeaderSize for SpannerHeader {
    fn words(&self) -> usize {
        0
    }
}

/// Shortest-path routing **restricted to a greedy `(2k−1)`-spanner** of the
/// input graph: full next-hop tables are computed on the spanner's shortest
/// paths, then expressed as ports of the *original* graph, so messages
/// travel on real links but only ever use spanner edges.
///
/// This is the routing view of the girth-conjecture storyline in the module
/// docs: the spanner certifies that every distance survives within a factor
/// `2k−1` after throwing away all but `O(n^{1+1/k})` edges, and this scheme
/// realizes that certificate as routes. The per-vertex table is still
/// `Θ(n)` words (it is the *edge set*, not the table, that the spanner
/// compresses — that is exactly why the paper's compact schemes are a
/// different trade-off), so the interesting measured quantities are the
/// kept-edge count ([`SpannerScheme::spanner_edges`]) and the observed
/// stretch `≤ 2k−1`.
#[derive(Debug, Clone)]
pub struct SpannerScheme {
    n: usize,
    k: usize,
    spanner_m: usize,
    /// `next[u][v]` = port **in the original graph** towards `v` along a
    /// spanner shortest path (`None` on the diagonal or for unreachable
    /// pairs).
    next: Vec<Vec<Option<Port>>>,
}

impl SpannerScheme {
    /// Computes the greedy `(2k−1)`-spanner of `g` and full next-hop tables
    /// on it (one Dijkstra per destination on the spanner, fanned out over
    /// [`routing_par::threads`] threads).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TooSmall`] on an empty graph and
    /// [`BuildError::BadParameter`] for `k < 1`.
    pub fn build(g: &Graph, k: usize) -> Result<Self, BuildError> {
        if g.n() == 0 {
            return Err(BuildError::TooSmall {
                what: "spanner routing needs at least one vertex".into(),
            });
        }
        if k < 1 {
            return Err(BuildError::BadParameter {
                what: format!("spanner parameter k must be >= 1, got {k}"),
            });
        }
        let n = g.n();
        let span_greedy = routing_obs::span("greedy-spanner");
        let spanner = greedy_spanner(g, k);
        drop(span_greedy);
        // Column v comes from the spanner tree rooted at v; the parent edge
        // exists in g (the spanner's edges are a subset), so it has a port.
        // One reused search workspace per worker thread.
        let span_cols = routing_obs::span("dijkstra-columns");
        let columns: Vec<Vec<Option<Port>>> = routing_par::par_map_scratch(
            n,
            || SearchScratch::for_graph(&spanner),
            |scratch, v| {
                let v = VertexId(v as u32);
                scratch.dijkstra_into(&spanner, v);
                g.vertices()
                    .map(|u| {
                        if u == v {
                            None
                        } else {
                            scratch.parent(u).and_then(|p| g.port_to(u, p))
                        }
                    })
                    .collect()
            },
        );
        drop(span_cols);
        let _span_next = routing_obs::span("next-table");
        let mut next = vec![vec![None; n]; n];
        for (v, column) in columns.into_iter().enumerate() {
            for (u, port) in column.into_iter().enumerate() {
                next[u][v] = port;
            }
        }
        Ok(SpannerScheme { n, k, spanner_m: spanner.m(), next })
    }

    /// The spanner parameter `k` (stretch bound `2k−1`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of edges the greedy spanner kept (`O(n^{1+1/k})`).
    pub fn spanner_edges(&self) -> usize {
        self.spanner_m
    }

    /// The stretch guarantee `2k − 1`.
    pub fn stretch_bound(&self) -> usize {
        2 * self.k - 1
    }
}

impl RoutingScheme for SpannerScheme {
    type Label = VertexId;
    type Header = SpannerHeader;

    fn name(&self) -> &str {
        "spanner"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn label_of(&self, v: VertexId) -> VertexId {
        v
    }

    fn init_header(&self, _source: VertexId, dest: &VertexId) -> Result<SpannerHeader, RouteError> {
        if dest.index() >= self.n {
            return Err(RouteError::BadLabel { what: format!("{dest} is not a vertex") });
        }
        Ok(SpannerHeader)
    }

    fn decide(
        &self,
        at: VertexId,
        _header: &mut SpannerHeader,
        dest: &VertexId,
    ) -> Result<Decision, RouteError> {
        if at == *dest {
            return Ok(Decision::Deliver);
        }
        self.next[at.index()][dest.index()]
            .map(Decision::Forward)
            .ok_or_else(|| RouteError::MissingInformation {
                at,
                what: format!("{dest} is unreachable in the spanner"),
            })
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.next[v.index()].iter().filter(|p| p.is_some()).count()
    }

    fn label_words(&self, _v: VertexId) -> usize {
        1
    }
}

/// [`SchemeBuilder`] for [`SpannerScheme`]; registry key `spanner`
/// (the default registration uses `k = 2`, the 3-stretch spanner).
#[derive(Debug, Clone, Copy)]
pub struct SpannerBuilder {
    /// The spanner parameter `k`.
    pub k: usize,
}

impl Default for SpannerBuilder {
    fn default() -> Self {
        SpannerBuilder { k: 2 }
    }
}

impl SchemeBuilder for SpannerBuilder {
    fn key(&self) -> &str {
        "spanner"
    }

    fn build(&self, g: &Graph, _ctx: &BuildContext) -> Result<Box<dyn routing_model::DynScheme>, BuildError> {
        Ok(Box::new(SpannerScheme::build(g, self.k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};

    #[test]
    fn spanner_preserves_distances_within_stretch() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(50, 0.15, WeightModel::Uniform { lo: 1, hi: 10 }, &mut rng);
        for k in [2usize, 3] {
            let h = greedy_spanner(&g, k);
            assert!(h.m() <= g.m());
            let dg = DistanceMatrix::new(&g);
            let dh = DistanceMatrix::new(&h);
            for u in g.vertices() {
                for v in g.vertices() {
                    if u == v {
                        continue;
                    }
                    let orig = dg.dist(u, v).unwrap();
                    let span = dh.dist(u, v).unwrap();
                    assert!(
                        span <= (2 * k as u64 - 1) * orig,
                        "spanner stretch violated for k={k}: {span} vs {orig}"
                    );
                }
            }
        }
    }

    #[test]
    fn spanner_of_a_tree_is_the_tree() {
        let g = generators::binary_tree(31);
        let h = greedy_spanner(&g, 2);
        assert_eq!(h.m(), g.m());
    }

    #[test]
    fn larger_k_gives_sparser_spanner() {
        let g = generators::complete(30);
        let h2 = greedy_spanner(&g, 2);
        let h4 = greedy_spanner(&g, 4);
        assert!(h4.m() <= h2.m());
        assert!(h2.m() < g.m());
    }

    #[test]
    fn spanner_scheme_routes_within_stretch_on_original_ports() {
        use routing_model::simulate;
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::erdos_renyi(40, 0.2, WeightModel::Uniform { lo: 1, hi: 8 }, &mut rng);
        let scheme = SpannerScheme::build(&g, 2).unwrap();
        assert_eq!(scheme.name(), "spanner");
        assert_eq!(scheme.stretch_bound(), 3);
        assert!(scheme.spanner_edges() <= g.m());
        let exact = DistanceMatrix::new(&g);
        for u in g.vertices().step_by(3) {
            for v in g.vertices().step_by(5) {
                if u == v {
                    continue;
                }
                let out = simulate(&g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                assert!(out.weight >= d, "routes travel real edges, never beating d");
                assert!(
                    out.weight <= 3 * d,
                    "spanner routing stretch violated {u}->{v}: {} vs {d}",
                    out.weight
                );
            }
        }
        assert_eq!(scheme.table_words(VertexId(0)), 39);
        assert_eq!(scheme.label_words(VertexId(0)), 1);
    }

    #[test]
    fn spanner_scheme_build_rejects_degenerate_inputs() {
        let empty = GraphBuilder::new(0).build();
        assert!(matches!(
            SpannerScheme::build(&empty, 2),
            Err(BuildError::TooSmall { .. })
        ));
        let g = generators::path(3);
        assert!(matches!(
            SpannerScheme::build(&g, 0),
            Err(BuildError::BadParameter { .. })
        ));
    }

    #[test]
    fn spanner_builder_key_matches_scheme_name() {
        let g = generators::cycle(12);
        let b = SpannerBuilder::default();
        let scheme = b.build(&g, &routing_core::BuildContext::with_seed(1)).unwrap();
        assert_eq!(scheme.name(), b.key());
        assert_eq!(scheme.n(), 12);
    }
}
