//! The greedy `(2k−1)`-spanner (Althöfer–Das–Dobkin–Joseph–Soares, 1993),
//! included because the paper's introduction frames spanners, distance
//! oracles and routing schemes as three views of the same stretch/space
//! trade-off governed by the girth conjecture:
//!
//! * a `(2k−1)`-**spanner** with `O(n^{1+1/k})` edges (this module),
//! * a `(2k−1)`-stretch **distance oracle** with `O(k·n^{1+1/k})` space
//!   (Thorup–Zwick \[22\], [`crate::tz::TzOracle`]),
//! * a `(4k−5)`-stretch **compact routing scheme** with `Õ(n^{1/k})`-word
//!   tables (Thorup–Zwick \[21\], [`crate::tz::TzRoutingScheme`]) — the
//!   prior art whose stretch the paper's Theorems 10 and 11 beat at equal
//!   space.
//!
//! The greedy construction is the classic generalization of Kruskal's
//! algorithm: scan edges by non-decreasing weight and keep an edge `(u, v)`
//! only if the spanner built so far has no `u`–`v` path of weight at most
//! `(2k−1)·w(u, v)`. Every kept edge therefore closes no cycle of length
//! `≤ 2k`, so the result has girth `> 2k`, and by the Bondy–Simonovits
//! bound any graph with `Ω(n^{1+1/k})` edges contains such a cycle — which
//! is what caps the spanner at `O(n^{1+1/k})` edges. The stretch bound is
//! immediate: a discarded edge is certified by a `(2k−1)`-approximate
//! detour, and shortest paths compose such certificates edge by edge.

use routing_graph::shortest_path::dijkstra;
use routing_graph::{Graph, GraphBuilder};

/// Computes the greedy `(2k−1)`-spanner of `g`: edges are scanned in
/// non-decreasing weight order and kept only if the spanner built so far has
/// no path of weight at most `(2k−1)` times the edge weight between its
/// endpoints.
///
/// The result has girth greater than `2k`, hence `O(n^{1+1/k})` edges, and
/// preserves all distances within a factor `2k−1`.
pub fn greedy_spanner(g: &Graph, k: usize) -> Graph {
    let k = k.max(1);
    let factor = (2 * k - 1) as u128;
    let mut edges: Vec<_> = g.all_edges().collect();
    edges.sort_by_key(|&(u, v, w)| (w, u, v));
    let mut builder = GraphBuilder::new(g.n());
    let mut spanner = builder.clone().build();
    for (u, v, w) in edges {
        // Distance between u and v in the current spanner.
        let keep = match dijkstra(&spanner, u).dist(v) {
            Some(d) => (d as u128) > factor * (w as u128),
            None => true,
        };
        if keep {
            builder.add_edge(u.index(), v.index(), w).expect("edge comes from a valid graph");
            spanner = builder.clone().build();
        }
    }
    spanner
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators::{self, WeightModel};

    #[test]
    fn spanner_preserves_distances_within_stretch() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(50, 0.15, WeightModel::Uniform { lo: 1, hi: 10 }, &mut rng);
        for k in [2usize, 3] {
            let h = greedy_spanner(&g, k);
            assert!(h.m() <= g.m());
            let dg = DistanceMatrix::new(&g);
            let dh = DistanceMatrix::new(&h);
            for u in g.vertices() {
                for v in g.vertices() {
                    if u == v {
                        continue;
                    }
                    let orig = dg.dist(u, v).unwrap();
                    let span = dh.dist(u, v).unwrap();
                    assert!(
                        span <= (2 * k as u64 - 1) * orig,
                        "spanner stretch violated for k={k}: {span} vs {orig}"
                    );
                }
            }
        }
    }

    #[test]
    fn spanner_of_a_tree_is_the_tree() {
        let g = generators::binary_tree(31);
        let h = greedy_spanner(&g, 2);
        assert_eq!(h.m(), g.m());
    }

    #[test]
    fn larger_k_gives_sparser_spanner() {
        let g = generators::complete(30);
        let h2 = greedy_spanner(&g, 2);
        let h4 = greedy_spanner(&g, 4);
        assert!(h4.m() <= h2.m());
        assert!(h2.m() < g.m());
    }
}
