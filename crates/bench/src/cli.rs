//! Shared command-line flag handling for the harness binaries.
//!
//! Every registry-driven binary accepts the same core flags
//! (`--schemes`, `--n`, `--seed`, `--json`, `--family`, `--threads`, …);
//! before this module each binary re-implemented the `flag → value →
//! parse-or-die` loop and its diagnostics. The pieces they share live here:
//!
//! * [`Args`] — a cursor over `flag value` pairs with uniform
//!   missing-value diagnostics;
//! * typed value parsers ([`parse_value`], [`parse_usize_list`],
//!   [`parse_family`], [`parse_schemes`]) that return [`CliError`] with the
//!   exact `invalid value "…" for --flag: …` wording the binaries printed
//!   before;
//! * [`CliError`] — the diagnostic type, `Display`-formatted for stderr.
//!
//! Binaries keep their own `match` over flag *names* (each experiment has
//! its own flag set); what is shared is everything after the flag name is
//! recognized. [`parse_schemes`] validates scheme lists against the
//! registry's names and expands the special value `all` to every
//! registered scheme, so a new registry entry is reachable from every
//! binary with no flag-parsing edits.

use routing_graph::generators::Family;

/// A malformed command line, with the same wording the binaries printed
/// before this module existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag was given without its value.
    MissingValue {
        /// The flag missing its value.
        flag: String,
    },
    /// A value failed to parse or validate.
    Invalid {
        /// The flag whose value is bad.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        what: String,
    },
    /// A flag no binary defines.
    UnknownFlag {
        /// The unrecognized token.
        flag: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingValue { flag } => write!(f, "missing value for {flag}"),
            CliError::Invalid { flag, value, what } => {
                write!(f, "invalid value {value:?} for {flag}: {what}")
            }
            CliError::UnknownFlag { flag } => write!(f, "unknown flag {flag}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Cursor over `--flag value` pairs.
pub struct Args {
    tokens: std::vec::IntoIter<String>,
}

impl Args {
    /// A cursor over the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Args { tokens: std::env::args().skip(1).collect::<Vec<_>>().into_iter() }
    }

    /// A cursor over explicit tokens (tests).
    pub fn from_tokens<I: IntoIterator<Item = S>, S: Into<String>>(tokens: I) -> Self {
        Args { tokens: tokens.into_iter().map(Into::into).collect::<Vec<_>>().into_iter() }
    }

    /// The next flag token, or `None` when the command line is exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        self.tokens.next()
    }

    /// The value of `flag` (the next token).
    ///
    /// # Errors
    ///
    /// [`CliError::MissingValue`] when the command line ends after `flag`.
    pub fn value(&mut self, flag: &str) -> Result<String, CliError> {
        self.tokens.next().ok_or_else(|| CliError::MissingValue { flag: flag.to_string() })
    }
}

/// Parses one typed value, mapping parse failures to the standard
/// diagnostic.
///
/// # Errors
///
/// [`CliError::Invalid`] with `what` when parsing fails.
pub fn parse_value<T: std::str::FromStr>(
    flag: &str,
    value: &str,
    what: &str,
) -> Result<T, CliError> {
    value.parse().map_err(|_| CliError::Invalid {
        flag: flag.to_string(),
        value: value.to_string(),
        what: what.to_string(),
    })
}

/// Parses a comma-separated list of sizes (the `--n 1000,5000,10000` form).
/// The result is never empty: `split(',')` yields at least one piece, and
/// an empty piece fails the integer parse.
///
/// # Errors
///
/// [`CliError::Invalid`] on a non-integer (or empty) entry.
pub fn parse_usize_list(flag: &str, value: &str) -> Result<Vec<usize>, CliError> {
    value
        .split(',')
        .map(|s| parse_value(flag, s, "expected integers"))
        .collect()
}

/// Parses a graph family name.
///
/// # Errors
///
/// [`CliError::Invalid`] on an unknown family.
pub fn parse_family(flag: &str, value: &str) -> Result<Family, CliError> {
    match value {
        "erdos-renyi" => Ok(Family::ErdosRenyi),
        "geometric" => Ok(Family::Geometric),
        "grid" => Ok(Family::Grid),
        "scale-free" => Ok(Family::ScaleFree),
        _ => Err(CliError::Invalid {
            flag: flag.to_string(),
            value: value.to_string(),
            what: "unknown family".to_string(),
        }),
    }
}

/// Parses a comma-separated scheme list against the registered names,
/// expanding the special value `all` to every name in `known` (in order).
///
/// # Errors
///
/// [`CliError::Invalid`] naming the first unknown scheme.
pub fn parse_schemes(flag: &str, value: &str, known: &[&str]) -> Result<Vec<String>, CliError> {
    if value == "all" {
        return Ok(known.iter().map(|s| s.to_string()).collect());
    }
    let schemes: Vec<String> = value.split(',').map(str::to_string).collect();
    for s in &schemes {
        if !known.contains(&s.as_str()) {
            return Err(CliError::Invalid {
                flag: flag.to_string(),
                value: value.to_string(),
                what: format!("unknown scheme {s:?} (known: {})", known.join(", ")),
            });
        }
    }
    Ok(schemes)
}

/// Prints the diagnostic and invokes the binary's usage printer (which is
/// expected to exit the process).
pub fn die(e: CliError, usage: fn() -> !) -> ! {
    eprintln!("{e}");
    usage()
}

/// Unwraps a parse result, delegating to [`die`] (diagnostic + usage +
/// exit) on error. The shared flag loop of every registry-driven binary.
pub fn ok_or_usage<T>(r: Result<T, CliError>, usage: fn() -> !) -> T {
    r.unwrap_or_else(|e| die(e, usage))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_cursor_walks_flag_value_pairs() {
        let mut args = Args::from_tokens(["--n", "100", "--seed", "7"]);
        assert_eq!(args.next_flag().as_deref(), Some("--n"));
        assert_eq!(args.value("--n").unwrap(), "100");
        assert_eq!(args.next_flag().as_deref(), Some("--seed"));
        assert_eq!(args.value("--seed").unwrap(), "7");
        assert_eq!(args.next_flag(), None);
    }

    #[test]
    fn missing_value_diagnostic_names_the_flag() {
        let mut args = Args::from_tokens(["--json"]);
        assert_eq!(args.next_flag().as_deref(), Some("--json"));
        let err = args.value("--json").unwrap_err();
        assert_eq!(err.to_string(), "missing value for --json");
    }

    #[test]
    fn malformed_numbers_produce_the_standard_diagnostic() {
        let err = parse_value::<usize>("--n", "12x", "expected an integer").unwrap_err();
        assert_eq!(err.to_string(), "invalid value \"12x\" for --n: expected an integer");
        let err = parse_value::<f64>("--epsilon", "much", "expected a float").unwrap_err();
        assert!(err.to_string().contains("--epsilon"));
        assert!(err.to_string().contains("expected a float"));
    }

    #[test]
    fn size_lists_reject_junk_and_accept_sweeps() {
        assert_eq!(parse_usize_list("--n", "1000").unwrap(), vec![1000]);
        assert_eq!(parse_usize_list("--n", "1000,5000,10000").unwrap(), vec![1000, 5000, 10000]);
        let err = parse_usize_list("--n", "1000,abc").unwrap_err();
        assert!(err.to_string().contains("expected integers"), "{err}");
    }

    #[test]
    fn family_parsing_matches_the_documented_names() {
        assert_eq!(parse_family("--family", "erdos-renyi").unwrap(), Family::ErdosRenyi);
        assert_eq!(parse_family("--family", "scale-free").unwrap(), Family::ScaleFree);
        let err = parse_family("--family", "hypercube").unwrap_err();
        assert_eq!(err.to_string(), "invalid value \"hypercube\" for --family: unknown family");
    }

    #[test]
    fn scheme_lists_validate_against_known_names_and_expand_all() {
        let known = ["warmup", "tz2", "exact"];
        assert_eq!(parse_schemes("--schemes", "tz2,warmup", &known).unwrap(), vec!["tz2", "warmup"]);
        assert_eq!(
            parse_schemes("--schemes", "all", &known).unwrap(),
            vec!["warmup", "tz2", "exact"]
        );
        let err = parse_schemes("--schemes", "tz2,thm12", &known).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--schemes") && msg.contains("thm12") && msg.contains("known:"), "{msg}");
    }

    #[test]
    fn unknown_flag_display() {
        let err = CliError::UnknownFlag { flag: "--frobnicate".into() };
        assert_eq!(err.to_string(), "unknown flag --frobnicate");
    }
}
