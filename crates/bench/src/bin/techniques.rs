//! Experiments E-L7 and E-L8: the two routing techniques in isolation.
//! For a sweep of `ε`, measure the observed intra-set (Lemma 7) and
//! source-to-landmark (Lemma 8) stretch together with table and header
//! sizes, confirming the `(1+ε)` guarantee and the `1/ε` space dependence.
//!
//! The Lemma 7/8 techniques are deliberately **not** `SchemeRegistry`
//! entries: they are partial-domain building blocks (Lemma 7 routes only
//! within a color class, Lemma 8 only towards its predefined destination
//! partition), so they cannot honour the registry's build-anything
//! `(graph, context)` contract. This binary constructs them with their
//! per-set inputs and still drives them through the same erased
//! [`routing_model::simulate`] path every registered scheme uses.
//!
//! Run with: `cargo run -p routing-bench --release --bin techniques [n]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_core::{Params, Technique1Scheme, Technique2Scheme};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{self, WeightModel};
use routing_graph::VertexId;
use routing_model::simulate;
use routing_model::RoutingScheme;
use routing_vicinity::{BallTable, Coloring};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(250);
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::erdos_renyi(n, 8.0 / n as f64, WeightModel::Uniform { lo: 1, hi: 16 }, &mut rng);
    let exact = DistanceMatrix::new(&g);
    let q = (n as f64).sqrt().ceil() as u32;

    println!("technique experiments on weighted Erdos-Renyi, n={n}, q={q}");
    println!(
        "{:<8} {:<10} {:>10} {:>10} {:>12} {:>12}",
        "lemma", "epsilon", "max str", "mean str", "table max", "header max"
    );
    for &epsilon in &[2.0, 1.0, 0.5, 0.25, 0.125] {
        let params = Params::with_epsilon(epsilon);

        // Lemma 7: partition by a Lemma 6 coloring of the vicinities.
        let ell = params.scaled(q as usize, n);
        let balls = BallTable::build(&g, ell);
        let sets: Vec<Vec<VertexId>> = g
            .vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect();
        let coloring = Coloring::build_for_sets(n, q, &sets, 8, &mut rng).expect("coloring");
        let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();

        let t1 = Technique1Scheme::build(&g, color_of.clone(), &params, &mut rng).expect("lemma 7");
        let mut max_s: f64 = 1.0;
        let mut sum = 0.0;
        let mut cnt = 0usize;
        let mut header = 0usize;
        for u in g.vertices() {
            for v in g.vertices() {
                if u == v || color_of[u.index()] != color_of[v.index()] {
                    continue;
                }
                let out = simulate(&g, &t1, u, v).expect("route");
                let s = out.weight as f64 / exact.dist(u, v).unwrap() as f64;
                max_s = max_s.max(s);
                sum += s;
                cnt += 1;
                header = header.max(out.max_header_words);
            }
        }
        let table_max = g.vertices().map(|v| t1.table_words(v)).max().unwrap_or(0);
        println!(
            "{:<8} {:<10} {:>10.4} {:>10.4} {:>12} {:>12}",
            "L7",
            epsilon,
            max_s,
            sum / cnt as f64,
            table_max,
            header
        );

        // Lemma 8: destinations are a landmark-like sample partitioned to
        // match the coloring.
        let dests: Vec<VertexId> = g.vertices().filter(|v| v.0 % 5 == 0).collect();
        let mut dest_partition = vec![Vec::new(); q as usize];
        for (i, w) in dests.iter().enumerate() {
            dest_partition[i % q as usize].push(*w);
        }
        let t2 = Technique2Scheme::build(&g, color_of.clone(), dest_partition.clone(), &params)
            .expect("lemma 8");
        let mut max_s: f64 = 1.0;
        let mut sum = 0.0;
        let mut cnt = 0usize;
        let mut header = 0usize;
        for (j, ws) in dest_partition.iter().enumerate() {
            for &w in ws {
                for u in g.vertices() {
                    if u == w || color_of[u.index()] != j as u32 {
                        continue;
                    }
                    let out = simulate(&g, &t2, u, w).expect("route");
                    let s = out.weight as f64 / exact.dist(u, w).unwrap() as f64;
                    max_s = max_s.max(s);
                    sum += s;
                    cnt += 1;
                    header = header.max(out.max_header_words);
                }
            }
        }
        let table_max = g.vertices().map(|v| t2.table_words(v)).max().unwrap_or(0);
        println!(
            "{:<8} {:<10} {:>10.4} {:>10.4} {:>12} {:>12}",
            "L8",
            epsilon,
            max_s,
            sum / cnt.max(1) as f64,
            table_max,
            header
        );
    }
}
