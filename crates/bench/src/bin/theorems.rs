//! Experiments E-T10, E-T11, E-W3: per-theorem stretch and table-size
//! measurements across graph families, printed as one series per theorem
//! (the paper's per-theorem "figures").
//!
//! The three schemes are built through `compact_routing::SchemeRegistry`
//! (keys `thm10`, `thm11`, `warmup`), with the claimed-bound annotation
//! derived from each scheme's `SchemeMeta` row and the configured `ε`.
//!
//! Run with: `cargo run -p routing-bench --release --bin theorems [n] [epsilon]`

use compact_routing::registry::SchemeRegistry;
use routing_bench::{evaluate_scheme, make_graph, scheme_meta, ExperimentConfig};
use routing_core::BuildContext;
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let epsilon: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.25);
    let cfg = ExperimentConfig { n, epsilon, seed: 11, pairs: Some(3000) };
    let registry = SchemeRegistry::with_defaults();
    // The per-theorem series, in the order the paper presents them.
    let keys = ["thm10", "thm11", "warmup"];
    let display = [("thm10", "Thm 10"), ("thm11", "Thm 11"), ("warmup", "warm-up")];

    println!("theorem experiments: n={n} eps={epsilon}");
    println!(
        "{:<14} {:<26} {:>9} {:>9} {:>10} {:>12} {:>8}",
        "family", "scheme", "max str", "mean str", "bound", "table max", "label"
    );
    for family in Family::ALL {
        let unweighted = make_graph(family, WeightModel::Unit, &cfg);
        let weighted = make_graph(family, WeightModel::Uniform { lo: 1, hi: 32 }, &cfg);
        let exact_u = DistanceMatrix::new(&unweighted);
        let exact_w = DistanceMatrix::new(&weighted);
        let ctx = BuildContext {
            params: cfg.params(),
            seed: cfg.seed,
            threads: routing_par::threads(),
        };

        for key in keys {
            let meta = scheme_meta(key).expect("theorem keys are registered");
            let (g, exact) = if meta.weighted {
                (&weighted, &exact_w)
            } else {
                (&unweighted, &exact_u)
            };
            let scheme = registry.build(key, g, &ctx).expect("build");
            let r = evaluate_scheme(g, scheme.as_ref(), exact, &cfg).expect("eval");
            let name = display.iter().find(|(k, _)| *k == key).map(|(_, d)| *d).unwrap_or(key);
            println!(
                "{:<14} {:<26} {:>9.3} {:>9.3} {:>10} {:>12} {:>8}",
                family.name(),
                name,
                r.stretch.max_multiplicative().unwrap_or(1.0),
                r.stretch.mean_multiplicative().unwrap_or(1.0),
                meta.stretch_bound.label_at(meta.claimed_stretch, epsilon),
                r.table.max(),
                r.max_label_words
            );
        }
    }
}
