//! Experiments E-T10, E-T11, E-W3: per-theorem stretch and table-size
//! measurements across graph families, printed as one series per theorem
//! (the paper's per-theorem "figures").
//!
//! Run with: `cargo run -p routing-bench --release --bin theorems [n] [epsilon]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::{evaluate_scheme, make_graph, ExperimentConfig};
use routing_core::{SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let epsilon: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.25);
    let cfg = ExperimentConfig { n, epsilon, seed: 11, pairs: Some(3000) };
    let params = cfg.params();

    println!("theorem experiments: n={n} eps={epsilon}");
    println!(
        "{:<14} {:<26} {:>9} {:>9} {:>10} {:>12} {:>8}",
        "family", "scheme", "max str", "mean str", "bound", "table max", "label"
    );
    for family in Family::ALL {
        let unweighted = make_graph(family, WeightModel::Unit, &cfg);
        let weighted = make_graph(family, WeightModel::Uniform { lo: 1, hi: 32 }, &cfg);
        let exact_u = DistanceMatrix::new(&unweighted);
        let exact_w = DistanceMatrix::new(&weighted);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let rows: Vec<(&str, String, f64, f64, usize, usize)> = vec![
            {
                let s = SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).expect("build");
                let r = evaluate_scheme(&unweighted, &s, &exact_u, &cfg).expect("eval");
                (
                    "Thm 10",
                    format!("(2+eps,1) = {:.2}d+1", 2.0 + epsilon),
                    r.stretch.max_multiplicative().unwrap_or(1.0),
                    r.stretch.mean_multiplicative().unwrap_or(1.0),
                    r.table.max(),
                    r.max_label_words,
                )
            },
            {
                let s = SchemeFivePlusEps::build(&weighted, &params, &mut rng).expect("build");
                let r = evaluate_scheme(&weighted, &s, &exact_w, &cfg).expect("eval");
                (
                    "Thm 11",
                    format!("5+eps = {:.2}", 5.0 + epsilon),
                    r.stretch.max_multiplicative().unwrap_or(1.0),
                    r.stretch.mean_multiplicative().unwrap_or(1.0),
                    r.table.max(),
                    r.max_label_words,
                )
            },
            {
                let s = SchemeThreePlusEps::build(&weighted, &params, &mut rng).expect("build");
                let r = evaluate_scheme(&weighted, &s, &exact_w, &cfg).expect("eval");
                (
                    "warm-up",
                    format!("3+eps = {:.2}", 3.0 + epsilon),
                    r.stretch.max_multiplicative().unwrap_or(1.0),
                    r.stretch.mean_multiplicative().unwrap_or(1.0),
                    r.table.max(),
                    r.max_label_words,
                )
            },
        ];
        for (name, bound, max_s, mean_s, table, label) in rows {
            println!(
                "{:<14} {:<26} {:>9.3} {:>9.3} {:>10} {:>12} {:>8}",
                family.name(),
                name,
                max_s,
                mean_s,
                bound,
                table,
                label
            );
        }
    }
}
