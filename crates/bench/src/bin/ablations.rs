//! Experiment E-ABL: ablations over the design choices DESIGN.md calls out —
//! the Lemma 5 hitting-set construction (greedy vs. randomized) and the ball
//! scaling constant `α` in `q̃ = α·q·log n`.
//!
//! Every variant is one `BuildContext` (different `Params`) against the same
//! registry entry (`warmup`), so the ablation sweep is pure data: no
//! per-variant construction code.
//!
//! Run with: `cargo run -p routing-bench --release --bin ablations [n]`

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::{evaluate_scheme, ExperimentConfig};
use routing_core::{BuildContext, HittingStrategy, Params};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(300);
    let mut rng = StdRng::seed_from_u64(23);
    let g = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 16 }, &mut rng);
    let exact = DistanceMatrix::new(&g);
    let cfg = ExperimentConfig { n, epsilon: 0.25, seed: 23, pairs: Some(2000) };
    let registry = SchemeRegistry::with_defaults();

    println!("ablations on the warm-up (3+eps) scheme, n={n}");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>10}",
        "variant", "max str", "mean str", "table max", "table mean"
    );
    let variants: Vec<(String, Params)> = vec![
        ("greedy hitting set".into(), Params { hitting: HittingStrategy::Greedy, ..cfg.params() }),
        ("random hitting set".into(), Params { hitting: HittingStrategy::Random, ..cfg.params() }),
        ("ball scale 0.5".into(), Params { ball_scale: 0.5, ..cfg.params() }),
        ("ball scale 1.0 (paper)".into(), cfg.params()),
        ("ball scale 2.0".into(), Params { ball_scale: 2.0, ..cfg.params() }),
    ];
    for (name, params) in variants {
        let ctx = BuildContext { params, seed: 23, threads: routing_par::threads() };
        match registry.build("warmup", &g, &ctx) {
            Ok(scheme) => {
                let r = evaluate_scheme(&g, scheme.as_ref(), &exact, &cfg).expect("eval");
                println!(
                    "{:<28} {:>10.3} {:>10.3} {:>12} {:>10.1}",
                    name,
                    r.stretch.max_multiplicative().unwrap_or(1.0),
                    r.stretch.mean_multiplicative().unwrap_or(1.0),
                    r.table.max(),
                    r.table.mean()
                );
            }
            Err(e) => println!("{:<28} build failed: {e}", name),
        }
    }
}
