//! Experiment E-SCALE: table-size scaling exponents. For a sweep of `n`,
//! measure the maximum per-vertex table size of each scheme and report
//! `max / n^x` for the paper's claimed exponent `x` — flat normalized
//! columns confirm the claimed `Õ(n^x)` shape.
//!
//! Run with: `cargo run -p routing-bench --release --bin scaling [n1 n2 ...]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_baselines::TzRoutingScheme;
use routing_core::{SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::generators::{Family, WeightModel};
use routing_model::RoutingScheme;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> =
            std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() { vec![200, 400, 800] } else { args }
    };
    println!("table-size scaling (erdos-renyi, eps=0.25)");
    println!(
        "{:>6} {:>22} {:>22} {:>22} {:>22} {:>22}",
        "n",
        "thm10 max (/n^2/3)",
        "thm11 max (/n^1/3)",
        "warmup max (/n^1/2)",
        "tz k=2 max (/n^1/2)",
        "tz k=3 max (/n^1/3)"
    );
    for &n in &sizes {
        let params = routing_core::Params::with_epsilon(0.25);
        let mut rng = StdRng::seed_from_u64(13);
        let unweighted = Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng);
        let weighted =
            Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);

        let max_of = |words: Vec<usize>| words.into_iter().max().unwrap_or(0);
        let norm = |max: usize, e: f64| max as f64 / (n as f64).powf(e);

        let thm10 = SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).expect("thm10");
        let m10 = max_of(unweighted.vertices().map(|v| thm10.table_words(v)).collect());
        let thm11 = SchemeFivePlusEps::build(&weighted, &params, &mut rng).expect("thm11");
        let m11 = max_of(weighted.vertices().map(|v| thm11.table_words(v)).collect());
        let warm = SchemeThreePlusEps::build(&weighted, &params, &mut rng).expect("warmup");
        let mw = max_of(weighted.vertices().map(|v| warm.table_words(v)).collect());
        let tz2 = TzRoutingScheme::build(&weighted, 2, &mut rng);
        let m2 = max_of(weighted.vertices().map(|v| tz2.table_words(v)).collect());
        let tz3 = TzRoutingScheme::build(&weighted, 3, &mut rng);
        let m3 = max_of(weighted.vertices().map(|v| tz3.table_words(v)).collect());

        println!(
            "{:>6} {:>14} ({:>6.1}) {:>14} ({:>6.1}) {:>14} ({:>6.1}) {:>14} ({:>6.1}) {:>14} ({:>6.1})",
            n,
            m10,
            norm(m10, 2.0 / 3.0),
            m11,
            norm(m11, 1.0 / 3.0),
            mw,
            norm(mw, 0.5),
            m2,
            norm(m2, 0.5),
            m3,
            norm(m3, 1.0 / 3.0),
        );
    }
}
