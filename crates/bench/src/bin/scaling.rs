//! Experiment E-SCALE: preprocessing scalability and table-size scaling.
//!
//! For a sweep of `n` the harness, per scheme (selected by registry name —
//! construction dispatches through `compact_routing::SchemeRegistry`, so
//! this binary contains no per-scheme code):
//!
//! 1. builds the scheme **twice from the same seed** — once with one worker
//!    thread and once with `--threads` workers — and reports both wall-clock
//!    times and their ratio (the parallel speedup of the preprocessing
//!    phase);
//! 2. checks the two builds are **identical** (per-vertex table and label
//!    words, plus every routed weight of the shared pair sample must match —
//!    parallelism must never change what gets built, only how fast), and
//!    that the built scheme's name equals its registry key (the naming
//!    invariant the `--schemes` flags rely on);
//! 3. measures stretch over `--sample-pairs` pairs against the
//!    [`routing_graph::SampledDistances`] ground truth (`--sample-sources`
//!    exact source rows, `O(k·n)` memory), so the sweep runs at
//!    `n = 10,000+` where the dense `O(n^2)` matrix no longer fits the
//!    budget;
//! 4. reports the maximum per-vertex table size normalized by the paper's
//!    claimed exponent `Õ(n^x)` — flat normalized columns across the sweep
//!    confirm the claimed shape.
//!
//! Run with: `cargo run -p routing-bench --release --bin scaling -- [OPTIONS]`
//!
//! # Options
//!
//! | flag | default | meaning |
//! |------|---------|---------|
//! | `--n <LIST>` | `1000` | comma list of vertex counts, e.g. `1000,5000,10000` |
//! | `--threads <T>` | 0 | parallel worker count compared against 1 (0 = all hardware threads) |
//! | `--sample-pairs <P>` | 1000 | routed pairs per scheme for the stretch measurement |
//! | `--sample-sources <K>` | 64 | exact ground-truth source rows |
//! | `--schemes <LIST>` | `tz2,warmup,thm11` | comma list of registered scheme names, or `all` |
//! | `--family <F>` | `erdos-renyi` | `erdos-renyi`, `geometric`, `grid`, or `scale-free` |
//! | `--epsilon <E>` | 0.25 | stretch slack of the paper's schemes |
//! | `--seed <S>` | 13 | master seed (graphs, builds and pair samples derive from it) |
//! | `--json <PATH>` | — | also write every row as a JSON array |
//! | `--help` | — | print this table |
//!
//! The registered scheme names are `warmup`, `thm10`, `thm11`, `tz2`,
//! `tz3`, `exact`, `spanner`, `thm13`, `thm15`, `thm16k3`; note `exact`
//! and `spanner` build `Θ(n)`-word full tables (and the greedy spanner
//! construction is `O(m)` shortest-path queries), so keep `--schemes all`
//! to small `n` — CI runs it at `n = 300` as the registry smoke test.

use std::time::Instant;

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::cli::{self, Args, CliError};
use routing_bench::{assert_meta_covers_registry, scheme_meta};
use routing_core::{BuildContext, Params};
use routing_graph::generators::{Family, WeightModel};
use routing_graph::{Graph, SampledDistances, VertexId};
use routing_model::eval::{evaluate_pairs, select_pairs_anchored};
use routing_model::simulate;
use serde::Serialize;

struct Options {
    sizes: Vec<usize>,
    threads: usize,
    sample_pairs: usize,
    sample_sources: usize,
    schemes: Vec<String>,
    family: Family,
    epsilon: f64,
    seed: u64,
    json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            sizes: vec![1000],
            threads: 0,
            sample_pairs: 1000,
            sample_sources: 64,
            schemes: vec!["tz2".into(), "warmup".into(), "thm11".into()],
            family: Family::ErdosRenyi,
            epsilon: 0.25,
            seed: 13,
            json: None,
        }
    }
}

/// One (n × scheme) measurement row.
#[derive(Debug, Clone, Serialize)]
struct Row {
    scheme: String,
    n: usize,
    m: usize,
    threads: usize,
    /// Preprocessing wall-clock with 1 worker thread, milliseconds.
    build_seq_ms: f64,
    /// Preprocessing wall-clock with `threads` workers, milliseconds.
    build_par_ms: f64,
    /// `build_seq_ms / build_par_ms`.
    speedup: f64,
    /// Whether the two builds were identical (tables, labels, and every
    /// routed weight).
    identical: bool,
    /// Largest per-vertex table, in words.
    table_max: usize,
    /// Mean per-vertex table, in words.
    table_mean: f64,
    /// The paper's claimed space exponent for this scheme.
    exponent: f64,
    /// `table_max / n^exponent` — flat across the sweep confirms the shape.
    normalized: f64,
    /// Mean multiplicative stretch over the sampled pairs.
    stretch_mean: f64,
    /// Max multiplicative stretch over the sampled pairs.
    stretch_max: f64,
    /// Per-phase wall-clock of the **parallel** build, from the
    /// `routing-obs` span profiler (worker spans merged through the
    /// `routing-par` hooks), sorted by phase name.
    phases: Vec<PhaseMs>,
    /// `Σ phases / build_par_ms` — how much of the build the spans explain.
    phase_coverage: f64,
}

/// One named preprocessing phase and its wall-clock share.
#[derive(Debug, Clone, Serialize)]
struct PhaseMs {
    name: String,
    ms: f64,
}

fn usage() -> ! {
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    // Keep this text in sync with the module doc table above and README.md.
    eprintln!(
        "scaling — preprocessing scalability and table-size scaling

USAGE: scaling [OPTIONS]

OPTIONS:
  --n <LIST>              comma list of vertex counts            [default: 1000]
  --threads <T>           workers compared against 1
                          (0 = all hardware threads)             [default: 0]
  --sample-pairs <P>      routed pairs per scheme                [default: 1000]
  --sample-sources <K>    exact ground-truth source rows         [default: 64]
  --schemes <LIST>        registered scheme names, or 'all'      [default: tz2,warmup,thm11]
  --family <F>            erdos-renyi|geometric|grid|scale-free  [default: erdos-renyi]
  --epsilon <E>           epsilon of the paper's schemes         [default: 0.25]
  --seed <S>              master seed                            [default: 13]
  --json <PATH>           write all rows as a JSON array
  --help                  show this help"
    );
}

fn parse_options(registry: &SchemeRegistry) -> Options {
    let mut opts = Options::default();
    let mut args = Args::from_env();
    while let Some(flag) = args.next_flag() {
        if flag == "--help" || flag == "-h" {
            print_usage();
            std::process::exit(0);
        }
        let value = cli::ok_or_usage(args.value(&flag), usage);
        match flag.as_str() {
            "--n" => opts.sizes = cli::ok_or_usage(cli::parse_usize_list(&flag, &value), usage),
            "--threads" => {
                opts.threads = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--sample-pairs" => {
                opts.sample_pairs =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--sample-sources" => {
                opts.sample_sources = cli::ok_or_usage(cli::parse_value::<usize>(
                    &flag,
                    &value,
                    "expected an integer",
                ), usage)
                .max(1)
            }
            "--schemes" => {
                opts.schemes =
                    cli::ok_or_usage(cli::parse_schemes(&flag, &value, &registry.names()), usage)
            }
            "--family" => opts.family = cli::ok_or_usage(cli::parse_family(&flag, &value), usage),
            "--epsilon" => {
                opts.epsilon = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--seed" => {
                opts.seed = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--json" => opts.json = Some(value),
            _ => cli::die(CliError::UnknownFlag { flag }, usage),
        }
    }
    opts
}

/// Builds one registered scheme twice from identical state — sequentially
/// and with `threads` workers — times both, verifies the results (and the
/// name/key invariant), and measures stretch of the parallel build over the
/// shared `pairs`. Returns `None` (after reporting) if the build fails.
#[allow(clippy::too_many_arguments)]
fn measure(
    registry: &SchemeRegistry,
    key: &str,
    exponent: f64,
    g: &Graph,
    oracle: &SampledDistances,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
    ctx: &BuildContext,
) -> Option<Row> {
    let seq_ctx = BuildContext { threads: 1, ..*ctx };
    let t = Instant::now();
    let seq = match registry.build(key, g, &seq_ctx) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("build failed: scheme={key}: {e}");
            return None;
        }
    };
    let build_seq_ms = t.elapsed().as_secs_f64() * 1e3;

    // Profile only the parallel build: its per-phase breakdown is the one
    // that shows where the speedup column comes from, and the span forest is
    // merged deterministically across workers so the phases are comparable
    // between thread counts anyway.
    let par_ctx = BuildContext { threads, ..*ctx };
    routing_obs::reset();
    routing_obs::set_profiling(true);
    let t = Instant::now();
    let par = match registry.build(key, g, &par_ctx) {
        Ok(s) => s,
        Err(e) => {
            routing_obs::set_profiling(false);
            eprintln!("build failed: scheme={key}: {e}");
            return None;
        }
    };
    let build_par_ms = t.elapsed().as_secs_f64() * 1e3;
    routing_obs::set_profiling(false);
    let phases: Vec<PhaseMs> = routing_obs::report()
        .iter()
        .map(|root| PhaseMs { name: root.name.to_string(), ms: root.total_ms() })
        .collect();
    let phase_coverage = phases.iter().map(|p| p.ms).sum::<f64>() / build_par_ms.max(1e-9);

    // Identity check: parallelism must not change the scheme. Schemes do not
    // expose raw table bytes, so compare everything observable — per-vertex
    // table and label word counts, and the weight and hop count of every
    // routed pair, pair by pair. (`registry.build` has already verified
    // name == key for both builds.)
    let words_match = g.vertices().all(|v| {
        seq.table_words(v) == par.table_words(v) && seq.label_words(v) == par.label_words(v)
    });
    let routes_match = pairs.iter().all(|&(u, v)| {
        let a = simulate(g, seq.as_ref(), u, v).expect("scheme routes its own graph");
        let b = simulate(g, par.as_ref(), u, v).expect("scheme routes its own graph");
        a.weight == b.weight && a.hops == b.hops
    });
    let identical = words_match && routes_match;
    let par_eval =
        evaluate_pairs(g, par.as_ref(), oracle, pairs).expect("scheme routes its own graph");

    Some(Row {
        scheme: key.to_string(),
        n: g.n(),
        m: g.m(),
        threads,
        build_seq_ms,
        build_par_ms,
        speedup: build_seq_ms / build_par_ms.max(1e-9),
        identical,
        table_max: par_eval.table.max(),
        table_mean: par_eval.table.mean(),
        exponent,
        normalized: par_eval.table.max() as f64 / (g.n() as f64).powf(exponent),
        stretch_mean: par_eval.stretch.mean_multiplicative().unwrap_or(1.0),
        stretch_max: par_eval.stretch.max_multiplicative().unwrap_or(1.0),
        phases,
        phase_coverage,
    })
}

fn print_row(r: &Row) {
    println!(
        "{:>6} {:<10} {:>9.0} {:>9.0} {:>7.2}x {:>9} {:>9} ({:>6.1}) {:>8.3} {:>8.3}",
        r.n,
        r.scheme,
        r.build_seq_ms,
        r.build_par_ms,
        r.speedup,
        if r.identical { "yes" } else { "NO" },
        r.table_max,
        r.normalized,
        r.stretch_mean,
        r.stretch_max,
    );
    if !r.phases.is_empty() {
        let parts: Vec<String> =
            r.phases.iter().map(|p| format!("{} {:.0}ms", p.name, p.ms)).collect();
        println!(
            "       phases: {}, [{:.0}% covered]",
            parts.join(", "),
            100.0 * r.phase_coverage
        );
    }
}

fn main() {
    let registry = SchemeRegistry::with_defaults();
    assert_meta_covers_registry(&registry);
    let opts = parse_options(&registry);
    let threads =
        if opts.threads == 0 { routing_par::available_threads() } else { opts.threads };
    println!(
        "preprocessing scalability (family={}, eps={}, threads 1 vs {}, {} pairs / {} ground-truth sources per n)",
        opts.family.name(),
        opts.epsilon,
        threads,
        opts.sample_pairs,
        opts.sample_sources,
    );
    println!(
        "{:>6} {:<10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "n",
        "scheme",
        "seq-ms",
        "par-ms",
        "speedup",
        "identical",
        "tbl-max",
        "(/n^x)",
        "stretch",
        "max-str"
    );

    let mut failures = 0usize;
    let mut rows: Vec<Row> = Vec::new();
    for &n in &opts.sizes {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let unweighted = opts.family.generate(n, WeightModel::Unit, &mut rng);
        let weighted =
            opts.family.generate(n, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);

        // Shared ground truth and pair sample per graph flavour, so every
        // scheme (and both builds of each scheme) routes the same pairs.
        routing_par::set_threads(threads);
        let mut oracle_rng = StdRng::seed_from_u64(opts.seed ^ 0x0c1e);
        let oracle_u = SampledDistances::sample(&unweighted, opts.sample_sources, &mut oracle_rng);
        let oracle_w = SampledDistances::sample(&weighted, opts.sample_sources, &mut oracle_rng);
        let mut pair_rng = StdRng::seed_from_u64(opts.seed ^ 0xbeef);
        let pairs_u =
            select_pairs_anchored(&unweighted, oracle_u.sources(), opts.sample_pairs, &mut pair_rng);
        let pairs_w =
            select_pairs_anchored(&weighted, oracle_w.sources(), opts.sample_pairs, &mut pair_rng);

        let ctx = BuildContext {
            params: Params::with_epsilon(opts.epsilon),
            seed: opts.seed ^ 0xb111d,
            threads,
        };
        for key in &opts.schemes {
            let meta = scheme_meta(key).expect("--schemes entries are registered and covered");
            let (g, oracle, pairs) = if meta.weighted {
                (&weighted, &oracle_w, &pairs_w)
            } else {
                (&unweighted, &oracle_u, &pairs_u)
            };
            match measure(
                &registry,
                key,
                meta.space_exponent.unwrap_or(1.0),
                g,
                oracle,
                pairs,
                threads,
                &ctx,
            ) {
                Some(row) => {
                    print_row(&row);
                    rows.push(row);
                }
                None => failures += 1,
            }
        }
    }
    // Leave the global in the parallel state callers asked for.
    routing_par::set_threads(threads);

    if failures > 0 {
        eprintln!("ERROR: {failures} scheme build(s) failed");
        std::process::exit(1);
    }
    if rows.iter().any(|r| !r.identical) {
        eprintln!("ERROR: a parallel build differed from its sequential twin");
        std::process::exit(1);
    }
    println!("\nall parallel builds identical to their sequential twins");

    if let Some(path) = &opts.json {
        match serde_json::to_string_pretty(&rows) {
            Ok(json) => match std::fs::write(path, json) {
                Ok(()) => println!("(wrote {path})"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            Err(e) => eprintln!("could not serialize rows: {e}"),
        }
    }
}
