//! Experiment E-PERF: the tracked performance baseline of the allocation-free
//! search kernel — build and query throughput per scheme, plus the headline
//! ball-kernel comparison against the pre-refactor `HashMap` implementation.
//!
//! Every measurement is **single-threaded** (`threads = 1`), so the numbers
//! track the kernel itself rather than the core count of the machine, and
//! successive `BENCH_*.json` artefacts stay comparable across PRs. Per
//! vertex count the binary measures:
//!
//! 1. **ball-kernel** — `BallTable::build` (bounded scratch searches + flat
//!    CSR layout) against the same table assembled from the pre-refactor
//!    per-vertex `HashMap` ball search
//!    ([`routing_graph::reference::ball_hashmap`]). The two tables are
//!    verified **identical** (members, radii, ports) — any divergence makes
//!    the run fail with a non-zero exit, which is what the CI perf smoke
//!    job keys on.
//! 2. **scheme rows** — for each selected registry scheme: preprocessing
//!    wall-clock and the wall-clock of `--queries` routed queries over
//!    seeded random pairs (reported as queries/second).
//!
//! Run with: `cargo run -p routing-bench --release --bin perf -- [OPTIONS]`
//!
//! # Options
//!
//! | flag | default | meaning |
//! |------|---------|---------|
//! | `--n <LIST>` | `1000,5000,10000` | comma list of vertex counts |
//! | `--schemes <LIST>` | `tz2,warmup,thm11` | comma list of registered scheme names, or `all` |
//! | `--queries <Q>` | `10000` | routed queries per scheme |
//! | `--ell <L>` | `0` | ball size for the kernel row (0 = ⌈√n⌉) |
//! | `--family <F>` | `erdos-renyi` | `erdos-renyi`, `geometric`, `grid`, or `scale-free` |
//! | `--epsilon <E>` | `0.25` | stretch slack of the paper's schemes |
//! | `--seed <S>` | `13` | master seed |
//! | `--json <PATH>` | — | write every row as a JSON array (`BENCH_5.json` format) |
//! | `--baseline <PATH>` | — | compare against a committed `BENCH_*.json`; exit non-zero on >10% QPS regression |
//! | `--help` | — | print this table |
//!
//! The committed `BENCH_5.json` at the repository root is this binary's
//! output with default flags; future PRs append `BENCH_<pr>.json` artefacts
//! from the same format so the perf trajectory of the repo is inspectable.

use std::collections::HashMap;
use std::time::Instant;

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::cli::{self, Args, CliError};
use routing_bench::{assert_meta_covers_registry, scheme_meta};
use routing_core::{BuildContext, Params};
use routing_graph::generators::{Family, WeightModel};
use routing_graph::{reference, Graph, Port, VertexId};
use routing_model::{sample_pairs_from, simulate};
use routing_vicinity::BallTable;
use serde::{Deserialize, Serialize};

struct Options {
    sizes: Vec<usize>,
    schemes: Vec<String>,
    queries: usize,
    ell: usize,
    family: Family,
    epsilon: f64,
    seed: u64,
    json: Option<String>,
    baseline: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            sizes: vec![1000, 5000, 10000],
            schemes: vec!["tz2".into(), "warmup".into(), "thm11".into()],
            queries: 10_000,
            ell: 0,
            family: Family::ErdosRenyi,
            epsilon: 0.25,
            seed: 13,
            json: None,
            baseline: None,
        }
    }
}

/// One measurement row of the perf baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Row {
    /// `"ball-kernel"` or `"scheme"`.
    kind: String,
    n: usize,
    m: usize,
    /// Registry key (`null` for the kernel row).
    scheme: Option<String>,
    /// Ball size of the kernel row (`null` for scheme rows).
    ell: Option<usize>,
    /// Single-threaded build wall-clock, milliseconds.
    build_ms: f64,
    /// Pre-refactor (HashMap) build wall-clock, milliseconds (kernel row).
    reference_ms: Option<f64>,
    /// `reference_ms / build_ms` (kernel row).
    speedup: Option<f64>,
    /// Whether the flat and reference tables were identical (kernel row).
    identical: Option<bool>,
    /// Routed queries (scheme rows).
    queries: Option<usize>,
    /// Wall-clock of all routed queries, milliseconds (scheme rows).
    route_ms: Option<f64>,
    /// Routed queries per second (scheme rows).
    queries_per_sec: Option<f64>,
    /// Top-level build phases from the span profiler (scheme rows): name and
    /// wall-clock of every root span recorded during preprocessing.
    phases: Option<Vec<PhaseMs>>,
    /// `sum(phases) / build_ms` — how much of the build wall-clock the
    /// instrumented phases account for (scheme rows).
    phase_coverage: Option<f64>,
}

/// One top-level build phase of a scheme row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PhaseMs {
    name: String,
    ms: f64,
}

fn usage() -> ! {
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    // Keep this text in sync with the module doc table above and README.md.
    eprintln!(
        "perf — allocation-free kernel perf baseline (single-threaded build + query throughput)

USAGE: perf [OPTIONS]

OPTIONS:
  --n <LIST>              comma list of vertex counts            [default: 1000,5000,10000]
  --schemes <LIST>        registered scheme names, or 'all'      [default: tz2,warmup,thm11]
  --queries <Q>           routed queries per scheme              [default: 10000]
  --ell <L>               ball size for the kernel row (0 = sqrt n) [default: 0]
  --family <F>            erdos-renyi|geometric|grid|scale-free  [default: erdos-renyi]
  --epsilon <E>           epsilon of the paper's schemes         [default: 0.25]
  --seed <S>              master seed                            [default: 13]
  --json <PATH>           write all rows as a JSON array
  --baseline <PATH>       compare to a committed BENCH_*.json; exit non-zero
                          on a >10% QPS regression against any matching row
  --help                  show this help"
    );
}

fn parse_options(registry: &SchemeRegistry) -> Options {
    let mut opts = Options::default();
    let mut args = Args::from_env();
    while let Some(flag) = args.next_flag() {
        if flag == "--help" || flag == "-h" {
            print_usage();
            std::process::exit(0);
        }
        let value = cli::ok_or_usage(args.value(&flag), usage);
        match flag.as_str() {
            "--n" => opts.sizes = cli::ok_or_usage(cli::parse_usize_list(&flag, &value), usage),
            "--schemes" => {
                opts.schemes =
                    cli::ok_or_usage(cli::parse_schemes(&flag, &value, &registry.names()), usage)
            }
            "--queries" => {
                opts.queries =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--ell" => {
                opts.ell =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--family" => opts.family = cli::ok_or_usage(cli::parse_family(&flag, &value), usage),
            "--epsilon" => {
                opts.epsilon =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--seed" => {
                opts.seed =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--json" => opts.json = Some(value),
            "--baseline" => opts.baseline = Some(value),
            _ => cli::die(CliError::UnknownFlag { flag }, usage),
        }
    }
    opts
}

/// Builds the pre-refactor ball table (one `HashMap` search per vertex, one
/// port map per vertex) sequentially — the timing and identity baseline.
fn reference_ball_table(
    g: &Graph,
    ell: usize,
) -> Vec<(routing_graph::shortest_path::Ball, HashMap<VertexId, Port>)> {
    g.vertices()
        .map(|u| {
            let b = reference::ball_hashmap(g, u, ell);
            let mut port_map = HashMap::with_capacity(b.len());
            for &(v, _) in b.members() {
                if v == u {
                    continue;
                }
                let hop = b.first_hop(v).expect("non-center members have a first hop");
                port_map.insert(v, g.port_to(u, hop).expect("first hop is a neighbour"));
            }
            (b, port_map)
        })
        .collect()
}

/// The headline kernel row: flat `BallTable::build` vs the reference build,
/// with a full identity check (members, radii, ports).
fn measure_ball_kernel(g: &Graph, ell: usize) -> Row {
    let t = Instant::now();
    let flat = BallTable::build(g, ell);
    let build_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let reference = reference_ball_table(g, ell);
    let reference_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut identical = true;
    for (i, (b, ports)) in reference.iter().enumerate() {
        let u = VertexId(i as u32);
        let view = flat.ball(u);
        if view.members() != b.members() || view.radius() != b.radius() {
            identical = false;
            break;
        }
        if b.members()
            .iter()
            .any(|&(v, _)| v != u && flat.first_port(u, v) != ports.get(&v).copied())
        {
            identical = false;
            break;
        }
    }

    Row {
        kind: "ball-kernel".into(),
        n: g.n(),
        m: g.m(),
        scheme: None,
        ell: Some(ell),
        build_ms,
        reference_ms: Some(reference_ms),
        speedup: Some(reference_ms / build_ms.max(1e-9)),
        identical: Some(identical),
        queries: None,
        route_ms: None,
        queries_per_sec: None,
        phases: None,
        phase_coverage: None,
    }
}

/// One scheme row: single-threaded registry build plus `queries` routed
/// queries over seeded random pairs. Returns `None` (after reporting) if the
/// build fails.
fn measure_scheme(
    registry: &SchemeRegistry,
    key: &str,
    g: &Graph,
    ctx: &BuildContext,
    queries: usize,
    seed: u64,
) -> Option<Row> {
    // Profile the build only: the span profiler is enabled around the
    // registry call and switched off before the query loop, so the routed
    // QPS below is measured with telemetry fully disabled.
    routing_obs::reset();
    routing_obs::set_profiling(true);
    let t = Instant::now();
    let scheme = match registry.build(key, g, ctx) {
        Ok(s) => s,
        Err(e) => {
            routing_obs::set_profiling(false);
            eprintln!("build failed: scheme={key}: {e}");
            return None;
        }
    };
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    routing_obs::set_profiling(false);
    let forest = routing_obs::report();
    let phases: Vec<PhaseMs> = forest
        .iter()
        .map(|root| PhaseMs { name: root.name.to_string(), ms: root.total_ms() })
        .collect();
    let phase_coverage = phases.iter().map(|p| p.ms).sum::<f64>() / build_ms.max(1e-9);
    // Full tree (with sub-phases like technique1's hitting-set / global-trees
    // / sequences) to stderr; the stdout table and the JSON rows carry the
    // root phases only.
    eprint!("span tree for {key} @ n={}:\n{}", g.n(), routing_obs::export::spans_text(&forest));

    let ids: Vec<VertexId> = g.vertices().collect();
    let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x9e7f);
    let pairs = sample_pairs_from(&ids, &ids, queries, &mut pair_rng);
    let t = Instant::now();
    for &(u, v) in &pairs {
        let out = simulate(g, scheme.as_ref(), u, v).expect("scheme routes its own graph");
        debug_assert_eq!(out.destination(), v);
    }
    let route_ms = t.elapsed().as_secs_f64() * 1e3;

    Some(Row {
        kind: "scheme".into(),
        n: g.n(),
        m: g.m(),
        scheme: Some(key.to_string()),
        ell: None,
        build_ms,
        reference_ms: None,
        speedup: None,
        identical: None,
        queries: Some(pairs.len()),
        route_ms: Some(route_ms),
        queries_per_sec: Some(pairs.len() as f64 / (route_ms / 1e3).max(1e-9)),
        phases: Some(phases),
        phase_coverage: Some(phase_coverage),
    })
}

fn print_row(r: &Row) {
    match r.kind.as_str() {
        "ball-kernel" => println!(
            "{:>6} {:<12} {:>10.0} {:>10.0} {:>7.2}x {:>9}",
            r.n,
            format!("balls(l={})", r.ell.unwrap_or(0)),
            r.build_ms,
            r.reference_ms.unwrap_or(0.0),
            r.speedup.unwrap_or(0.0),
            if r.identical == Some(true) { "yes" } else { "NO" },
        ),
        _ => {
            println!(
                "{:>6} {:<12} {:>10.0} {:>10.0} {:>8.0}/s",
                r.n,
                r.scheme.as_deref().unwrap_or("?"),
                r.build_ms,
                r.route_ms.unwrap_or(0.0),
                r.queries_per_sec.unwrap_or(0.0),
            );
            if let Some(phases) = &r.phases {
                let mut parts: Vec<String> =
                    phases.iter().map(|p| format!("{} {:.0}ms", p.name, p.ms)).collect();
                parts.push(format!("[{:.0}% covered]", r.phase_coverage.unwrap_or(0.0) * 100.0));
                println!("       phases: {}", parts.join(", "));
            }
        }
    }
}

/// Parses a committed `BENCH_*.json` back into rows. The vendored
/// `serde_json` stand-in has no typed deserializer, so the mapping from its
/// untyped [`serde_json::Value`] tree is spelled out here.
fn rows_from_json(text: &str) -> Result<Vec<Row>, String> {
    let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let rows = value.as_seq().ok_or("expected a JSON array of rows")?;
    rows.iter().map(row_from_value).collect()
}

fn row_from_value(v: &serde_json::Value) -> Result<Row, String> {
    use serde_json::Value;
    let f64_field = |key: &str| v.get(key).and_then(Value::as_f64);
    let usize_field = |key: &str| v.get(key).and_then(Value::as_u64).map(|x| x as usize);
    let phases = match v.get("phases") {
        None | Some(Value::Null) => None,
        Some(list) => Some(
            list.as_seq()
                .ok_or("phases must be an array")?
                .iter()
                .map(|p| {
                    Ok(PhaseMs {
                        name: p
                            .get("name")
                            .and_then(Value::as_str)
                            .ok_or("phase missing name")?
                            .to_string(),
                        ms: p.get("ms").and_then(Value::as_f64).ok_or("phase missing ms")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        ),
    };
    Ok(Row {
        kind: v.get("kind").and_then(Value::as_str).ok_or("row missing kind")?.to_string(),
        n: usize_field("n").ok_or("row missing n")?,
        m: usize_field("m").ok_or("row missing m")?,
        scheme: v.get("scheme").and_then(Value::as_str).map(str::to_string),
        ell: usize_field("ell"),
        build_ms: f64_field("build_ms").ok_or("row missing build_ms")?,
        reference_ms: f64_field("reference_ms"),
        speedup: f64_field("speedup"),
        identical: v.get("identical").and_then(Value::as_bool),
        queries: usize_field("queries"),
        route_ms: f64_field("route_ms"),
        queries_per_sec: f64_field("queries_per_sec"),
        phases,
        phase_coverage: f64_field("phase_coverage"),
    })
}

/// Compares this run's rows against a committed baseline file, printing a
/// per-row delta (QPS for scheme rows, build time for the kernel row, plus a
/// per-phase breakdown where both sides recorded one). Returns the number of
/// scheme rows whose QPS regressed by more than 10%.
fn compare_baseline(rows: &[Row], baseline: &[Row], path: &str) -> usize {
    let mut regressions = 0usize;
    let mut matched = 0usize;
    println!("\nbaseline comparison against {path}:");
    for r in rows {
        let Some(b) =
            baseline.iter().find(|b| b.kind == r.kind && b.n == r.n && b.scheme == r.scheme)
        else {
            continue;
        };
        matched += 1;
        let what = r.scheme.as_deref().unwrap_or("ball-kernel");
        if r.kind == "ball-kernel" {
            println!(
                "{:>6} {:<12} build {:>9.0}ms vs {:>9.0}ms ({:+.1}%)",
                r.n,
                what,
                r.build_ms,
                b.build_ms,
                (r.build_ms / b.build_ms.max(1e-9) - 1.0) * 100.0,
            );
            continue;
        }
        let cur = r.queries_per_sec.unwrap_or(0.0);
        let base = b.queries_per_sec.unwrap_or(0.0);
        let regressed = base > 0.0 && cur < 0.9 * base;
        if regressed {
            regressions += 1;
        }
        println!(
            "{:>6} {:<12} qps {:>9.0} vs {:>9.0} ({:+.1}%){}  build {:>8.0}ms vs {:>8.0}ms",
            r.n,
            what,
            cur,
            base,
            if base > 0.0 { (cur / base - 1.0) * 100.0 } else { 0.0 },
            if regressed { "  REGRESSION" } else { "" },
            r.build_ms,
            b.build_ms,
        );
        if let (Some(cur_phases), Some(base_phases)) = (&r.phases, &b.phases) {
            for p in cur_phases {
                if let Some(q) = base_phases.iter().find(|q| q.name == p.name) {
                    println!(
                        "       phase {:<14} {:>8.0}ms vs {:>8.0}ms ({:+.1}%)",
                        p.name,
                        p.ms,
                        q.ms,
                        (p.ms / q.ms.max(1e-9) - 1.0) * 100.0,
                    );
                }
            }
        }
    }
    if matched == 0 {
        println!("  (no baseline rows match this run's kind/n/scheme combinations)");
    }
    regressions
}

fn main() {
    let registry = SchemeRegistry::with_defaults();
    assert_meta_covers_registry(&registry);
    let opts = parse_options(&registry);
    // The whole baseline is single-threaded so the artefacts track the
    // kernel, not the machine's core count.
    routing_par::set_threads(1);
    println!(
        "perf baseline (family={}, eps={}, single-threaded, {} routed queries per scheme)",
        opts.family.name(),
        opts.epsilon,
        opts.queries,
    );
    println!(
        "{:>6} {:<12} {:>10} {:>10} {:>8} {:>9}",
        "n", "what", "build-ms", "ref/route", "speedup", "identical"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;
    for &n in &opts.sizes {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let unweighted = opts.family.generate(n, WeightModel::Unit, &mut rng);
        let weighted = opts.family.generate(n, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);

        let ell = if opts.ell == 0 { (n as f64).sqrt().ceil() as usize } else { opts.ell };
        let kernel = measure_ball_kernel(&weighted, ell);
        print_row(&kernel);
        rows.push(kernel);

        let ctx = BuildContext {
            params: Params::with_epsilon(opts.epsilon),
            seed: opts.seed ^ 0xb111d,
            threads: 1,
        };
        for key in &opts.schemes {
            let meta = scheme_meta(key).expect("--schemes entries are registered and covered");
            let g = if meta.weighted { &weighted } else { &unweighted };
            match measure_scheme(&registry, key, g, &ctx, opts.queries, opts.seed) {
                Some(row) => {
                    print_row(&row);
                    rows.push(row);
                }
                None => failures += 1,
            }
        }
    }

    if failures > 0 {
        eprintln!("ERROR: {failures} scheme build(s) failed");
        std::process::exit(1);
    }
    if rows.iter().any(|r| r.identical == Some(false)) {
        eprintln!("ERROR: flat ball table diverged from the reference build");
        std::process::exit(1);
    }
    println!("\nall flat tables identical to their reference builds");

    if let Some(path) = &opts.json {
        match serde_json::to_string_pretty(&rows) {
            Ok(json) => match std::fs::write(path, json) {
                Ok(()) => println!("(wrote {path})"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            Err(e) => eprintln!("could not serialize rows: {e}"),
        }
    }

    if let Some(path) = &opts.baseline {
        let baseline: Vec<Row> = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| rows_from_json(&text))
        {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("ERROR: could not load baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let regressions = compare_baseline(&rows, &baseline, path);
        if regressions > 0 {
            eprintln!("ERROR: {regressions} row(s) regressed >10% QPS against {path}");
            std::process::exit(1);
        }
    }
}
