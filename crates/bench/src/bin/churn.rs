//! Experiment CH: churn resilience — what does dynamic node/edge churn do
//! to each routing scheme's deliverability, and what does each rebuild
//! policy buy back at what preprocessing cost?
//!
//! For every (scheme × removal mode × rebuild policy) combination the
//! harness runs the seeded churn schedule, routes sampled pairs through the
//! **stale** tables on the **mutated** graph, and prints a per-round table
//! plus a final summary (the DRFE-style resilience table):
//! `strategy × removal-mode → reachability / stretch / rebuild-ms`.
//!
//! Schemes are selected by registry name and built through
//! `compact_routing::SchemeRegistry` — `run_churn` receives a closure over
//! `registry.build(name, g, ctx)`, so this binary contains no per-scheme
//! construction code and any newly registered scheme is immediately
//! churn-testable.
//!
//! Run with: `cargo run -p routing-bench --release --bin churn -- [OPTIONS]`
//!
//! # Options
//!
//! | flag | default | meaning |
//! |------|---------|---------|
//! | `--n <N>` | 1000 | vertices of the base graph |
//! | `--family <F>` | `erdos-renyi` | `erdos-renyi`, `geometric`, `grid`, or `scale-free` |
//! | `--rounds <R>` | 6 | churn rounds |
//! | `--remove-frac <F>` | 0.05 | fraction of alive vertices removed per round |
//! | `--add-frac <F>` | 0.5 | rejoining vertices per removed vertex |
//! | `--edge-remove-frac <F>` | 0.02 | fraction of surviving edges failed per round |
//! | `--edge-add-frac <F>` | 0.02 | new random edges per round (fraction of current edges) |
//! | `--pairs <P>` | 2000 | routed pairs sampled per round |
//! | `--sources <K>` | 0 | cap on distinct pair sources per round (0 = uniform pairs); set e.g. 128 for `n ≥ 10,000` so each round's ground truth costs `K` parallel Dijkstras |
//! | `--threads <T>` | 0 | preprocessing/ground-truth threads (0 = all hardware threads) |
//! | `--epsilon <E>` | 0.5 | stretch slack for the paper's schemes |
//! | `--seed <S>` | 7 | master seed (schedules and pair samples derive from it) |
//! | `--schemes <LIST>` | `tz2,warmup,thm11` | comma list of registered scheme names, or `all` |
//! | `--modes <LIST>` | `random,targeted` | comma list of `random`, `targeted`, `degree-weighted` |
//! | `--policies <LIST>` | `never,every-2,threshold-0.9` | comma list of `never`, `every-round`, `every-<k>`, `threshold-<x>` |
//! | `--json <PATH>` | — | also write every run as a JSON array of `ChurnRunResult` |
//! | `--metrics <PATH>` | — | enable telemetry counters and write a JSON metric export (failure-class counters, rebuild timing histogram, run aggregates) |
//! | `--help` | — | print this table |
//!
//! # Output schema (`--json`)
//!
//! The JSON artefact is an array of `routing_churn::ChurnRunResult`
//! objects: `{scheme, mode, policy, base_n, base_m, build_ms, rounds: [
//! {round, alive, edges, port_preservation, stale: {pairs,
//! disconnected_pairs, delivered, failures: {invalid_port, wrong_delivery,
//! hop_budget, unknown_vertex, scheme_error}, stretch}, rebuilt,
//! rebuild_ms, component_fraction, post: {n, m, reachability,
//! mean_stretch}?}, ...]}`.

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::cli::{self, Args, CliError};
use routing_churn::{
    run_churn, ChurnExperimentConfig, ChurnPlanConfig, ChurnRunResult, RebuildPolicy, RemovalMode,
};
use routing_core::{BuildContext, Params};
use routing_graph::generators::{Family, WeightModel};

struct Options {
    n: usize,
    family: Family,
    rounds: usize,
    remove_frac: f64,
    add_frac: f64,
    edge_remove_frac: f64,
    edge_add_frac: f64,
    pairs: usize,
    sources: usize,
    threads: usize,
    epsilon: f64,
    seed: u64,
    schemes: Vec<String>,
    modes: Vec<RemovalMode>,
    policies: Vec<RebuildPolicy>,
    json: Option<String>,
    metrics: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            n: 1000,
            family: Family::ErdosRenyi,
            rounds: 6,
            remove_frac: 0.05,
            add_frac: 0.5,
            edge_remove_frac: 0.02,
            edge_add_frac: 0.02,
            pairs: 2000,
            sources: 0,
            threads: 0,
            epsilon: 0.5,
            seed: 7,
            schemes: vec!["tz2".into(), "warmup".into(), "thm11".into()],
            modes: vec![RemovalMode::Random, RemovalMode::Targeted],
            policies: vec![
                RebuildPolicy::Never,
                RebuildPolicy::EveryK(2),
                RebuildPolicy::ReachabilityBelow(0.9),
            ],
            json: None,
            metrics: None,
        }
    }
}

fn usage() -> ! {
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    // Keep this text in sync with the module doc table above and README.md.
    eprintln!(
        "churn — churn-resilience experiment for compact routing schemes

USAGE: churn [OPTIONS]

OPTIONS:
  --n <N>                 vertices of the base graph            [default: 1000]
  --family <F>            erdos-renyi|geometric|grid|scale-free [default: erdos-renyi]
  --rounds <R>            churn rounds                          [default: 6]
  --remove-frac <F>       alive vertices removed per round      [default: 0.05]
  --add-frac <F>          rejoining vertices per removal        [default: 0.5]
  --edge-remove-frac <F>  surviving edges failed per round      [default: 0.02]
  --edge-add-frac <F>     new edges per round                   [default: 0.02]
  --pairs <P>             routed pairs sampled per round        [default: 2000]
  --sources <K>           distinct pair sources per round
                          (0 = uniform pairs)                   [default: 0]
  --threads <T>           worker threads (0 = all hardware)     [default: 0]
  --epsilon <E>           epsilon of the paper's schemes        [default: 0.5]
  --seed <S>              master seed                           [default: 7]
  --schemes <LIST>        registered scheme names, or 'all'     [default: tz2,warmup,thm11]
  --modes <LIST>          random,targeted,degree-weighted       [default: random,targeted]
  --policies <LIST>       never,every-round,every-<k>,threshold-<x>
                                                                [default: never,every-2,threshold-0.9]
  --json <PATH>           write all runs as a JSON array
  --metrics <PATH>        enable telemetry counters; write a JSON
                          metric export (failure classes, timings)
  --help                  show this help"
    );
}

fn parse_options(registry: &SchemeRegistry) -> Options {
    let mut opts = Options::default();
    let mut args = Args::from_env();
    while let Some(flag) = args.next_flag() {
        if flag == "--help" || flag == "-h" {
            print_usage();
            std::process::exit(0);
        }
        let value = cli::ok_or_usage(args.value(&flag), usage);
        let invalid = |what: &str| -> CliError {
            CliError::Invalid { flag: flag.clone(), value: value.clone(), what: what.to_string() }
        };
        match flag.as_str() {
            "--n" => opts.n = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage),
            "--family" => opts.family = cli::ok_or_usage(cli::parse_family(&flag, &value), usage),
            "--rounds" => {
                opts.rounds = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--remove-frac" => {
                opts.remove_frac = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--add-frac" => {
                opts.add_frac = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--edge-remove-frac" => {
                opts.edge_remove_frac =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--edge-add-frac" => {
                opts.edge_add_frac =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--pairs" => {
                opts.pairs = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--sources" => {
                opts.sources = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--threads" => {
                opts.threads = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--epsilon" => {
                opts.epsilon = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--seed" => {
                opts.seed = cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--schemes" => {
                opts.schemes =
                    cli::ok_or_usage(cli::parse_schemes(&flag, &value, &registry.names()), usage)
            }
            "--modes" => {
                opts.modes = cli::ok_or_usage(
                    value
                        .split(',')
                        .map(|m| RemovalMode::parse(m).ok_or_else(|| invalid("unknown mode")))
                        .collect::<Result<Vec<_>, _>>(),
                    usage,
                )
            }
            "--policies" => {
                opts.policies = cli::ok_or_usage(
                    value
                        .split(',')
                        .map(|p| RebuildPolicy::parse(p).ok_or_else(|| invalid("unknown policy")))
                        .collect::<Result<Vec<_>, _>>(),
                    usage,
                )
            }
            "--json" => opts.json = Some(value),
            "--metrics" => opts.metrics = Some(value),
            _ => cli::die(CliError::UnknownFlag { flag }, usage),
        }
    }
    opts
}

fn print_rounds(result: &ChurnRunResult) {
    println!(
        "\n--- {} | mode={} | policy={} | build {:.0} ms ---",
        result.scheme, result.mode, result.policy, result.build_ms
    );
    println!(
        "{:>5} {:>6} {:>7} {:>10} {:>7} {:>8} {:>8} {:>24} {:>8} {:>11} {:>10}",
        "round",
        "alive",
        "edges",
        "ports-kept",
        "reach",
        "stretch",
        "max-str",
        "failures(ip/wd/hb/uv/se)",
        "rebuilt",
        "rebuild-ms",
        "post-reach"
    );
    for r in &result.rounds {
        let f = &r.stale.failures;
        println!(
            "{:>5} {:>6} {:>7} {:>9.1}% {:>6.1}% {:>8.3} {:>8.3} {:>24} {:>8} {:>11.1} {:>10}",
            r.round,
            r.alive,
            r.edges,
            100.0 * r.port_preservation,
            100.0 * r.stale.reachability(),
            r.stale.stretch.mean_multiplicative().unwrap_or(1.0),
            r.stale.stretch.max_multiplicative().unwrap_or(1.0),
            format!(
                "{}/{}/{}/{}/{}",
                f.invalid_port, f.wrong_delivery, f.hop_budget, f.unknown_vertex, f.scheme_error
            ),
            if r.rebuilt { "yes" } else { "-" },
            r.rebuild_ms,
            r.post
                .as_ref()
                .map_or("-".to_string(), |p| format!("{:.1}%", 100.0 * p.reachability)),
        );
    }
}

fn print_summary(results: &[ChurnRunResult]) {
    println!("\n=== churn-resilience summary (final round) ===");
    println!(
        "{:<30} {:<16} {:<15} {:>11} {:>11} {:>9} {:>9} {:>12}",
        "scheme", "mode", "policy", "final-reach", "worst-reach", "stretch", "rebuilds", "rebuild-ms"
    );
    println!("{}", "-".repeat(120));
    for r in results {
        let final_stretch = r
            .rounds
            .last()
            .and_then(|x| x.stale.stretch.mean_multiplicative())
            .unwrap_or(1.0);
        println!(
            "{:<30} {:<16} {:<15} {:>10.1}% {:>10.1}% {:>9.3} {:>9} {:>12.1}",
            r.scheme,
            r.mode,
            r.policy,
            100.0 * r.final_reachability(),
            100.0 * r.worst_reachability(),
            final_stretch,
            r.rebuild_count(),
            r.total_rebuild_ms(),
        );
    }
}

fn main() {
    let registry = SchemeRegistry::with_defaults();
    let opts = parse_options(&registry);
    if opts.metrics.is_some() {
        // The stale-routing simulator mirrors every failure class into the
        // churn_fail_* counters; the flag turns those mirrors on.
        routing_obs::set_metrics(true);
    }
    let threads =
        if opts.threads == 0 { routing_par::available_threads() } else { opts.threads };
    routing_par::set_threads(threads);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let base = opts.family.generate(opts.n, WeightModel::Unit, &mut rng);
    println!(
        "base instance: family={} n={} m={} | rounds={} remove={:.0}% add={:.0}% pairs={} seed={} threads={}",
        opts.family.name(),
        base.n(),
        base.m(),
        opts.rounds,
        100.0 * opts.remove_frac,
        100.0 * opts.add_frac,
        opts.pairs,
        opts.seed,
        threads,
    );

    let build_ctx = BuildContext {
        params: Params::with_epsilon(opts.epsilon),
        seed: opts.seed ^ 0xb111d,
        threads,
    };
    let mut results: Vec<ChurnRunResult> = Vec::new();
    for (mode_idx, &mode) in opts.modes.iter().enumerate() {
        let plan_cfg = ChurnPlanConfig {
            rounds: opts.rounds,
            remove_frac: opts.remove_frac,
            add_frac: opts.add_frac,
            edge_remove_frac: opts.edge_remove_frac,
            edge_add_frac: opts.edge_add_frac,
            mode,
            // One trajectory per mode, shared by every scheme and policy so
            // their rows are comparable.
            seed: opts.seed ^ (0x5eed << mode_idx),
        };
        for scheme in &opts.schemes {
            for &policy in &opts.policies {
                let cfg = ChurnExperimentConfig {
                    pairs_per_round: opts.pairs,
                    sources_per_round: opts.sources,
                    policy,
                    seed: opts.seed ^ 0xa11ce,
                };
                // Registry dispatch: the same closure serves the initial
                // build and every policy-triggered rebuild.
                match run_churn(&base, &plan_cfg, &cfg, |g| {
                    registry.build(scheme, g, &build_ctx)
                }) {
                    Ok(result) => {
                        print_rounds(&result);
                        results.push(result);
                    }
                    Err(e) => eprintln!(
                        "run failed: scheme={scheme} mode={} policy={policy}: {e}",
                        mode.name()
                    ),
                }
            }
        }
    }

    print_summary(&results);

    if let Some(path) = &opts.json {
        match serde_json::to_string_pretty(&results) {
            Ok(json) => match std::fs::write(path, json) {
                Ok(()) => println!("\n(wrote {path})"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            },
            Err(e) => eprintln!("could not serialize results: {e}"),
        }
    }

    if let Some(path) = &opts.metrics {
        write_metrics(path, &results);
    }
}

/// Exports the run's telemetry as a JSON metric object: the well-known
/// counters (the `churn_fail_*` failure classes fired by the stale-routing
/// simulator), run-level aggregates, and a histogram of per-event rebuild
/// wall-clock so the cost of each policy's repair work is visible as a
/// distribution, not just a sum.
fn write_metrics(path: &str, results: &[ChurnRunResult]) {
    let mut set = routing_obs::MetricSet::gather();
    let mut rebuild_us = routing_obs::latency::LatencyHistogram::new();
    let mut build_ms_total = 0.0;
    let mut rebuild_ms_total = 0.0;
    let (mut rounds, mut rebuilds, mut pairs, mut delivered) = (0u64, 0u64, 0u64, 0u64);
    for r in results {
        build_ms_total += r.build_ms;
        for round in &r.rounds {
            rounds += 1;
            pairs += round.stale.pairs as u64;
            delivered += round.stale.delivered as u64;
            if round.rebuilt {
                rebuilds += 1;
                rebuild_ms_total += round.rebuild_ms;
                rebuild_us.record((round.rebuild_ms * 1e3) as u64);
            }
        }
    }
    set.counter("churn_runs_total", "scheme x mode x policy runs completed", results.len() as u64);
    set.counter("churn_rounds_total", "churn rounds simulated across all runs", rounds);
    set.counter("churn_rebuilds_total", "policy-triggered rebuilds across all runs", rebuilds);
    set.counter("churn_stale_pairs_total", "pairs routed through stale tables", pairs);
    set.counter("churn_stale_delivered_total", "stale-routed pairs delivered correctly", delivered);
    set.gauge("churn_build_ms_total", "initial preprocessing wall-clock summed over runs", build_ms_total);
    set.gauge("churn_rebuild_ms_total", "rebuild wall-clock summed over all triggered rebuilds", rebuild_ms_total);
    set.histogram("churn_rebuild_us", "per-rebuild wall-clock, microseconds", &rebuild_us);
    match std::fs::write(path, routing_obs::export::json(&set)) {
        Ok(()) => eprintln!("wrote {} metric series to {path}", set.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
