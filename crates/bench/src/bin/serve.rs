//! Experiment E-SERVE: throughput and tail latency of the sharded
//! concurrent query engine (`routing-serve`) against the single-threaded
//! `simulate` loop that produced the BENCH_5 scheme rows.
//!
//! Per shard count the binary starts a [`ShardedEngine`], drives it with
//! `--readers` concurrent reader threads pulling Zipf-skewed batches from
//! seeded [`ZipfWorkload`]s while a writer performs `--swaps` epoch swaps
//! under the load, and reports aggregate + per-shard queries/second and
//! p50/p99/p999 latency from the engine's merged shard histograms. A
//! `single-thread` row measured with exactly the BENCH_5 methodology (one
//! `simulate` call per query, same machine, same run) anchors the
//! comparison; each `serve` row carries its speedup against that anchor.
//!
//! The engine's throughput edge on a small machine is *not* parallelism
//! (CI runs this on one core): it is the batched lean path — no per-query
//! path allocation, one snapshot load per batch, and one label erasure per
//! destination run in a dest-sorted batch — which is exactly what the
//! serving layer exists to amortize.
//!
//! With `--verify` the binary additionally routes a sample of pairs
//! through both the engine (post-swap, quiescent) and the direct
//! simulator and exits non-zero on any divergence or latency-accounting
//! mismatch — the CI smoke mode.
//!
//! Run with: `cargo run -p routing-bench --release --bin serve -- [OPTIONS]`
//!
//! # Options
//!
//! | flag | default | meaning |
//! |------|---------|---------|
//! | `--n <N>` | `10000` | vertex count |
//! | `--scheme <KEY>` | `tz2` | registered scheme to serve |
//! | `--shards <LIST>` | `1,2,4` | comma list of shard counts |
//! | `--readers <R>` | `2` | concurrent reader threads |
//! | `--queries <Q>` | `100000` | queries per shard-count run |
//! | `--batch <B>` | `1024` | queries per batch |
//! | `--swaps <K>` | `2` | epoch swaps performed under load |
//! | `--zipf <S>` | `0.99` | Zipf exponent of the load |
//! | `--family <F>` | `erdos-renyi` | graph family |
//! | `--seed <S>` | `13` | master seed |
//! | `--reps <R>` | `3` | repetitions per configuration (best-of, damps machine noise) |
//! | `--json <PATH>` | — | write every row as a JSON array (`BENCH_7.json`) |
//! | `--metrics <PATH>` | — | enable telemetry counters; write Prometheus text exposition at exit |
//! | `--verify` | off | equivalence + accounting self-check, non-zero exit on failure |
//! | `--help` | — | print this table |
//!
//! The committed `BENCH_7.json` at the repository root is this binary's
//! output with default flags plus `--verify`.

use std::sync::Arc;
use std::time::Instant;

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::cli::{self, Args, CliError};
use routing_core::BuildContext;
use routing_graph::generators::{Family, WeightModel};
use routing_graph::Graph;
use routing_model::{simulate, DynScheme};
use routing_serve::{EngineConfig, LatencyHistogram, ShardedEngine, ZipfWorkload};
use serde::Serialize;

struct Options {
    n: usize,
    scheme: String,
    shards: Vec<usize>,
    readers: usize,
    queries: usize,
    batch: usize,
    swaps: u64,
    zipf: f64,
    family: Family,
    seed: u64,
    reps: usize,
    json: Option<String>,
    metrics: Option<String>,
    verify: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            n: 10_000,
            scheme: "tz2".into(),
            shards: vec![1, 2, 4],
            readers: 2,
            queries: 100_000,
            batch: 1024,
            swaps: 2,
            zipf: 0.99,
            family: Family::ErdosRenyi,
            seed: 13,
            reps: 3,
            json: None,
            metrics: None,
            verify: false,
        }
    }
}

/// One measurement row of the serving benchmark.
#[derive(Debug, Clone, Serialize)]
struct Row {
    /// `"single-thread"` (the BENCH_5-methodology anchor) or `"serve"`.
    kind: String,
    n: usize,
    m: usize,
    scheme: String,
    /// Worker shards (`null` for the anchor row).
    shards: Option<usize>,
    /// Concurrent reader threads (`null` for the anchor row).
    readers: Option<usize>,
    /// Queries per batch (`null` for the anchor row).
    batch: Option<usize>,
    /// Zipf exponent of the load.
    zipf: f64,
    /// Total routed queries.
    queries: usize,
    /// Wall-clock of the whole run, milliseconds.
    route_ms: f64,
    /// Aggregate routed queries per second.
    queries_per_sec: f64,
    /// `queries_per_sec / anchor queries_per_sec` (serve rows).
    speedup_vs_single: Option<f64>,
    /// Epoch swaps performed under load (serve rows).
    swaps: Option<u64>,
    /// Final published epoch after the run (serve rows).
    final_epoch: Option<u64>,
    /// Aggregate latency quantiles, nanoseconds (serve rows).
    p50_ns: Option<u64>,
    /// 99th percentile, nanoseconds.
    p99_ns: Option<u64>,
    /// 99.9th percentile, nanoseconds.
    p999_ns: Option<u64>,
    /// Mean per-query latency, nanoseconds.
    mean_ns: Option<f64>,
    /// Per-shard queries/second, indexed by shard (serve rows).
    per_shard_qps: Option<Vec<f64>>,
    /// Set by `--verify`: engine answers matched the direct simulator and
    /// the histograms accounted for every query.
    verified: Option<bool>,
}

fn usage() -> ! {
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    // Keep this text in sync with the module doc table above and README.md.
    eprintln!(
        "serve — sharded concurrent query engine: throughput + tail latency vs single-thread

USAGE: serve [OPTIONS]

OPTIONS:
  --n <N>                 vertex count                           [default: 10000]
  --scheme <KEY>          registered scheme to serve             [default: tz2]
  --shards <LIST>         comma list of shard counts             [default: 1,2,4]
  --readers <R>           concurrent reader threads              [default: 2]
  --queries <Q>           queries per shard-count run            [default: 100000]
  --batch <B>             queries per batch                      [default: 1024]
  --swaps <K>             epoch swaps performed under load       [default: 2]
  --zipf <S>              Zipf exponent of the load              [default: 0.99]
  --family <F>            erdos-renyi|geometric|grid|scale-free  [default: erdos-renyi]
  --seed <S>              master seed                            [default: 13]
  --reps <R>              repetitions per config (best-of)       [default: 3]
  --json <PATH>           write all rows as a JSON array
  --metrics <PATH>        enable the telemetry counters and write a Prometheus
                          text exposition of every metric at end of run
  --verify                equivalence + accounting self-check (non-zero exit on failure)
  --help                  show this help"
    );
}

fn parse_options(registry: &SchemeRegistry) -> Options {
    let mut opts = Options::default();
    let mut args = Args::from_env();
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            "--verify" => {
                opts.verify = true;
                continue;
            }
            _ => {}
        }
        let value = cli::ok_or_usage(args.value(&flag), usage);
        match flag.as_str() {
            "--n" => {
                opts.n =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--scheme" => {
                let known = registry.names();
                let picked =
                    cli::ok_or_usage(cli::parse_schemes(&flag, &value, &known), usage);
                opts.scheme = picked.into_iter().next().unwrap_or_else(|| "tz2".into());
            }
            "--shards" => {
                opts.shards = cli::ok_or_usage(cli::parse_usize_list(&flag, &value), usage)
            }
            "--readers" => {
                opts.readers =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--queries" => {
                opts.queries =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--batch" => {
                opts.batch =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--swaps" => {
                opts.swaps =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--zipf" => {
                opts.zipf =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected a float"), usage)
            }
            "--family" => opts.family = cli::ok_or_usage(cli::parse_family(&flag, &value), usage),
            "--seed" => {
                opts.seed =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--reps" => {
                opts.reps =
                    cli::ok_or_usage(cli::parse_value(&flag, &value, "expected an integer"), usage)
            }
            "--json" => opts.json = Some(value),
            "--metrics" => opts.metrics = Some(value),
            _ => cli::die(CliError::UnknownFlag { flag }, usage),
        }
    }
    if opts.batch == 0 || opts.queries == 0 || opts.readers == 0 || opts.reps == 0 {
        cli::die(
            CliError::Invalid {
                flag: "--batch/--queries/--readers".into(),
                value: "0".into(),
                what: "batch, queries, readers and reps must be positive".into(),
            },
            usage,
        )
    }
    opts
}

/// The anchor: the exact BENCH_5 scheme-row methodology (one full
/// `simulate` per query, single thread), over this run's own Zipf stream so
/// the comparison shares the query distribution.
fn measure_single_thread(g: &Graph, scheme: &dyn DynScheme, opts: &Options) -> Row {
    let mut load = ZipfWorkload::new(g.n(), opts.zipf, opts.seed ^ 0x51);
    let pairs = load.next_batch(opts.queries);
    let t = Instant::now();
    for &(u, v) in &pairs {
        let out = simulate(g, scheme, u, v).expect("scheme routes its own graph");
        debug_assert_eq!(out.destination(), v);
    }
    let route_ms = t.elapsed().as_secs_f64() * 1e3;
    Row {
        kind: "single-thread".into(),
        n: g.n(),
        m: g.m(),
        scheme: scheme.name().to_string(),
        shards: None,
        readers: None,
        batch: None,
        zipf: opts.zipf,
        queries: pairs.len(),
        route_ms,
        queries_per_sec: pairs.len() as f64 / (route_ms / 1e3).max(1e-9),
        speedup_vs_single: None,
        swaps: None,
        final_epoch: None,
        p50_ns: None,
        p99_ns: None,
        p999_ns: None,
        mean_ns: None,
        per_shard_qps: None,
        verified: None,
    }
}

/// One serve row: drive the engine with concurrent readers and a swapping
/// writer, then read per-shard stats back. Returns the row, whether the
/// `--verify` checks passed (always true when not verifying), and the
/// merged per-query latency histogram (for the `--metrics` exposition).
fn measure_serve(
    g: &Arc<Graph>,
    scheme: &Arc<dyn DynScheme>,
    alt: &Arc<dyn DynScheme>,
    shards: usize,
    opts: &Options,
) -> (Row, bool, LatencyHistogram) {
    let engine = Arc::new(
        ShardedEngine::new(Arc::clone(g), Arc::clone(scheme), EngineConfig::with_shards(shards))
            .expect("snapshot matches the graph"),
    );

    let per_reader = opts.queries / opts.readers;
    let batches_per_reader = per_reader.div_ceil(opts.batch);
    let total_queries = batches_per_reader * opts.batch * opts.readers;

    // Pregenerate every reader's query stream: the anchor row gets its
    // pairs up front too, so workload generation stays out of both clocks.
    let streams: Vec<Vec<Vec<(routing_graph::VertexId, routing_graph::VertexId)>>> = (0..opts
        .readers)
        .map(|reader| {
            let mut load =
                ZipfWorkload::new(g.n(), opts.zipf, opts.seed ^ ((reader as u64) << 8));
            (0..batches_per_reader).map(|_| load.next_batch(opts.batch)).collect()
        })
        .collect();

    let t = Instant::now();
    std::thread::scope(|scope| {
        // Writer: spread `--swaps` publications across the run. The swap
        // alternates between the alternate build and the original so every
        // epoch is a real table change.
        scope.spawn(|| {
            for s in 0..opts.swaps {
                std::thread::sleep(std::time::Duration::from_millis(2));
                let next = if s % 2 == 0 { alt } else { scheme };
                engine
                    .publish(Arc::clone(g), Arc::clone(next))
                    .expect("published snapshot matches the engine");
            }
        });
        for stream in &streams {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for pairs in stream {
                    for answer in engine.route_batch(pairs) {
                        answer.expect("scheme routes its own graph");
                    }
                }
            });
        }
    });
    let route_ms = t.elapsed().as_secs_f64() * 1e3;

    let stats = engine.stats();
    let mut aggregate = LatencyHistogram::new();
    for s in &stats {
        aggregate.merge(&s.latency);
    }
    let wall_s = (route_ms / 1e3).max(1e-9);
    let per_shard_qps: Vec<f64> = stats.iter().map(|s| s.queries as f64 / wall_s).collect();

    let mut ok = true;
    let routed: u64 = stats.iter().map(|s| s.queries).sum();
    if routed != total_queries as u64 || aggregate.count() != routed {
        eprintln!(
            "ACCOUNTING FAILURE ({shards} shards): {routed} routed, {} in histograms, {} driven",
            aggregate.count(),
            total_queries
        );
        ok = false;
    }
    if stats.iter().map(|s| s.errors).sum::<u64>() != 0 {
        eprintln!("ACCOUNTING FAILURE ({shards} shards): errors under load");
        ok = false;
    }
    if opts.verify {
        // Quiescent equivalence: after the writer is done, engine answers
        // must be bit-identical to the direct simulator on the current
        // snapshot.
        let snap = engine.snapshot();
        let mut load = ZipfWorkload::new(g.n(), opts.zipf, opts.seed ^ 0x7e);
        let sample = load.next_batch(512.min(opts.queries));
        for (answer, &(u, v)) in engine.route_batch(&sample).iter().zip(&sample) {
            let got = match answer {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("VERIFY FAILURE: engine failed {u:?}->{v:?}: {e}");
                    ok = false;
                    break;
                }
            };
            let want = simulate(g, snap.scheme(), u, v).expect("direct routing succeeds");
            if got.weight != want.weight
                || got.hops != want.hops
                || got.max_header_words != want.max_header_words
            {
                eprintln!(
                    "VERIFY FAILURE: {u:?}->{v:?} engine={got:?} direct=(w={}, hops={})",
                    want.weight, want.hops
                );
                ok = false;
            }
        }
    }

    let row = Row {
        kind: "serve".into(),
        n: g.n(),
        m: g.m(),
        scheme: scheme.name().to_string(),
        shards: Some(shards),
        readers: Some(opts.readers),
        batch: Some(opts.batch),
        zipf: opts.zipf,
        queries: total_queries,
        route_ms,
        queries_per_sec: total_queries as f64 / wall_s,
        speedup_vs_single: None, // filled by the caller against the anchor
        swaps: Some(opts.swaps),
        final_epoch: Some(engine.epoch()),
        p50_ns: aggregate.quantile(0.5),
        p99_ns: aggregate.quantile(0.99),
        p999_ns: aggregate.quantile(0.999),
        mean_ns: aggregate.mean(),
        per_shard_qps: Some(per_shard_qps),
        verified: if opts.verify { Some(ok) } else { None },
    };
    (row, ok, aggregate)
}

fn print_row(r: &Row) {
    match r.kind.as_str() {
        "single-thread" => println!(
            "{:>6} {:<14} {:>7} {:>12.0}/s            (anchor: direct simulate loop)",
            r.n, r.scheme, r.queries, r.queries_per_sec,
        ),
        _ => println!(
            "{:>6} {:<14} {:>7} {:>12.0}/s  x{:<5.2} p50={}ns p99={}ns p999={}ns",
            r.n,
            format!("{}@{}sh", r.scheme, r.shards.unwrap_or(0)),
            r.queries,
            r.queries_per_sec,
            r.speedup_vs_single.unwrap_or(0.0),
            r.p50_ns.unwrap_or(0),
            r.p99_ns.unwrap_or(0),
            r.p999_ns.unwrap_or(0),
        ),
    }
}

fn main() {
    let registry = SchemeRegistry::with_defaults();
    let opts = parse_options(&registry);
    if opts.metrics.is_some() {
        // Counters stay one relaxed load when this is off; --metrics opts
        // into the real increments for the whole run.
        routing_obs::set_metrics(true);
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let g = Arc::new(opts.family.generate(
        opts.n,
        WeightModel::Uniform { lo: 1, hi: 32 },
        &mut rng,
    ));
    eprintln!(
        "generated {:?} graph: n={} m={}; building {} (+ alternate epoch build)…",
        opts.family,
        g.n(),
        g.m(),
        opts.scheme
    );

    let ctx = BuildContext { seed: opts.seed, threads: 1, ..BuildContext::default() };
    let scheme: Arc<dyn DynScheme> =
        Arc::from(registry.build(&opts.scheme, &g, &ctx).unwrap_or_else(|e| {
            eprintln!("build failed: scheme={}: {e}", opts.scheme);
            std::process::exit(1);
        }));
    // The alternate build the writer swaps in: same scheme, different seed,
    // so published epochs carry genuinely different tables.
    let alt_ctx = BuildContext { seed: opts.seed ^ 0xa17, threads: 1, ..BuildContext::default() };
    let alt: Arc<dyn DynScheme> =
        Arc::from(registry.build(&opts.scheme, &g, &alt_ctx).unwrap_or_else(|e| {
            eprintln!("alternate build failed: scheme={}: {e}", opts.scheme);
            std::process::exit(1);
        }));

    println!(
        "{:>6} {:<14} {:>7} {:>14} {:>7}",
        "n", "config", "queries", "throughput", "speedup"
    );

    // Best-of-`reps` per configuration: wall-clock on shared machines
    // swings by 2-3x on a seconds timescale, and best-of is the standard
    // way to ask "what can this code do" rather than "what was the noisy
    // neighbor doing".
    let anchor = (0..opts.reps)
        .map(|_| measure_single_thread(&g, scheme.as_ref(), &opts))
        .max_by(|a, b| a.queries_per_sec.total_cmp(&b.queries_per_sec))
        .expect("reps >= 1");
    print_row(&anchor);

    let mut rows = vec![anchor.clone()];
    let mut all_ok = true;
    let mut merged_latency = LatencyHistogram::new();
    for &shards in &opts.shards {
        let mut best: Option<Row> = None;
        for _ in 0..opts.reps {
            let (row, ok, latency) = measure_serve(&g, &scheme, &alt, shards.max(1), &opts);
            all_ok &= ok;
            merged_latency.merge(&latency);
            if best.as_ref().is_none_or(|b| row.queries_per_sec > b.queries_per_sec) {
                best = Some(row);
            }
        }
        let mut row = best.expect("reps >= 1");
        row.speedup_vs_single = Some(row.queries_per_sec / anchor.queries_per_sec);
        print_row(&row);
        rows.push(row);
    }

    if let Some(path) = &opts.json {
        let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
        std::fs::write(path, json + "\n").expect("write json output");
        eprintln!("wrote {} rows to {path}", rows.len());
    }

    if let Some(path) = &opts.metrics {
        // Every registered counter (zeros included, so the series set is
        // stable for scrapers), plus this run's throughput gauges and the
        // merged latency histogram.
        let mut set = routing_obs::MetricSet::gather();
        let best_qps = rows
            .iter()
            .filter(|r| r.kind == "serve")
            .map(|r| r.queries_per_sec)
            .fold(0.0f64, f64::max);
        set.gauge("serve_qps", "best aggregate routed queries per second across serve rows", best_qps);
        set.gauge(
            "serve_single_thread_qps",
            "anchor row: direct simulate loop, queries per second",
            anchor.queries_per_sec,
        );
        set.histogram(
            "serve_latency_ns",
            "per-query latency under load, all serve repetitions merged",
            &merged_latency,
        );
        std::fs::write(path, routing_obs::export::prometheus(&set)).expect("write metrics output");
        eprintln!("wrote {} metric series to {path}", set.len());
    }

    if !all_ok {
        eprintln!("serve: FAILED (equivalence or accounting check, see above)");
        std::process::exit(1);
    }
}
