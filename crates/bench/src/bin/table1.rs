//! Experiment T1: regenerate the paper's Table 1 — stretch and per-vertex
//! table size of every implemented scheme (ours and the measured baselines)
//! side by side with the cited theoretical rows.
//!
//! Run with: `cargo run -p routing-bench --release --bin table1 [n] [epsilon]`

use routing_bench::{make_graph, print_table, run_table1, to_json, ExperimentConfig};
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let epsilon: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.25);
    let cfg = ExperimentConfig { n, epsilon, seed: 7, pairs: Some(4000) };

    for family in [Family::ErdosRenyi, Family::Geometric] {
        let unweighted = make_graph(family, WeightModel::Unit, &cfg);
        let weighted = make_graph(family, WeightModel::Uniform { lo: 1, hi: 32 }, &cfg);
        println!(
            "\ninstance family={} n={} m(unweighted)={} m(weighted)={} eps={}",
            family.name(),
            unweighted.n(),
            unweighted.m(),
            weighted.m(),
            cfg.epsilon
        );
        match run_table1(&unweighted, &weighted, &cfg) {
            Ok(rows) => {
                print_table(&format!("Table 1 on {} graphs", family.name()), &rows);
                if let Ok(json) = to_json(&rows) {
                    let path = format!("table1_{}.json", family.name());
                    if std::fs::write(&path, json).is_ok() {
                        println!("(wrote {path})");
                    }
                }
            }
            Err(e) => eprintln!("table 1 failed on {}: {e}", family.name()),
        }
    }
}
