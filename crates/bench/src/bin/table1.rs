//! Experiment T1: regenerate the paper's Table 1 — stretch and per-vertex
//! table size of every measured scheme the registry knows (ours and the
//! baselines) side by side with the cited theoretical rows.
//!
//! Scheme construction dispatches through
//! `compact_routing::SchemeRegistry` inside `routing_bench::run_table1`;
//! registering a new scheme (plus its `SchemeMeta` row) adds a measured
//! row here with no edits to this binary.
//!
//! Run with: `cargo run -p routing-bench --release --bin table1 [n] [epsilon]`

use compact_routing::registry::SchemeRegistry;
use routing_bench::{
    assert_meta_covers_registry, make_graph, print_table, run_table1, to_json, ExperimentConfig,
};
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let epsilon: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.25);
    let cfg = ExperimentConfig { n, epsilon, seed: 7, pairs: Some(4000) };
    let registry = SchemeRegistry::with_defaults();
    assert_meta_covers_registry(&registry);

    for family in [Family::ErdosRenyi, Family::Geometric] {
        let unweighted = make_graph(family, WeightModel::Unit, &cfg);
        let weighted = make_graph(family, WeightModel::Uniform { lo: 1, hi: 32 }, &cfg);
        println!(
            "\ninstance family={} n={} m(unweighted)={} m(weighted)={} eps={}",
            family.name(),
            unweighted.n(),
            unweighted.m(),
            weighted.m(),
            cfg.epsilon
        );
        match run_table1(&registry, &unweighted, &weighted, &cfg) {
            Ok(rows) => {
                print_table(&format!("Table 1 on {} graphs", family.name()), &rows);
                if let Ok(json) = to_json(&rows) {
                    let path = format!("table1_{}.json", family.name());
                    if std::fs::write(&path, json).is_ok() {
                        println!("(wrote {path})");
                    }
                }
            }
            Err(e) => eprintln!("table 1 failed on {}: {e}", family.name()),
        }
    }
}
