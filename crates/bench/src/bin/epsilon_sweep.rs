//! Experiment E-EPS: how the `1/ε` factor in the table-size bounds and the
//! `+ε` in the stretch bounds materialize. Fixes `n`, sweeps `ε`, and prints
//! measured stretch and table sizes for the three measured schemes of the
//! paper, built through `compact_routing::SchemeRegistry`.
//!
//! Run with: `cargo run -p routing-bench --release --bin epsilon_sweep [n]`

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::{evaluate_scheme, scheme_meta, ExperimentConfig};
use routing_core::{BuildContext, Params};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(300);
    let mut rng = StdRng::seed_from_u64(17);
    let unweighted = Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng);
    let weighted = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);
    let exact_u = DistanceMatrix::new(&unweighted);
    let exact_w = DistanceMatrix::new(&weighted);
    let registry = SchemeRegistry::with_defaults();
    // The paper's three ε-parameterized schemes, swept at every ε.
    let keys = ["thm10", "thm11", "warmup"];

    println!("epsilon sweep, n={n} (erdos-renyi)");
    println!(
        "{:>8} {:<10} {:>10} {:>10} {:>12} {:>10}",
        "epsilon", "scheme", "max str", "mean str", "table max", "header"
    );
    for &epsilon in &[2.0, 1.0, 0.5, 0.25, 0.125] {
        let cfg = ExperimentConfig { n, epsilon, seed: 17, pairs: Some(2000) };
        let ctx = BuildContext {
            params: Params::with_epsilon(epsilon),
            seed: 17,
            threads: routing_par::threads(),
        };
        for key in keys {
            let meta = scheme_meta(key).expect("sweep keys are registered");
            let (g, exact) = if meta.weighted {
                (&weighted, &exact_w)
            } else {
                (&unweighted, &exact_u)
            };
            let scheme = registry.build(key, g, &ctx).expect(key);
            let r = evaluate_scheme(g, scheme.as_ref(), exact, &cfg).expect("eval");
            println!(
                "{:>8} {:<10} {:>10.3} {:>10.3} {:>12} {:>10}",
                epsilon,
                key,
                r.stretch.max_multiplicative().unwrap_or(1.0),
                r.stretch.mean_multiplicative().unwrap_or(1.0),
                r.table.max(),
                r.max_header_words
            );
        }
    }
}
