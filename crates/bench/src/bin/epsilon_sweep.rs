//! Experiment E-EPS: how the `1/ε` factor in the table-size bounds and the
//! `+ε` in the stretch bounds materialize. Fixes `n`, sweeps `ε`, and prints
//! measured stretch and table sizes for the three measured schemes of the
//! paper.
//!
//! Run with: `cargo run -p routing-bench --release --bin epsilon_sweep [n]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_bench::{evaluate_scheme, ExperimentConfig};
use routing_core::{Params, SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(300);
    let mut rng = StdRng::seed_from_u64(17);
    let unweighted = Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng);
    let weighted = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 32 }, &mut rng);
    let exact_u = DistanceMatrix::new(&unweighted);
    let exact_w = DistanceMatrix::new(&weighted);

    println!("epsilon sweep, n={n} (erdos-renyi)");
    println!(
        "{:>8} {:<10} {:>10} {:>10} {:>12} {:>10}",
        "epsilon", "scheme", "max str", "mean str", "table max", "header"
    );
    for &epsilon in &[2.0, 1.0, 0.5, 0.25, 0.125] {
        let cfg = ExperimentConfig { n, epsilon, seed: 17, pairs: Some(2000) };
        let params = Params::with_epsilon(epsilon);
        let mut rng = StdRng::seed_from_u64(17);
        let runs: Vec<(&str, routing_model::eval::EvalReport)> = vec![
            (
                "thm10",
                evaluate_scheme(
                    &unweighted,
                    &SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).expect("thm10"),
                    &exact_u,
                    &cfg,
                )
                .expect("eval"),
            ),
            (
                "thm11",
                evaluate_scheme(
                    &weighted,
                    &SchemeFivePlusEps::build(&weighted, &params, &mut rng).expect("thm11"),
                    &exact_w,
                    &cfg,
                )
                .expect("eval"),
            ),
            (
                "warmup",
                evaluate_scheme(
                    &weighted,
                    &SchemeThreePlusEps::build(&weighted, &params, &mut rng).expect("warmup"),
                    &exact_w,
                    &cfg,
                )
                .expect("eval"),
            ),
        ];
        for (name, r) in runs {
            println!(
                "{:>8} {:<10} {:>10.3} {:>10.3} {:>12} {:>10}",
                epsilon,
                name,
                r.stretch.max_multiplicative().unwrap_or(1.0),
                r.stretch.mean_multiplicative().unwrap_or(1.0),
                r.table.max(),
                r.max_header_words
            );
        }
    }
}
