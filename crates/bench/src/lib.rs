//! Experiment harness regenerating the paper's evaluation artefacts.
//!
//! The paper is a theory paper: its "evaluation" is Table 1 (stretch vs.
//! per-vertex table size of the new schemes against prior routing schemes)
//! plus the per-theorem guarantees. The harness therefore measures, for every
//! scheme implemented in this workspace,
//!
//! * observed multiplicative/affine stretch over sampled (or all) pairs,
//! * per-vertex routing-table size in `O(log n)`-bit words (max and mean),
//! * label and header sizes,
//!
//! and prints them side by side with the theoretical bounds, so "who wins, by
//! roughly what factor, and where the crossovers fall" can be read off.
//!
//! # Registry-driven dispatch
//!
//! Every binary under `src/bin/` selects schemes by **name** through the
//! facade's [`compact_routing::registry::SchemeRegistry`] — no binary
//! carries per-scheme construction code. What the binaries add on top is
//! harness *metadata* ([`SchemeMeta`]: the paper's claimed bounds, the
//! claimed `Õ(n^x)` space exponent, and whether the scheme evaluates on the
//! weighted or the unweighted instance), looked up by the same registry key.
//! Adding a scheme to the workspace therefore costs one `SchemeBuilder`
//! registration (facade) plus one [`SCHEME_METAS`] row (here); every binary
//! discovers it through `--schemes` with no further edits.
//!
//! The shared `--schemes`/`--n`/`--seed`/`--json`/… flag handling lives in
//! [`cli`].
//!
//! Binaries under `src/bin/` drive individual experiments (see DESIGN.md's
//! experiment index); the Criterion benches under `benches/` time
//! preprocessing and per-hop routing decisions.
//!
//! # The `perf` binary
//!
//! The `perf` binary is the repo's **tracked performance baseline**: it
//! times, single-threadedly, every selected scheme's build plus a fixed
//! number of routed queries at a sweep of `n`, and the allocation-free
//! ball-kernel build against the pre-refactor `HashMap` implementation
//! (verifying the two tables bit-identical — CI fails on divergence). Its
//! `--json` output is the `BENCH_<pr>.json` artefact format; `BENCH_5.json`
//! at the repository root is the first committed point of that trajectory.
//!
//! # The `serve` binary
//!
//! The `serve` binary benchmarks the `routing-serve` serving layer: it
//! drives a sharded [`routing_serve::ShardedEngine`] with concurrent
//! readers pulling Zipf-skewed batches while a writer hot-swaps rebuilt
//! tables (epoch swaps) under the load, and reports aggregate + per-shard
//! queries/second and p50/p99/p999 latency against a `single-thread`
//! anchor row measured with the `perf` methodology in the same run.
//! `BENCH_7.json` at the repository root is its committed artefact;
//! `--verify` adds an equivalence + accounting self-check with a non-zero
//! exit on failure (the CI smoke mode).
//!
//! # The `churn` binary
//!
//! Beyond the static Table 1 artefacts, the `churn` binary runs the
//! dynamic-churn resilience experiment of the `routing-churn` crate: it
//! subjects every selected scheme to seeded multi-round node/edge churn
//! (uniform random, targeted-on-hubs, or degree-weighted removals), routes
//! sampled pairs through the **stale** tables on the **mutated** graph, and
//! reports per round: reachability, stretch of the delivered pairs, a
//! failure breakdown (invalid port / wrong delivery / hop-budget loop /
//! unknown vertex / scheme error), and the wall-clock cost of rebuilds
//! triggered by the selected `routing_churn::RebuildPolicy`. Run
//! `cargo run -p routing-bench --release --bin churn -- --help` for the
//! full flag table; the flags and the JSON output schema are documented in
//! the binary's module docs (`src/bin/churn.rs`) and in the top-level
//! README, and `--json <path>` writes the runs as a JSON array of
//! `routing_churn::ChurnRunResult`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use routing_core::{BuildContext, Params};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};
use routing_graph::Graph;
use routing_graph::VertexId;
use routing_model::eval::{evaluate, EvalReport, PairSelection};
use routing_model::{simulate, DynScheme, RouteError};

/// Configuration of one experiment run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of vertices of the generated instance.
    pub n: usize,
    /// RNG seed (generation and preprocessing are deterministic given it).
    pub seed: u64,
    /// Stretch slack `ε` used by the paper's schemes.
    pub epsilon: f64,
    /// Number of sampled source–destination pairs (`None` = all pairs).
    pub pairs: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { n: 400, seed: 7, epsilon: 0.25, pairs: Some(4000) }
    }
}

impl ExperimentConfig {
    /// The pair-selection policy implied by the configuration.
    pub fn selection(&self) -> PairSelection {
        match self.pairs {
            Some(k) => PairSelection::Sampled(k),
            None => PairSelection::AllPairs,
        }
    }

    /// Scheme parameters implied by the configuration.
    ///
    /// Pins `HittingStrategy::Random` (the library default moved to the
    /// deterministic `Greedy`): the committed `table1_*.json` trajectory was
    /// produced from the seeded Random stream, and keeping experiments on it
    /// makes those artifacts byte-stable across kernel rewires.
    pub fn params(&self) -> Params {
        Params { hitting: routing_core::HittingStrategy::Random, ..Params::with_epsilon(self.epsilon) }
    }
}

/// A claimed stretch bound in machine-checkable form:
/// `(base + eps_coeff·ε)·d + additive`, covering both the fixed bounds of
/// the baselines (`eps_coeff = 0`) and the paper's ε-parameterized schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchBound {
    /// The multiplicative constant (3 for the warm-up, 5 for Thm 11, …).
    pub base: f64,
    /// The coefficient of `ε` in the multiplicative part (0 for baselines).
    pub eps_coeff: f64,
    /// The additive term (1 for Thm 10's `(2+ε, 1)`; 0 otherwise).
    pub additive: f64,
}

impl StretchBound {
    /// The multiplicative factor at a concrete `ε`.
    pub fn factor_at(&self, epsilon: f64) -> f64 {
        self.base + self.eps_coeff * epsilon
    }

    /// Human-readable annotation at a concrete `ε`, e.g. `"5+eps = 5.50"`
    /// or `"(2+eps, 1) = 2.50d+1"` (claim text supplied by the caller).
    pub fn label_at(&self, claim: &str, epsilon: f64) -> String {
        if self.additive > 0.0 {
            format!("{claim} = {:.2}d+{}", self.factor_at(epsilon), self.additive)
        } else if self.eps_coeff > 0.0 {
            format!("{claim} = {:.2}", self.factor_at(epsilon))
        } else {
            claim.to_string()
        }
    }
}

/// Harness metadata for one registered scheme: the paper's claims next to
/// the key the scheme is registered (and built) under.
///
/// This is deliberately *data*, not code — the only per-scheme knowledge a
/// binary needs beyond what the registry provides.
#[derive(Debug, Clone, Copy)]
pub struct SchemeMeta {
    /// The registry key (== `DynScheme::name` of the built scheme).
    pub key: &'static str,
    /// Display name for the Table 1 row.
    pub table1_label: &'static str,
    /// The paper's stretch claim (e.g. `"(2+eps, 1)"`).
    pub claimed_stretch: &'static str,
    /// The stretch claim in machine-checkable form (see [`StretchBound`]).
    pub stretch_bound: StretchBound,
    /// The paper's table-size claim (e.g. `"O~(n^2/3 / eps)"`).
    pub claimed_space: &'static str,
    /// The exponent `x` such that the claimed space is `Õ(n^x)` (used for
    /// normalized columns).
    pub space_exponent: Option<f64>,
    /// Whether the scheme evaluates on the weighted instance (`false`:
    /// unweighted — Theorem 10 is stated for unweighted graphs, and the
    /// exact row anchors the unweighted comparison).
    pub weighted: bool,
}

/// Metadata for every scheme the default registry registers, in registry
/// order. Kept in sync with `SchemeRegistry::with_defaults` by
/// [`assert_meta_covers_registry`] (which CI's registry smoke run
/// exercises).
pub const SCHEME_METAS: &[SchemeMeta] = &[
    SchemeMeta {
        key: "warmup",
        table1_label: "this paper: warm-up 3+eps",
        claimed_stretch: "3+eps",
        stretch_bound: StretchBound { base: 3.0, eps_coeff: 1.0, additive: 0.0 },
        claimed_space: "O~(n^1/2 / eps)",
        space_exponent: Some(0.5),
        weighted: true,
    },
    SchemeMeta {
        key: "thm10",
        table1_label: "this paper: Thm 10 (2+eps,1)",
        claimed_stretch: "(2+eps, 1)",
        stretch_bound: StretchBound { base: 2.0, eps_coeff: 1.0, additive: 1.0 },
        claimed_space: "O~(n^2/3 / eps)",
        space_exponent: Some(2.0 / 3.0),
        weighted: false,
    },
    SchemeMeta {
        key: "thm11",
        table1_label: "this paper: Thm 11 5+eps",
        claimed_stretch: "5+eps",
        stretch_bound: StretchBound { base: 5.0, eps_coeff: 1.0, additive: 0.0 },
        claimed_space: "O~(n^1/3 logD / eps)",
        space_exponent: Some(1.0 / 3.0),
        weighted: true,
    },
    SchemeMeta {
        key: "tz2",
        table1_label: "Thorup-Zwick / Abraham et al. (k=2)",
        claimed_stretch: "3",
        stretch_bound: StretchBound { base: 3.0, eps_coeff: 0.0, additive: 0.0 },
        claimed_space: "O~(n^1/2)",
        space_exponent: Some(0.5),
        weighted: true,
    },
    SchemeMeta {
        key: "tz3",
        table1_label: "Thorup-Zwick (k=3)",
        claimed_stretch: "7",
        stretch_bound: StretchBound { base: 7.0, eps_coeff: 0.0, additive: 0.0 },
        claimed_space: "O~(n^1/3)",
        space_exponent: Some(1.0 / 3.0),
        weighted: true,
    },
    SchemeMeta {
        key: "exact",
        table1_label: "exact shortest paths",
        claimed_stretch: "1",
        stretch_bound: StretchBound { base: 1.0, eps_coeff: 0.0, additive: 0.0 },
        claimed_space: "Theta(n)",
        space_exponent: Some(1.0),
        weighted: false,
    },
    SchemeMeta {
        key: "spanner",
        table1_label: "greedy 3-spanner routing",
        claimed_stretch: "3",
        stretch_bound: StretchBound { base: 3.0, eps_coeff: 0.0, additive: 0.0 },
        claimed_space: "Theta(n)",
        space_exponent: Some(1.0),
        weighted: true,
    },
    SchemeMeta {
        key: "thm13",
        table1_label: "this paper: Thm 13 multilevel (l=2)",
        claimed_stretch: "(3+2/l+eps, 2)",
        stretch_bound: StretchBound { base: 4.0, eps_coeff: 1.0, additive: 2.0 },
        claimed_space: "O~(l n^1/2 / eps)",
        space_exponent: Some(0.5),
        weighted: true,
    },
    SchemeMeta {
        key: "thm15",
        table1_label: "this paper: Thm 15 multilevel (l=4)",
        claimed_stretch: "(3+2/l+eps, 2)",
        stretch_bound: StretchBound { base: 3.5, eps_coeff: 1.0, additive: 2.0 },
        claimed_space: "O~(l n^1/2 / eps)",
        space_exponent: Some(0.5),
        weighted: true,
    },
    SchemeMeta {
        key: "thm16k3",
        table1_label: "this paper: Thm 16 (k=3)",
        claimed_stretch: "4k-7+eps",
        stretch_bound: StretchBound { base: 5.0, eps_coeff: 1.0, additive: 0.0 },
        claimed_space: "O~(n^1/3 / eps)",
        space_exponent: Some(1.0 / 3.0),
        weighted: true,
    },
];

/// The metadata row for a registry key.
pub fn scheme_meta(key: &str) -> Option<&'static SchemeMeta> {
    SCHEME_METAS.iter().find(|m| m.key == key)
}

/// Asserts that every scheme in `registry` has a [`SchemeMeta`] row and
/// vice versa — the harness-side half of the registry naming invariant.
///
/// # Panics
///
/// Panics (with the offending key) on any mismatch; the registry smoke run
/// in CI calls this so a scheme can never be registered without harness
/// metadata or the other way around.
pub fn assert_meta_covers_registry(registry: &SchemeRegistry) {
    for key in registry.names() {
        assert!(scheme_meta(key).is_some(), "registered scheme {key:?} has no SchemeMeta row");
    }
    for (i, meta) in SCHEME_METAS.iter().enumerate() {
        assert!(
            registry.contains(meta.key),
            "SchemeMeta row {:?} is dead: no scheme is registered under it",
            meta.key
        );
        assert!(
            SCHEME_METAS[..i].iter().all(|m| m.key != meta.key),
            "duplicate SchemeMeta row for {:?}",
            meta.key
        );
    }
}

/// Routes every pair in `pairs` through `scheme` and checks the routed
/// weight against the declared envelope `(base + eps_coeff·ε)·d + additive`
/// — the executable form of the bound table ([`SCHEME_METAS`]).
///
/// Returns the number of checked (non-self) pairs on success.
///
/// # Errors
///
/// Returns a description of the first violating pair: source, destination,
/// routed weight, true distance and the allowed maximum. Routing failures
/// and unreachable pairs are reported the same way — a conformance run is
/// on a connected graph, where every pair must route.
pub fn check_stretch_conformance(
    g: &Graph,
    scheme: &dyn DynScheme,
    exact: &DistanceMatrix,
    bound: &StretchBound,
    epsilon: f64,
    pairs: &[(VertexId, VertexId)],
) -> Result<usize, String> {
    let name = scheme.name();
    let factor = bound.factor_at(epsilon);
    let mut checked = 0usize;
    for &(u, v) in pairs {
        if u == v {
            continue;
        }
        let out = simulate(g, scheme, u, v)
            .map_err(|e| format!("{name}: routing {u}->{v} failed: {e}"))?;
        let d = exact
            .dist(u, v)
            .ok_or_else(|| format!("{name}: no finite distance for {u}->{v}"))?;
        let allowed = factor * d as f64 + bound.additive;
        if out.weight as f64 > allowed + 1e-9 {
            return Err(format!(
                "{name}: stretch bound violated for {u}->{v}: routed {} > \
                 ({factor:.3})*{d} + {} = {allowed:.3}",
                out.weight, bound.additive
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// One row of the measured Table 1: what the paper claims next to what we
/// measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Scheme name.
    pub scheme: String,
    /// The paper's stretch claim (e.g. `"(2+eps, 1)"`).
    pub claimed_stretch: String,
    /// The paper's table-size claim (e.g. `"O~(n^2/3 / eps)"`).
    pub claimed_space: String,
    /// The exponent `x` such that the claimed space is `Õ(n^x)` (used for
    /// the normalized column); `None` for rows that are not measured.
    pub space_exponent: Option<f64>,
    /// Measured results, `None` for theory-only comparison rows
    /// (Abraham–Gavoille and Chechik, which the paper cites but does not
    /// describe in implementable detail).
    pub measured: Option<EvalReport>,
}

impl Table1Row {
    /// Formats the row for the harness' plain-text table.
    pub fn format(&self) -> String {
        match &self.measured {
            Some(r) => format!(
                "{:<34} {:<12} {:<18} | stretch max={:>6.3} mean={:>6.3} | table max={:>8} mean={:>10.1} {} | label={:>3} header={:>3}",
                self.scheme,
                self.claimed_stretch,
                self.claimed_space,
                r.stretch.max_multiplicative().unwrap_or(1.0),
                r.stretch.mean_multiplicative().unwrap_or(1.0),
                r.table.max(),
                r.table.mean(),
                match self.space_exponent {
                    Some(e) => format!("(max/n^{:.2}={:>6.1})", e, r.table.normalized_max(e)),
                    None => String::new(),
                },
                r.max_label_words,
                r.max_header_words,
            ),
            None => format!(
                "{:<34} {:<12} {:<18} | (theoretical comparison row, not measured)",
                self.scheme, self.claimed_stretch, self.claimed_space
            ),
        }
    }
}

/// Errors surfaced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// A scheme failed to preprocess.
    Build(routing_core::BuildError),
    /// Routing failed (always a bug in a scheme).
    Route(RouteError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Build(e) => write!(f, "preprocessing failed: {e}"),
            HarnessError::Route(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<routing_core::BuildError> for HarnessError {
    fn from(e: routing_core::BuildError) -> Self {
        HarnessError::Build(e)
    }
}

impl From<RouteError> for HarnessError {
    fn from(e: RouteError) -> Self {
        HarnessError::Route(e)
    }
}

/// Generates the instance a configuration describes for a given family and
/// weight model.
pub fn make_graph(family: Family, weights: WeightModel, cfg: &ExperimentConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    family.generate(cfg.n, weights, &mut rng)
}

/// Evaluates one scheme on one graph through the erased surface.
///
/// # Errors
///
/// Propagates routing failures (which indicate scheme bugs).
pub fn evaluate_scheme(
    g: &Graph,
    scheme: &dyn DynScheme,
    exact: &DistanceMatrix,
    cfg: &ExperimentConfig,
) -> Result<EvalReport, HarnessError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
    Ok(evaluate(g, scheme, exact, cfg.selection(), &mut rng)?)
}

/// Runs the full Table 1 experiment on one unweighted and one weighted
/// instance: every measured scheme the registry knows, plus the theory-only
/// comparison rows.
///
/// Measured rows are built through `registry` — this function contains no
/// per-scheme construction code; [`SCHEME_METAS`] supplies each row's
/// claimed bounds and instance flavour.
///
/// # Errors
///
/// Propagates preprocessing and routing failures.
pub fn run_table1(
    registry: &SchemeRegistry,
    unweighted: &Graph,
    weighted: &Graph,
    cfg: &ExperimentConfig,
) -> Result<Vec<Table1Row>, HarnessError> {
    // The traditional Table 1 row order: the exact anchor first, then prior
    // art, then the theory-only citations, then the paper's schemes. Any
    // scheme registered beyond these seven is appended after them, so a new
    // registration gains a measured row with no edits here.
    const ROW_ORDER: [&str; 7] = ["exact", "tz2", "tz3", "spanner", "warmup", "thm10", "thm11"];
    let mut row_keys: Vec<&str> = ROW_ORDER.to_vec();
    for key in registry.names() {
        if !row_keys.contains(&key) {
            row_keys.push(key);
        }
    }

    let exact_u = DistanceMatrix::new(unweighted);
    let exact_w = DistanceMatrix::new(weighted);
    let ctx = BuildContext {
        params: cfg.params(),
        seed: cfg.seed ^ 0xc0ffee,
        threads: routing_par::threads(),
    };

    let mut rows = Vec::new();
    for key in row_keys {
        if key == "warmup" {
            // The theory-only rows sit between the baselines and the
            // paper's schemes, as in the paper.
            rows.push(Table1Row {
                scheme: "Abraham-Gavoille [1]".into(),
                claimed_stretch: "(2, 1)".into(),
                claimed_space: "O~(n^3/4)".into(),
                space_exponent: None,
                measured: None,
            });
            rows.push(Table1Row {
                scheme: "Chechik [10]".into(),
                claimed_stretch: "~10.52".into(),
                claimed_space: "O~(n^1/4 logD)".into(),
                space_exponent: None,
                measured: None,
            });
        }
        let meta = scheme_meta(key).expect("ROW_ORDER keys all have metadata");
        let (g, exact) =
            if meta.weighted { (weighted, &exact_w) } else { (unweighted, &exact_u) };
        let scheme = registry.build(key, g, &ctx)?;
        // ε-parameterized schemes (the paper's) get the concrete ε in their
        // row label; fixed-bound baselines do not.
        let label = if meta.stretch_bound.eps_coeff > 0.0 {
            format!("{} (eps={})", meta.table1_label, cfg.epsilon)
        } else {
            meta.table1_label.to_string()
        };
        rows.push(Table1Row {
            scheme: label,
            claimed_stretch: meta.claimed_stretch.into(),
            claimed_space: meta.claimed_space.into(),
            space_exponent: meta.space_exponent,
            measured: Some(evaluate_scheme(g, scheme.as_ref(), exact, cfg)?),
        });
    }

    Ok(rows)
}

/// Prints rows as a plain-text table with a header.
pub fn print_table(title: &str, rows: &[Table1Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<34} {:<12} {:<18} | measured",
        "scheme", "stretch", "claimed space"
    );
    println!("{}", "-".repeat(140));
    for row in rows {
        println!("{}", row.format());
    }
}

/// Serializes rows as JSON (one experiment artefact per harness run).
///
/// # Errors
///
/// Returns a `serde_json` error if serialization fails (it cannot for these
/// types).
pub fn to_json(rows: &[Table1Row]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::generators;

    #[test]
    fn config_defaults_and_selection() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.params().epsilon, 0.25);
        assert!(matches!(cfg.selection(), PairSelection::Sampled(_)));
        let all = ExperimentConfig { pairs: None, ..cfg };
        assert!(matches!(all.selection(), PairSelection::AllPairs));
    }

    #[test]
    fn metas_cover_the_default_registry() {
        assert_meta_covers_registry(&SchemeRegistry::with_defaults());
        assert!(scheme_meta("tz2").is_some());
        assert!(scheme_meta("thm13").is_some());
        assert!(scheme_meta("thm16k3").is_some());
        assert!(scheme_meta("thm12").is_none());
    }

    #[test]
    #[should_panic(expected = "dead")]
    fn meta_rows_without_a_registered_scheme_are_rejected() {
        // An empty registry leaves every SCHEME_METAS row dead; the checker
        // must fail on the dead-row direction, not only on registered
        // schemes lacking metadata.
        assert_meta_covers_registry(&SchemeRegistry::new());
    }

    #[test]
    fn conformance_checker_accepts_exact_and_rejects_impossible_bounds() {
        let cfg = ExperimentConfig { n: 40, seed: 11, epsilon: 0.5, pairs: None };
        let g = make_graph(Family::ErdosRenyi, WeightModel::Uniform { lo: 1, hi: 9 }, &cfg);
        let exact = DistanceMatrix::new(&g);
        let registry = SchemeRegistry::with_defaults();
        let ctx = BuildContext { params: cfg.params(), seed: 3, threads: 1 };
        let scheme = registry.build("exact", &g, &ctx).unwrap();
        let pairs: Vec<(VertexId, VertexId)> =
            (0..40).map(|i| (VertexId(i), VertexId((i + 7) % 40))).collect();

        let ok_bound = StretchBound { base: 1.0, eps_coeff: 0.0, additive: 0.0 };
        let checked =
            check_stretch_conformance(&g, scheme.as_ref(), &exact, &ok_bound, 0.5, &pairs)
                .unwrap();
        assert_eq!(checked, 40);

        // Deliberate violation: no scheme routes below the true distance, so
        // a sub-1 bound must be reported — the checker can fail.
        let impossible = StretchBound { base: 0.5, eps_coeff: 0.0, additive: 0.0 };
        let err = check_stretch_conformance(&g, scheme.as_ref(), &exact, &impossible, 0.5, &pairs)
            .unwrap_err();
        assert!(err.contains("stretch bound violated"), "unexpected error: {err}");
    }

    #[test]
    fn table1_runs_on_small_instances() {
        let cfg = ExperimentConfig { n: 60, seed: 3, epsilon: 0.5, pairs: Some(200) };
        let unweighted = make_graph(Family::ErdosRenyi, WeightModel::Unit, &cfg);
        let weighted = make_graph(Family::ErdosRenyi, WeightModel::Uniform { lo: 1, hi: 8 }, &cfg);
        let registry = SchemeRegistry::with_defaults();
        let rows = run_table1(&registry, &unweighted, &weighted, &cfg).unwrap();
        assert!(rows.len() >= 8);
        // Exact routing row must have stretch exactly 1.
        let exact_row = rows.iter().find(|r| r.scheme.contains("exact")).unwrap();
        assert_eq!(
            exact_row.measured.as_ref().unwrap().stretch.max_multiplicative(),
            Some(1.0)
        );
        // Theory-only rows are present but unmeasured.
        assert!(rows.iter().any(|r| r.measured.is_none()));
        // Every measured paper scheme respects its claimed stretch bound
        // loosely (the affine +1 of Thm 10 absorbed by +1.0).
        for row in &rows {
            if let Some(m) = &row.measured {
                assert!(m.stretch.max_multiplicative().unwrap_or(1.0) < 8.0);
                assert!(!row.format().is_empty());
            }
        }
        let json = to_json(&rows).unwrap();
        assert!(json.contains("claimed_stretch"));
    }

    #[test]
    fn make_graph_is_deterministic() {
        let cfg = ExperimentConfig { n: 80, ..ExperimentConfig::default() };
        let a = make_graph(Family::Geometric, WeightModel::Unit, &cfg);
        let b = make_graph(Family::Geometric, WeightModel::Unit, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn harness_error_display() {
        let e: HarnessError = routing_core::BuildError::Disconnected.into();
        assert!(e.to_string().contains("preprocessing failed"));
        let e: HarnessError =
            RouteError::BadLabel { what: "x".into() }.into();
        assert!(e.to_string().contains("routing failed"));
        let _ = generators::path(2);
    }
}
