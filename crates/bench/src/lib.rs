//! Experiment harness regenerating the paper's evaluation artefacts.
//!
//! The paper is a theory paper: its "evaluation" is Table 1 (stretch vs.
//! per-vertex table size of the new schemes against prior routing schemes)
//! plus the per-theorem guarantees. The harness therefore measures, for every
//! scheme implemented in this workspace,
//!
//! * observed multiplicative/affine stretch over sampled (or all) pairs,
//! * per-vertex routing-table size in `O(log n)`-bit words (max and mean),
//! * label and header sizes,
//!
//! and prints them side by side with the theoretical bounds, so "who wins, by
//! roughly what factor, and where the crossovers fall" can be read off.
//!
//! Binaries under `src/bin/` drive individual experiments (see DESIGN.md's
//! experiment index); the Criterion benches under `benches/` time
//! preprocessing and per-hop routing decisions.
//!
//! # The `churn` binary
//!
//! Beyond the static Table 1 artefacts, the `churn` binary runs the
//! dynamic-churn resilience experiment of the `routing-churn` crate: it
//! subjects every selected scheme to seeded multi-round node/edge churn
//! (uniform random, targeted-on-hubs, or degree-weighted removals), routes
//! sampled pairs through the **stale** tables on the **mutated** graph, and
//! reports per round: reachability, stretch of the delivered pairs, a
//! failure breakdown (invalid port / wrong delivery / hop-budget loop /
//! unknown vertex / scheme error), and the wall-clock cost of rebuilds
//! triggered by the selected `routing_churn::RebuildPolicy`. Run
//! `cargo run -p routing-bench --release --bin churn -- --help` for the
//! full flag table; the flags and the JSON output schema are documented in
//! the binary's module docs (`src/bin/churn.rs`) and in the top-level
//! README, and `--json <path>` writes the runs as a JSON array of
//! `routing_churn::ChurnRunResult`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use routing_baselines::{ExactScheme, TzRoutingScheme};
use routing_core::{Params, SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{Family, WeightModel};
use routing_graph::Graph;
use routing_model::eval::{evaluate, EvalReport, PairSelection};
use routing_model::{RouteError, RoutingScheme};

/// Configuration of one experiment run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of vertices of the generated instance.
    pub n: usize,
    /// RNG seed (generation and preprocessing are deterministic given it).
    pub seed: u64,
    /// Stretch slack `ε` used by the paper's schemes.
    pub epsilon: f64,
    /// Number of sampled source–destination pairs (`None` = all pairs).
    pub pairs: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { n: 400, seed: 7, epsilon: 0.25, pairs: Some(4000) }
    }
}

impl ExperimentConfig {
    /// The pair-selection policy implied by the configuration.
    pub fn selection(&self) -> PairSelection {
        match self.pairs {
            Some(k) => PairSelection::Sampled(k),
            None => PairSelection::AllPairs,
        }
    }

    /// Scheme parameters implied by the configuration.
    pub fn params(&self) -> Params {
        Params::with_epsilon(self.epsilon)
    }
}

/// One row of the measured Table 1: what the paper claims next to what we
/// measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Scheme name.
    pub scheme: String,
    /// The paper's stretch claim (e.g. `"(2+eps, 1)"`).
    pub claimed_stretch: String,
    /// The paper's table-size claim (e.g. `"O~(n^2/3 / eps)"`).
    pub claimed_space: String,
    /// The exponent `x` such that the claimed space is `Õ(n^x)` (used for
    /// the normalized column); `None` for rows that are not measured.
    pub space_exponent: Option<f64>,
    /// Measured results, `None` for theory-only comparison rows
    /// (Abraham–Gavoille and Chechik, which the paper cites but does not
    /// describe in implementable detail).
    pub measured: Option<EvalReport>,
}

impl Table1Row {
    /// Formats the row for the harness' plain-text table.
    pub fn format(&self) -> String {
        match &self.measured {
            Some(r) => format!(
                "{:<34} {:<12} {:<18} | stretch max={:>6.3} mean={:>6.3} | table max={:>8} mean={:>10.1} {} | label={:>3} header={:>3}",
                self.scheme,
                self.claimed_stretch,
                self.claimed_space,
                r.stretch.max_multiplicative().unwrap_or(1.0),
                r.stretch.mean_multiplicative().unwrap_or(1.0),
                r.table.max(),
                r.table.mean(),
                match self.space_exponent {
                    Some(e) => format!("(max/n^{:.2}={:>6.1})", e, r.table.normalized_max(e)),
                    None => String::new(),
                },
                r.max_label_words,
                r.max_header_words,
            ),
            None => format!(
                "{:<34} {:<12} {:<18} | (theoretical comparison row, not measured)",
                self.scheme, self.claimed_stretch, self.claimed_space
            ),
        }
    }
}

/// Errors surfaced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// A scheme failed to preprocess.
    Build(routing_core::BuildError),
    /// Routing failed (always a bug in a scheme).
    Route(RouteError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Build(e) => write!(f, "preprocessing failed: {e}"),
            HarnessError::Route(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<routing_core::BuildError> for HarnessError {
    fn from(e: routing_core::BuildError) -> Self {
        HarnessError::Build(e)
    }
}

impl From<RouteError> for HarnessError {
    fn from(e: RouteError) -> Self {
        HarnessError::Route(e)
    }
}

/// Generates the instance a configuration describes for a given family and
/// weight model.
pub fn make_graph(family: Family, weights: WeightModel, cfg: &ExperimentConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    family.generate(cfg.n, weights, &mut rng)
}

/// Evaluates one scheme on one graph.
///
/// # Errors
///
/// Propagates routing failures (which indicate scheme bugs).
pub fn evaluate_scheme<S: RoutingScheme>(
    g: &Graph,
    scheme: &S,
    exact: &DistanceMatrix,
    cfg: &ExperimentConfig,
) -> Result<EvalReport, HarnessError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
    Ok(evaluate(g, scheme, exact, cfg.selection(), &mut rng)?)
}

/// Runs the full Table 1 experiment on one unweighted and one weighted
/// instance: every implemented scheme of the paper, the Thorup–Zwick
/// baselines, the exact-routing extreme, and the theory-only comparison rows.
///
/// # Errors
///
/// Propagates preprocessing and routing failures.
pub fn run_table1(
    unweighted: &Graph,
    weighted: &Graph,
    cfg: &ExperimentConfig,
) -> Result<Vec<Table1Row>, HarnessError> {
    let params = cfg.params();
    let mut rows = Vec::new();
    let exact_u = DistanceMatrix::new(unweighted);
    let exact_w = DistanceMatrix::new(weighted);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc0ffee);

    // Ground-truth extreme.
    let exact_scheme = ExactScheme::build(unweighted);
    rows.push(Table1Row {
        scheme: "exact shortest paths".into(),
        claimed_stretch: "1".into(),
        claimed_space: "Theta(n)".into(),
        space_exponent: Some(1.0),
        measured: Some(evaluate_scheme(unweighted, &exact_scheme, &exact_u, cfg)?),
    });

    // Prior rows of Table 1 that we measure: Thorup-Zwick k=2 and k=3.
    let tz2 = TzRoutingScheme::build(weighted, 2, &mut rng);
    rows.push(Table1Row {
        scheme: "Thorup-Zwick / Abraham et al. (k=2)".into(),
        claimed_stretch: "3".into(),
        claimed_space: "O~(n^1/2)".into(),
        space_exponent: Some(0.5),
        measured: Some(evaluate_scheme(weighted, &tz2, &exact_w, cfg)?),
    });
    let tz3 = TzRoutingScheme::build(weighted, 3, &mut rng);
    rows.push(Table1Row {
        scheme: "Thorup-Zwick (k=3)".into(),
        claimed_stretch: "7".into(),
        claimed_space: "O~(n^1/3)".into(),
        space_exponent: Some(1.0 / 3.0),
        measured: Some(evaluate_scheme(weighted, &tz3, &exact_w, cfg)?),
    });

    // Prior rows we do not re-derive (cited bounds only).
    rows.push(Table1Row {
        scheme: "Abraham-Gavoille [1]".into(),
        claimed_stretch: "(2, 1)".into(),
        claimed_space: "O~(n^3/4)".into(),
        space_exponent: None,
        measured: None,
    });
    rows.push(Table1Row {
        scheme: "Chechik [10]".into(),
        claimed_stretch: "~10.52".into(),
        claimed_space: "O~(n^1/4 logD)".into(),
        space_exponent: None,
        measured: None,
    });

    // The paper's schemes.
    let warmup = SchemeThreePlusEps::build(weighted, &params, &mut rng)?;
    rows.push(Table1Row {
        scheme: format!("this paper: warm-up 3+eps (eps={})", cfg.epsilon),
        claimed_stretch: "3+eps".into(),
        claimed_space: "O~(n^1/2 / eps)".into(),
        space_exponent: Some(0.5),
        measured: Some(evaluate_scheme(weighted, &warmup, &exact_w, cfg)?),
    });
    let thm10 = SchemeTwoPlusEps::build(unweighted, &params, &mut rng)?;
    rows.push(Table1Row {
        scheme: format!("this paper: Thm 10 (2+eps,1) (eps={})", cfg.epsilon),
        claimed_stretch: "(2+eps, 1)".into(),
        claimed_space: "O~(n^2/3 / eps)".into(),
        space_exponent: Some(2.0 / 3.0),
        measured: Some(evaluate_scheme(unweighted, &thm10, &exact_u, cfg)?),
    });
    let thm11 = SchemeFivePlusEps::build(weighted, &params, &mut rng)?;
    rows.push(Table1Row {
        scheme: format!("this paper: Thm 11 5+eps (eps={})", cfg.epsilon),
        claimed_stretch: "5+eps".into(),
        claimed_space: "O~(n^1/3 logD / eps)".into(),
        space_exponent: Some(1.0 / 3.0),
        measured: Some(evaluate_scheme(weighted, &thm11, &exact_w, cfg)?),
    });

    Ok(rows)
}

/// Prints rows as a plain-text table with a header.
pub fn print_table(title: &str, rows: &[Table1Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<34} {:<12} {:<18} | measured",
        "scheme", "stretch", "claimed space"
    );
    println!("{}", "-".repeat(140));
    for row in rows {
        println!("{}", row.format());
    }
}

/// Serializes rows as JSON (one experiment artefact per harness run).
///
/// # Errors
///
/// Returns a `serde_json` error if serialization fails (it cannot for these
/// types).
pub fn to_json(rows: &[Table1Row]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::generators;

    #[test]
    fn config_defaults_and_selection() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.params().epsilon, 0.25);
        assert!(matches!(cfg.selection(), PairSelection::Sampled(_)));
        let all = ExperimentConfig { pairs: None, ..cfg };
        assert!(matches!(all.selection(), PairSelection::AllPairs));
    }

    #[test]
    fn table1_runs_on_small_instances() {
        let cfg = ExperimentConfig { n: 60, seed: 3, epsilon: 0.5, pairs: Some(200) };
        let unweighted = make_graph(Family::ErdosRenyi, WeightModel::Unit, &cfg);
        let weighted = make_graph(Family::ErdosRenyi, WeightModel::Uniform { lo: 1, hi: 8 }, &cfg);
        let rows = run_table1(&unweighted, &weighted, &cfg).unwrap();
        assert!(rows.len() >= 8);
        // Exact routing row must have stretch exactly 1.
        let exact_row = rows.iter().find(|r| r.scheme.contains("exact")).unwrap();
        assert_eq!(
            exact_row.measured.as_ref().unwrap().stretch.max_multiplicative(),
            Some(1.0)
        );
        // Theory-only rows are present but unmeasured.
        assert!(rows.iter().any(|r| r.measured.is_none()));
        // Every measured paper scheme respects its claimed stretch bound
        // loosely (the affine +1 of Thm 10 absorbed by +1.0).
        for row in &rows {
            if let Some(m) = &row.measured {
                assert!(m.stretch.max_multiplicative().unwrap_or(1.0) < 8.0);
                assert!(!row.format().is_empty());
            }
        }
        let json = to_json(&rows).unwrap();
        assert!(json.contains("claimed_stretch"));
    }

    #[test]
    fn make_graph_is_deterministic() {
        let cfg = ExperimentConfig { n: 80, ..ExperimentConfig::default() };
        let a = make_graph(Family::Geometric, WeightModel::Unit, &cfg);
        let b = make_graph(Family::Geometric, WeightModel::Unit, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn harness_error_display() {
        let e: HarnessError = routing_core::BuildError::Disconnected.into();
        assert!(e.to_string().contains("preprocessing failed"));
        let e: HarnessError =
            RouteError::BadLabel { what: "x".into() }.into();
        assert!(e.to_string().contains("routing failed"));
        let _ = generators::path(2);
    }
}
