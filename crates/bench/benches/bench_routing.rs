//! Criterion benchmark: end-to-end per-message routing cost (simulated hops
//! plus local decisions) for each scheme and the exact baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routing_baselines::{ExactScheme, TzRoutingScheme};
use routing_core::{Params, SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::generators::{Family, WeightModel};
use routing_graph::VertexId;
use routing_model::simulate;

fn bench_routing(c: &mut Criterion) {
    let n = 250;
    let mut rng = StdRng::seed_from_u64(5);
    let unweighted = Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng);
    let weighted = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 16 }, &mut rng);
    let params = Params::with_epsilon(0.5);

    let thm10 = SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).expect("thm10");
    let thm11 = SchemeFivePlusEps::build(&weighted, &params, &mut rng).expect("thm11");
    let warmup = SchemeThreePlusEps::build(&weighted, &params, &mut rng).expect("warmup");
    let tz2 = TzRoutingScheme::build(&weighted, 2, &mut rng).unwrap();
    let exact = ExactScheme::build(&weighted).unwrap();

    let pairs: Vec<(VertexId, VertexId)> = (0..64)
        .map(|_| {
            let u = VertexId(rng.gen_range(0..n as u32));
            let v = VertexId(rng.gen_range(0..n as u32));
            (u, v)
        })
        .filter(|(u, v)| u != v)
        .collect();

    let mut group = c.benchmark_group("route_message");
    group.bench_function("thm10_2eps1", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                simulate(&unweighted, &thm10, u, v).expect("route");
            }
        })
    });
    group.bench_function("thm11_5eps", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                simulate(&weighted, &thm11, u, v).expect("route");
            }
        })
    });
    group.bench_function("warmup_3eps", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                simulate(&weighted, &warmup, u, v).expect("route");
            }
        })
    });
    group.bench_function("tz_k2", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                simulate(&weighted, &tz2, u, v).expect("route");
            }
        })
    });
    group.bench_function("exact", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                simulate(&weighted, &exact, u, v).expect("route");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
