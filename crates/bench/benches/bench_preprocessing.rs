//! Criterion benchmark: preprocessing time of each scheme (Table 1 columns
//! are about space, but preprocessing cost is what a deployer pays up front).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_baselines::TzRoutingScheme;
use routing_core::{Params, SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::generators::{Family, WeightModel};

fn bench_preprocessing(c: &mut Criterion) {
    let n = 200;
    let mut rng = StdRng::seed_from_u64(1);
    let unweighted = Family::ErdosRenyi.generate(n, WeightModel::Unit, &mut rng);
    let weighted = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 16 }, &mut rng);
    let params = Params::with_epsilon(0.5);

    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("thm10_2eps1", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).expect("build")
        })
    });
    group.bench_with_input(BenchmarkId::new("thm11_5eps", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            SchemeFivePlusEps::build(&weighted, &params, &mut rng).expect("build")
        })
    });
    group.bench_with_input(BenchmarkId::new("warmup_3eps", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            SchemeThreePlusEps::build(&weighted, &params, &mut rng).expect("build")
        })
    });
    group.bench_with_input(BenchmarkId::new("tz_k2", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            TzRoutingScheme::build(&weighted, 2, &mut rng).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("tz_k3", n), &n, |b, _| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            TzRoutingScheme::build(&weighted, 3, &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
