//! Criterion benchmark: the two techniques in isolation (Lemma 7 intra-set
//! routing and Lemma 8 source-to-destination-set routing), plus the
//! substrates they are built from (vicinity tables and Lemma 4 centers).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_core::{Params, Technique1Scheme, Technique2Scheme};
use routing_graph::generators::{Family, WeightModel};
use routing_graph::VertexId;
use routing_model::simulate;
use routing_vicinity::{sample_centers_bounded, BallTable, Coloring};

fn bench_techniques(c: &mut Criterion) {
    let n = 200;
    let mut rng = StdRng::seed_from_u64(9);
    let g = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 8 }, &mut rng);
    let params = Params::with_epsilon(0.5);
    let q = 8u32;

    let ell = params.scaled(q as usize, n);
    let ball_sets: Vec<Vec<VertexId>> = {
        let balls = BallTable::build(&g, ell);
        g.vertices()
            .map(|u| balls.ball(u).members().iter().map(|&(v, _)| v).collect())
            .collect()
    };
    let coloring = Coloring::build_for_sets(n, q, &ball_sets, 8, &mut rng).expect("coloring");
    let color_of: Vec<u32> = g.vertices().map(|v| coloring.color(v)).collect();
    let dests: Vec<VertexId> = g.vertices().filter(|v| v.0 % 4 == 0).collect();
    let mut dest_partition = vec![Vec::new(); q as usize];
    for (i, w) in dests.iter().enumerate() {
        dest_partition[i % q as usize].push(*w);
    }

    let mut group = c.benchmark_group("techniques");
    group.sample_size(10);
    group.bench_function("substrate_ball_table", |b| {
        b.iter(|| BallTable::build(&g, ell))
    });
    group.bench_function("substrate_lemma4_centers", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            sample_centers_bounded(&g, 30, &mut rng)
        })
    });
    group.bench_function("lemma7_build", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            Technique1Scheme::build(&g, color_of.clone(), &params, &mut rng).expect("lemma 7")
        })
    });
    group.bench_function("lemma8_build", |b| {
        b.iter(|| {
            Technique2Scheme::build(&g, color_of.clone(), dest_partition.clone(), &params)
                .expect("lemma 8")
        })
    });

    let mut rng = StdRng::seed_from_u64(12);
    let t1 = Technique1Scheme::build(&g, color_of.clone(), &params, &mut rng).expect("lemma 7");
    let same_set: Vec<(VertexId, VertexId)> = g
        .vertices()
        .flat_map(|u| g.vertices().map(move |v| (u, v)))
        .filter(|&(u, v)| u != v && color_of[u.index()] == color_of[v.index()])
        .take(64)
        .collect();
    group.bench_function("lemma7_route", |b| {
        b.iter(|| {
            for &(u, v) in &same_set {
                simulate(&g, &t1, u, v).expect("route");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_techniques);
criterion_main!(benches);
