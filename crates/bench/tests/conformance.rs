//! Stretch-bound conformance: the declared bound table ([`routing_bench::
//! SCHEME_METAS`]) is executable, not documentation. For every key the
//! default registry registers, build on random graphs and check every routed
//! pair against the scheme's declared `(base + eps_coeff·ε)·d + additive`
//! envelope — plus a deliberate-violation case proving the checker can fail.
//!
//! The vendored proptest derives its case RNG deterministically from the
//! test name, so these runs are seeded and repeatable: they run in the
//! default `cargo test -q` tier.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use compact_routing::registry::SchemeRegistry;
use routing_bench::{assert_meta_covers_registry, check_stretch_conformance, scheme_meta};
use routing_core::{BuildContext, Params};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{self, WeightModel};
use routing_graph::VertexId;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Every registered scheme, on its declared instance flavour (weighted,
    /// or unweighted for Theorem 10 and the exact anchor), routes every
    /// sampled pair within its declared stretch envelope.
    #[test]
    fn every_registered_scheme_conforms_to_its_declared_bound(
        seed in 1u64..1_000,
        n in 40usize..80,
    ) {
        let eps = 0.25;
        let mut rng_w = StdRng::seed_from_u64(seed);
        let weighted = generators::erdos_renyi(
            n,
            10.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 12 },
            &mut rng_w,
        );
        let mut rng_u = StdRng::seed_from_u64(seed);
        let unweighted =
            generators::erdos_renyi(n, 10.0 / n as f64, WeightModel::Unit, &mut rng_u);
        let exact_w = DistanceMatrix::new(&weighted);
        let exact_u = DistanceMatrix::new(&unweighted);

        let registry = SchemeRegistry::with_defaults();
        assert_meta_covers_registry(&registry);
        let ctx = BuildContext {
            params: Params::with_epsilon(eps),
            seed: seed ^ 0xbead,
            threads: 1,
        };
        let ids: Vec<VertexId> = weighted.vertices().collect();
        let mut pair_rng = StdRng::seed_from_u64(seed ^ 0x9a17);
        let pairs = routing_model::sample_pairs_from(&ids, &ids, 40, &mut pair_rng);

        for key in registry.names() {
            let meta = scheme_meta(key).expect("assert_meta_covers_registry passed");
            let (g, exact) =
                if meta.weighted { (&weighted, &exact_w) } else { (&unweighted, &exact_u) };
            let scheme = registry.build(key, g, &ctx).expect(key);
            match check_stretch_conformance(
                g,
                scheme.as_ref(),
                exact,
                &meta.stretch_bound,
                eps,
                &pairs,
            ) {
                Ok(checked) => prop_assert!(checked > 0, "{key}: no pairs were checked"),
                Err(e) => prop_assert!(false, "{e}"),
            }
        }
    }
}

/// The negative control: a deliberately impossible bound must be reported.
/// No routing scheme delivers below the true distance, so declaring a
/// sub-1 multiplicative bound forces a violation on every non-trivial pair
/// — if the checker ever stops failing on this, it has stopped checking.
#[test]
fn conformance_checker_fails_on_a_deliberately_violated_bound() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::erdos_renyi(50, 0.2, WeightModel::Uniform { lo: 2, hi: 9 }, &mut rng);
    let exact = DistanceMatrix::new(&g);
    let registry = SchemeRegistry::with_defaults();
    let ctx = BuildContext { params: Params::with_epsilon(0.5), seed: 5, threads: 1 };
    let scheme = registry.build("warmup", &g, &ctx).unwrap();
    let pairs: Vec<(VertexId, VertexId)> =
        (0..50).map(|i| (VertexId(i), VertexId((i + 11) % 50))).collect();
    let impossible = routing_bench::StretchBound { base: 0.9, eps_coeff: 0.0, additive: 0.0 };
    let err =
        check_stretch_conformance(&g, scheme.as_ref(), &exact, &impossible, 0.5, &pairs)
            .unwrap_err();
    assert!(err.contains("stretch bound violated"), "unexpected error: {err}");
    assert!(err.contains("warmup"), "error should name the scheme: {err}");
}
