//! Telemetry overhead guard: with profiling and metrics disabled (the
//! default state of every binary that doesn't pass `--metrics`), the
//! instrumentation compiled into the hot paths must cost **zero heap
//! allocations** — a disabled `span()` is one relaxed load returning an
//! inert guard, and a disabled `Counter::inc` is a load and a branch.
//!
//! The guard counts allocations through a wrapping `#[global_allocator]`.
//! Everything lives in ONE `#[test]` so no sibling test can allocate
//! concurrently and pollute the counter (the default libtest runner is
//! multi-threaded *across* tests in a binary).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_baselines::ExactScheme;
use routing_graph::generators::{self, WeightModel};
use routing_graph::VertexId;
use routing_model::{simulate_lean_with_label, DynScheme};

/// Counts every allocation (alloc, alloc_zeroed, realloc) and delegates to
/// the system allocator. Deallocations are not counted — the guard is about
/// *new* memory on the hot path.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocations it performed.
fn allocations_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn disabled_telemetry_adds_zero_allocations_to_hot_paths() {
    // The process default, restated so the guard cannot be weakened by test
    // environment drift.
    routing_obs::set_profiling(false);
    routing_obs::set_metrics(false);

    // (a) The instrumentation primitives themselves: a disabled span guard
    // and a disabled counter increment must never touch the allocator.
    let (n, ()) = allocations_in(|| {
        for _ in 0..10_000 {
            let _span = routing_obs::span("alloc-guard-probe");
            routing_obs::counters::ROUTING_QUERIES.inc();
            routing_obs::counters::ROUTING_HOPS.add(3);
        }
    });
    assert_eq!(n, 0, "disabled span()/Counter must be allocation-free, saw {n} allocations");

    // (b) The routed-query hot path end to end. The exact scheme has a
    // zero-sized header (Box<ZST> does not allocate), so with a pre-erased
    // destination label `simulate_lean_with_label` is the workspace's one
    // fully allocation-free query path — any allocation the telemetry layer
    // sneaks into the simulator shows up here.
    let mut rng = StdRng::seed_from_u64(42);
    let g = generators::erdos_renyi(80, 0.08, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
    let scheme = ExactScheme::build(&g).expect("seeded G(80, 0.08) builds");
    let dyn_scheme: &dyn DynScheme = &scheme;
    let source = VertexId(0);
    let dest = VertexId(17);
    let label = dyn_scheme.label_of(dest);

    // Warm once outside the counted window (and make sure the pair routes).
    simulate_lean_with_label(&g, dyn_scheme, source, dest, &label, g.n())
        .expect("warm-up query routes");

    let (n, outcome) = allocations_in(|| {
        let mut last = None;
        for _ in 0..1_000 {
            last = Some(
                simulate_lean_with_label(&g, dyn_scheme, source, dest, &label, g.n())
                    .expect("counted query routes"),
            );
        }
        last.unwrap()
    });
    assert!(outcome.hops > 0, "the probe pair must actually traverse edges");
    assert_eq!(
        n, 0,
        "routed-query hot path must be allocation-free with telemetry disabled, \
         saw {n} allocations over 1000 queries"
    );

    // (c) Enabling metrics must not change that: counters are static
    // atomics, so even the *enabled* query path stays allocation-free.
    routing_obs::set_metrics(true);
    let (n, _) = allocations_in(|| {
        for _ in 0..1_000 {
            simulate_lean_with_label(&g, dyn_scheme, source, dest, &label, g.n())
                .expect("counted query routes");
        }
    });
    routing_obs::set_metrics(false);
    assert_eq!(n, 0, "enabled counters are static atomics; saw {n} allocations");
    assert!(
        routing_obs::counters::ROUTING_QUERIES.get() >= 1_000,
        "the enabled window must have recorded its queries"
    );
    routing_obs::metrics::reset_counters();
}
