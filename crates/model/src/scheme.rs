//! The [`RoutingScheme`] trait: the contract every compact routing scheme in
//! this workspace implements.

use routing_graph::{Port, VertexId};

use crate::RouteError;

/// A local routing decision made at a vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The message has reached its destination.
    Deliver,
    /// Forward the message on the given local port.
    Forward(Port),
}

/// Types that can report their size in `O(log n)`-bit machine words.
///
/// Headers implement this so the simulator can track the largest header a
/// scheme attaches to a message — one of the quantities the paper bounds
/// (e.g. `O((1/ε) log n)`-bit headers in Lemma 7).
pub trait HeaderSize {
    /// Size of the value in `O(log n)`-bit words.
    fn words(&self) -> usize;
}

impl HeaderSize for () {
    fn words(&self) -> usize {
        0
    }
}

/// A labeled compact routing scheme in the fixed-port model.
///
/// Implementations hold *all* per-vertex routing tables (they are built by a
/// centralized preprocessing phase, as in the paper), but the routing-phase
/// methods must only consult the table of the vertex passed to them, the
/// message header, and the destination label — never global state. The
/// simulator and the tests treat violations of this discipline as bugs.
///
/// Space accounting is in `O(log n)`-bit words: every stored vertex id,
/// distance, port or tree-routing word counts as one unit, so that the
/// `Õ(·)` table-size comparisons in the paper's Table 1 can be made on equal
/// footing between schemes.
pub trait RoutingScheme {
    /// The label attached to a destination (computed in preprocessing).
    ///
    /// `'static` so the label can cross the type-erased
    /// [`crate::erased::DynScheme`] boundary, and `Send + Sync` so an erased
    /// label can cross a *shard* boundary in the serving layer (a query
    /// dispatcher erases labels on one thread and the owning shard consumes
    /// them on another). Every label is owned data — vertex ids, distances,
    /// tree words — so both bounds cost nothing.
    type Label: Clone + Send + Sync + 'static;
    /// The mutable header a message carries. `'static` and `Send` for the
    /// same reasons as [`RoutingScheme::Label`] (headers are created and
    /// mutated on one shard thread at a time, so `Sync` is not required).
    type Header: Clone + HeaderSize + Send + 'static;

    /// Scheme name used in harness output.
    ///
    /// By convention this is the scheme's key in the facade's
    /// `SchemeRegistry` (e.g. `"warmup"`, `"tz2"`), so `--schemes` flags,
    /// registry lookups and harness output can never drift apart. Schemes
    /// whose name depends on a parameter cache the formatted string at
    /// build time.
    fn name(&self) -> &str;

    /// Number of vertices of the preprocessed graph.
    fn n(&self) -> usize;

    /// The label of vertex `v`.
    fn label_of(&self, v: VertexId) -> Self::Label;

    /// Creates the header for a message injected at `source` towards the
    /// destination described by `dest`.
    ///
    /// # Errors
    ///
    /// Returns an error if the label is malformed or the scheme is missing
    /// preprocessing data for this pair (which would indicate a bug).
    fn init_header(&self, source: VertexId, dest: &Self::Label) -> Result<Self::Header, RouteError>;

    /// The local routing decision at vertex `at`.
    ///
    /// # Errors
    ///
    /// Returns an error if the local table lacks the information the scheme
    /// expects (a preprocessing bug) or the label is malformed.
    fn decide(
        &self,
        at: VertexId,
        header: &mut Self::Header,
        dest: &Self::Label,
    ) -> Result<Decision, RouteError>;

    /// Size of the routing table stored at `v`, in `O(log n)`-bit words.
    fn table_words(&self, v: VertexId) -> usize;

    /// Size of the label of `v`, in `O(log n)`-bit words.
    fn label_words(&self, v: VertexId) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_header_has_zero_words() {
        assert_eq!(().words(), 0);
    }

    #[test]
    fn decision_equality() {
        assert_eq!(Decision::Deliver, Decision::Deliver);
        assert_ne!(Decision::Deliver, Decision::Forward(Port(0)));
        assert_eq!(Decision::Forward(Port(2)), Decision::Forward(Port(2)));
    }
}
