//! Hop-by-hop message simulator enforcing the fixed-port semantics.

use routing_graph::{Graph, VertexId, Weight};

use crate::erased::DynScheme;
use crate::scheme::{Decision, HeaderSize};
use crate::RouteError;

/// The result of routing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteOutcome {
    /// The full vertex path the message traversed, from source to the vertex
    /// where it was delivered (inclusive).
    pub path: Vec<VertexId>,
    /// Total weight of the traversed path.
    pub weight: Weight,
    /// Number of edges traversed.
    pub hops: usize,
    /// The largest header size (in `O(log n)`-bit words) observed while the
    /// message was in flight.
    pub max_header_words: usize,
}

impl RouteOutcome {
    /// The source vertex.
    pub fn source(&self) -> VertexId {
        self.path[0]
    }

    /// The vertex where the message was delivered.
    pub fn destination(&self) -> VertexId {
        *self.path.last().expect("path is never empty")
    }
}

/// Routes a message from `source` to `dest` using `scheme`, with a default
/// hop budget of `4 * n + 16`.
///
/// Takes the scheme through the object-safe [`DynScheme`] surface, so the
/// same code path serves typed schemes (every `&S where S: RoutingScheme`
/// coerces) and registry-built `Box<dyn DynScheme>` values alike.
///
/// # Errors
///
/// Propagates scheme errors, and fails if the scheme forwards on a
/// non-existent port, loops past the hop budget, or delivers at the wrong
/// vertex.
pub fn simulate(
    g: &Graph,
    scheme: &dyn DynScheme,
    source: VertexId,
    dest: VertexId,
) -> Result<RouteOutcome, RouteError> {
    simulate_with_ttl(g, scheme, source, dest, 4 * g.n() + 16)
}

/// Routes a message with an explicit hop budget. See [`simulate`].
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_with_ttl(
    g: &Graph,
    scheme: &dyn DynScheme,
    source: VertexId,
    dest: VertexId,
    max_hops: usize,
) -> Result<RouteOutcome, RouteError> {
    let label = scheme.label_of(dest);
    let mut header = scheme.init_header(source, &label)?;
    let mut at = source;
    let mut path = vec![source];
    let mut weight: Weight = 0;
    let mut max_header_words = header.words();

    loop {
        match scheme.decide(at, &mut header, &label)? {
            Decision::Deliver => {
                if at != dest {
                    return Err(RouteError::DeliveredAtWrongVertex { at, destination: dest });
                }
                let hops = path.len() - 1;
                record_delivery(hops, max_header_words);
                return Ok(RouteOutcome { path, weight, hops, max_header_words });
            }
            Decision::Forward(port) => {
                if path.len() > max_hops {
                    return Err(RouteError::HopBudgetExceeded { budget: max_hops });
                }
                if port.index() >= g.degree(at) {
                    return Err(RouteError::InvalidPort { at, port: port.0 });
                }
                let edge = g.neighbor_at(at, port);
                weight += edge.weight;
                at = edge.to;
                path.push(at);
                max_header_words = max_header_words.max(header.words());
            }
        }
    }
}

/// Telemetry for one delivered query: one flag load when metrics are off,
/// three counter bumps when on. Only successful deliveries count — error
/// paths are accounted by their callers (the churn harness's failure
/// breakdown maps onto the `churn_fail_*` counters).
#[inline]
fn record_delivery(hops: usize, max_header_words: usize) {
    if routing_obs::metrics_enabled() {
        routing_obs::counters::ROUTING_QUERIES.inc();
        routing_obs::counters::ROUTING_HOPS.add(hops as u64);
        routing_obs::counters::ROUTING_HEADER_WORDS.add(max_header_words as u64);
    }
}

/// The result of routing one message without materializing the path — the
/// serving layer's per-query answer shape.
///
/// Produced by [`simulate_lean`], which makes exactly the decision sequence
/// of [`simulate_with_ttl`] but never allocates: on a query-serving hot path
/// the path vector is the only per-query allocation left, and millions of
/// queries per second pay for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeanOutcome {
    /// Total weight of the traversed path.
    pub weight: Weight,
    /// Number of edges traversed.
    pub hops: usize,
    /// The largest header size (in `O(log n)`-bit words) observed while the
    /// message was in flight.
    pub max_header_words: usize,
}

/// Routes a message like [`simulate_with_ttl`] but without materializing
/// the traversed path: same decision sequence, same errors, zero
/// allocations beyond what the scheme itself does for the label and header.
///
/// The serving layer (`routing-serve`) uses this on its hot path; the
/// equivalence with [`simulate_with_ttl`] (weight, hops, header words,
/// errors) is pinned by a test in this module and re-checked per scheme by
/// the serve equivalence suite.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_lean(
    g: &Graph,
    scheme: &dyn DynScheme,
    source: VertexId,
    dest: VertexId,
    max_hops: usize,
) -> Result<LeanOutcome, RouteError> {
    let label = scheme.label_of(dest);
    simulate_lean_with_label(g, scheme, source, dest, &label, max_hops)
}

/// [`simulate_lean`] with a caller-supplied erased label, so a batch of
/// queries towards the same destination erases the label once (the batched
/// query API of the serving layer sorts and caches labels per batch).
///
/// `label` must be `scheme.label_of(dest)`; a label for a different vertex
/// routes to that vertex and is then reported as
/// [`RouteError::DeliveredAtWrongVertex`].
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_lean_with_label(
    g: &Graph,
    scheme: &dyn DynScheme,
    source: VertexId,
    dest: VertexId,
    label: &crate::erased::ErasedLabel,
    max_hops: usize,
) -> Result<LeanOutcome, RouteError> {
    let mut header = scheme.init_header(source, label)?;
    let mut at = source;
    let mut weight: Weight = 0;
    let mut hops = 0usize;
    let mut max_header_words = header.words();

    loop {
        match scheme.decide(at, &mut header, label)? {
            Decision::Deliver => {
                if at != dest {
                    return Err(RouteError::DeliveredAtWrongVertex { at, destination: dest });
                }
                record_delivery(hops, max_header_words);
                return Ok(LeanOutcome { weight, hops, max_header_words });
            }
            Decision::Forward(port) => {
                // Mirrors simulate_with_ttl's `path.len() > max_hops` check
                // (path.len() == hops + 1) so both variants fail the same
                // query at the same hop.
                if hops + 1 > max_hops {
                    return Err(RouteError::HopBudgetExceeded { budget: max_hops });
                }
                if port.index() >= g.degree(at) {
                    return Err(RouteError::InvalidPort { at, port: port.0 });
                }
                let edge = g.neighbor_at(at, port);
                weight += edge.weight;
                at = edge.to;
                hops += 1;
                max_header_words = max_header_words.max(header.words());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{HeaderSize, RoutingScheme};
    use routing_graph::generators;
    use routing_graph::shortest_path::dijkstra;
    use routing_graph::Port;

    /// A toy scheme with full routing tables (next-hop ports to every
    /// destination), used to exercise the simulator itself.
    struct FullTableScheme {
        name: String,
        n: usize,
        /// next_port[u][v] = port at u towards v (None when u == v).
        next_port: Vec<Vec<Option<Port>>>,
    }

    impl FullTableScheme {
        fn new(g: &Graph) -> Self {
            let n = g.n();
            let mut next_port = vec![vec![None; n]; n];
            for v in g.vertices() {
                let sp = dijkstra(g, v);
                for u in g.vertices() {
                    if u == v {
                        continue;
                    }
                    // First hop from u towards v: use the tree rooted at v,
                    // where u's parent is the next vertex on a shortest path.
                    if let Some(p) = sp.parent(u) {
                        next_port[u.index()][v.index()] = g.port_to(u, p);
                    }
                }
            }
            FullTableScheme { name: "full-table".into(), n, next_port }
        }
    }

    #[derive(Clone)]
    struct IdHeader;
    impl HeaderSize for IdHeader {
        fn words(&self) -> usize {
            1
        }
    }

    impl RoutingScheme for FullTableScheme {
        type Label = VertexId;
        type Header = IdHeader;

        fn name(&self) -> &str {
            &self.name
        }
        fn n(&self) -> usize {
            self.n
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _source: VertexId, _dest: &VertexId) -> Result<IdHeader, RouteError> {
            Ok(IdHeader)
        }
        fn decide(
            &self,
            at: VertexId,
            _header: &mut IdHeader,
            dest: &VertexId,
        ) -> Result<Decision, RouteError> {
            if at == *dest {
                return Ok(Decision::Deliver);
            }
            match self.next_port[at.index()][dest.index()] {
                Some(p) => Ok(Decision::Forward(p)),
                None => Err(RouteError::MissingInformation { at, what: "no next hop".into() }),
            }
        }
        fn table_words(&self, _v: VertexId) -> usize {
            self.n
        }
        fn label_words(&self, _v: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn lean_simulation_matches_the_full_simulator() {
        let g = generators::grid(4, 4);
        let s = FullTableScheme::new(&g);
        let ttl = 4 * g.n() + 16;
        for u in g.vertices() {
            for v in g.vertices() {
                let full = simulate_with_ttl(&g, &s, u, v, ttl).unwrap();
                let lean = simulate_lean(&g, &s, u, v, ttl).unwrap();
                assert_eq!(lean.weight, full.weight);
                assert_eq!(lean.hops, full.hops);
                assert_eq!(lean.max_header_words, full.max_header_words);
            }
        }
        // Both variants fail identically at the same hop budget.
        let cyc = generators::cycle(3);
        let full = simulate_with_ttl(&cyc, &LoopScheme, VertexId(0), VertexId(2), 10).unwrap_err();
        let lean = simulate_lean(&cyc, &LoopScheme, VertexId(0), VertexId(2), 10).unwrap_err();
        assert_eq!(full, lean);
    }

    #[test]
    fn simulator_follows_shortest_paths_of_full_tables() {
        let g = generators::grid(4, 4);
        let s = FullTableScheme::new(&g);
        let sp = dijkstra(&g, VertexId(0));
        for v in g.vertices() {
            let out = simulate(&g, &s, VertexId(0), v).unwrap();
            assert_eq!(out.destination(), v);
            assert_eq!(out.source(), VertexId(0));
            assert_eq!(Some(out.weight), sp.dist(v));
            assert_eq!(out.hops, out.path.len() - 1);
            assert_eq!(out.max_header_words, 1);
        }
    }

    #[test]
    fn self_route_has_zero_weight() {
        let g = generators::path(3);
        let s = FullTableScheme::new(&g);
        let out = simulate(&g, &s, VertexId(1), VertexId(1)).unwrap();
        assert_eq!(out.weight, 0);
        assert_eq!(out.hops, 0);
        assert_eq!(out.path, vec![VertexId(1)]);
    }

    /// A scheme that always forwards on port 0 — loops forever on a cycle.
    struct LoopScheme;
    #[derive(Clone)]
    struct NoHeader;
    impl HeaderSize for NoHeader {
        fn words(&self) -> usize {
            0
        }
    }
    impl RoutingScheme for LoopScheme {
        type Label = VertexId;
        type Header = NoHeader;
        fn name(&self) -> &str {
            "loop"
        }
        fn n(&self) -> usize {
            3
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<NoHeader, RouteError> {
            Ok(NoHeader)
        }
        fn decide(&self, _: VertexId, _: &mut NoHeader, _: &VertexId) -> Result<Decision, RouteError> {
            Ok(Decision::Forward(Port(0)))
        }
        fn table_words(&self, _: VertexId) -> usize {
            0
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn loops_hit_the_hop_budget() {
        let g = generators::cycle(3);
        let err = simulate_with_ttl(&g, &LoopScheme, VertexId(0), VertexId(2), 10).unwrap_err();
        assert_eq!(err, RouteError::HopBudgetExceeded { budget: 10 });
    }

    /// A scheme that delivers immediately regardless of destination.
    struct EagerScheme;
    impl RoutingScheme for EagerScheme {
        type Label = VertexId;
        type Header = NoHeader;
        fn name(&self) -> &str {
            "eager"
        }
        fn n(&self) -> usize {
            3
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<NoHeader, RouteError> {
            Ok(NoHeader)
        }
        fn decide(&self, _: VertexId, _: &mut NoHeader, _: &VertexId) -> Result<Decision, RouteError> {
            Ok(Decision::Deliver)
        }
        fn table_words(&self, _: VertexId) -> usize {
            0
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn wrong_delivery_is_detected() {
        let g = generators::path(3);
        let err = simulate(&g, &EagerScheme, VertexId(0), VertexId(2)).unwrap_err();
        assert_eq!(
            err,
            RouteError::DeliveredAtWrongVertex { at: VertexId(0), destination: VertexId(2) }
        );
    }

    /// A scheme that forwards on a port that does not exist.
    struct BadPortScheme;
    impl RoutingScheme for BadPortScheme {
        type Label = VertexId;
        type Header = NoHeader;
        fn name(&self) -> &str {
            "bad-port"
        }
        fn n(&self) -> usize {
            3
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<NoHeader, RouteError> {
            Ok(NoHeader)
        }
        fn decide(&self, _: VertexId, _: &mut NoHeader, _: &VertexId) -> Result<Decision, RouteError> {
            Ok(Decision::Forward(Port(99)))
        }
        fn table_words(&self, _: VertexId) -> usize {
            0
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn invalid_ports_are_detected() {
        let g = generators::path(3);
        let err = simulate(&g, &BadPortScheme, VertexId(0), VertexId(2)).unwrap_err();
        assert_eq!(err, RouteError::InvalidPort { at: VertexId(0), port: 99 });
    }
}
