use std::error::Error;
use std::fmt;

use routing_graph::VertexId;

/// Errors surfaced while routing a message through a scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The scheme has no routing information for this (source, destination)
    /// situation at the current vertex; indicates a preprocessing bug.
    MissingInformation {
        /// Vertex at which the decision failed.
        at: VertexId,
        /// Human-readable description of what was missing.
        what: String,
    },
    /// The scheme asked to forward on a port that does not exist at the
    /// current vertex.
    InvalidPort {
        /// Vertex at which the bad port was used.
        at: VertexId,
        /// The offending port index.
        port: u32,
    },
    /// The message exceeded the hop budget without being delivered
    /// (forwarding loop or unreachable destination).
    HopBudgetExceeded {
        /// The hop budget that was exhausted.
        budget: usize,
    },
    /// The scheme declared delivery at a vertex that is not the destination.
    DeliveredAtWrongVertex {
        /// Where the message was (incorrectly) delivered.
        at: VertexId,
        /// The true destination.
        destination: VertexId,
    },
    /// The destination label does not belong to a vertex of this graph, or is
    /// otherwise malformed for this scheme.
    BadLabel {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MissingInformation { at, what } => {
                write!(f, "missing routing information at {at}: {what}")
            }
            RouteError::InvalidPort { at, port } => {
                write!(f, "invalid port {port} at {at}")
            }
            RouteError::HopBudgetExceeded { budget } => {
                write!(f, "hop budget of {budget} exceeded before delivery")
            }
            RouteError::DeliveredAtWrongVertex { at, destination } => {
                write!(f, "delivered at {at} but destination is {destination}")
            }
            RouteError::BadLabel { what } => write!(f, "bad destination label: {what}"),
        }
    }
}

impl Error for RouteError {}

// Routing errors cross shard boundaries in the serving layer (a shard
// worker reports them back over a channel), so `Send + Sync + 'static` is
// part of the contract — checked at compile time, not merely by a test.
const fn assert_send_sync_static<T: Send + Sync + 'static>() {}
const _: () = assert_send_sync_static::<RouteError>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RouteError::MissingInformation { at: VertexId(3), what: "no ball entry".into() };
        assert!(e.to_string().contains("v3"));
        assert!(e.to_string().contains("no ball entry"));
        let e = RouteError::InvalidPort { at: VertexId(1), port: 9 };
        assert!(e.to_string().contains("port 9"));
        let e = RouteError::HopBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
        let e = RouteError::DeliveredAtWrongVertex { at: VertexId(1), destination: VertexId(2) };
        assert!(e.to_string().contains("v2"));
        let e = RouteError::BadLabel { what: "unknown vertex".into() };
        assert!(e.to_string().contains("unknown vertex"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteError>();
    }
}
