//! Lossy evaluation of a routing scheme on a graph it was **not** built for
//! — the measurement core of the churn workloads.
//!
//! [`crate::eval::evaluate`] treats every routing failure as a bug, which
//! is correct for a scheme routing on its own preprocessed graph. Under
//! churn the situation is different: the tables are *stale* — built on a
//! base graph while the messages travel on a mutated one — and failures are
//! the phenomenon being measured, not a bug. A stale table can
//!
//! * forward on a port that no longer exists (a neighbour was removed and
//!   the adjacency list shrank) — [`FailureKind::InvalidPort`];
//! * forward on a port that now leads to a *different* neighbour (smaller-id
//!   neighbours were removed, shifting ports) and eventually deliver at the
//!   wrong vertex or loop — [`FailureKind::WrongDelivery`] /
//!   [`FailureKind::HopBudget`];
//! * reference routing state that no longer makes sense —
//!   [`FailureKind::SchemeError`].
//!
//! [`route_pairs_lossy`] routes a set of pairs, records each outcome, and
//! aggregates delivery (reachability) and stretch relative to the mutated
//! graph's true distances. Pairs that the mutated graph itself disconnects
//! are reported separately ([`ResilienceReport::disconnected_pairs`]): no
//! routing scheme could deliver those, so they are excluded from the
//! reachability denominator.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use routing_graph::{DistanceOracle, Graph, VertexId, Weight};

use crate::erased::DynScheme;
use crate::scheme::Decision;
use crate::stats::StretchStats;

/// Why a routed pair failed to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The scheme forwarded on a port that does not exist in the (mutated)
    /// graph.
    InvalidPort,
    /// The message was delivered at a vertex other than the destination.
    WrongDelivery,
    /// The message looped until the hop budget ran out.
    HopBudget,
    /// A stale port forwarded the message into a vertex the scheme has no
    /// routing table for (one that joined after the tables were built).
    UnknownVertex,
    /// The scheme reported an internal error (missing table entry, bad
    /// label).
    SchemeError,
}

/// Per-failure-kind counts of one lossy evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureBreakdown {
    /// Forwards on ports that no longer exist.
    pub invalid_port: usize,
    /// Deliveries at the wrong vertex.
    pub wrong_delivery: usize,
    /// Messages that looped into the hop budget.
    pub hop_budget: usize,
    /// Messages forwarded into vertices unknown to the scheme.
    pub unknown_vertex: usize,
    /// Internal scheme errors.
    pub scheme_error: usize,
}

impl FailureBreakdown {
    fn record(&mut self, kind: FailureKind) {
        // Mirror each failure into the process-wide telemetry counters so a
        // churn run exports its failure-class totals without re-summing the
        // per-round breakdowns (no-op unless metrics are enabled).
        use routing_obs::counters as c;
        match kind {
            FailureKind::InvalidPort => {
                self.invalid_port += 1;
                c::CHURN_FAIL_INVALID_PORT.inc();
            }
            FailureKind::WrongDelivery => {
                self.wrong_delivery += 1;
                c::CHURN_FAIL_WRONG_DELIVERY.inc();
            }
            FailureKind::HopBudget => {
                self.hop_budget += 1;
                c::CHURN_FAIL_HOP_BUDGET.inc();
            }
            FailureKind::UnknownVertex => {
                self.unknown_vertex += 1;
                c::CHURN_FAIL_UNKNOWN_VERTEX.inc();
            }
            FailureKind::SchemeError => {
                self.scheme_error += 1;
                c::CHURN_FAIL_SCHEME_ERROR.inc();
            }
        }
    }

    /// Total failures across all kinds.
    pub fn total(&self) -> usize {
        self.invalid_port
            + self.wrong_delivery
            + self.hop_budget
            + self.unknown_vertex
            + self.scheme_error
    }
}

/// Aggregated outcome of routing a pair population through a (possibly
/// stale) scheme on a (possibly mutated) graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Pairs attempted (both endpoints alive).
    pub pairs: usize,
    /// Pairs the graph itself disconnects (no scheme could route these).
    pub disconnected_pairs: usize,
    /// Pairs delivered at the correct destination.
    pub delivered: usize,
    /// Failure counts for undelivered connected pairs.
    pub failures: FailureBreakdown,
    /// Stretch of the delivered pairs relative to the evaluation graph's
    /// exact distances.
    pub stretch: StretchStats,
}

impl ResilienceReport {
    /// Delivered fraction over the *connected* pairs, in `[0, 1]`.
    ///
    /// Two degenerate cases are told apart deliberately: when pairs were
    /// attempted but the graph disconnected all of them, this is `1.0`
    /// (no scheme could have delivered more); when **no pair could even be
    /// sampled** (`pairs == 0` — fewer than two vertices the scheme can
    /// address survive), this is `0.0`, so that total scheme collapse reads
    /// as unreachable and reachability-threshold rebuild policies still
    /// fire instead of being masked by a vacuous 100%.
    pub fn reachability(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        let routable = self.pairs - self.disconnected_pairs;
        if routable == 0 {
            1.0
        } else {
            self.delivered as f64 / routable as f64
        }
    }

    /// Delivered fraction over *all* attempted pairs (counting pairs the
    /// graph disconnects as undeliverable), in `[0, 1]`; `0.0` when no
    /// pair could be sampled (see [`ResilienceReport::reachability`]).
    pub fn absolute_reachability(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.delivered as f64 / self.pairs as f64
        }
    }
}

/// Routes every pair of `pairs` through `scheme` on `g`, recording failures
/// instead of propagating them.
///
/// `exact` must be a ground-truth oracle **for `g`** (the evaluation graph —
/// for stale-table experiments that is the *mutated* graph, so stretch is
/// measured against what an oracle rebuilt on the spot could achieve). The
/// churn harness passes a [`routing_graph::SampledDistances`] built from the
/// pairs' distinct sources, which keeps the per-round ground-truth cost at
/// `O(|sources|·(m + n log n))` instead of the dense matrix's `O(n^2)`.
///
/// Both endpoints of every pair must be vertices the scheme was built for
/// (`id < scheme.n()`); [`sample_alive_pairs`] over a mask restricted to
/// known vertices guarantees this.
pub fn route_pairs_lossy<O: DistanceOracle>(
    g: &Graph,
    scheme: &dyn DynScheme,
    exact: &O,
    pairs: &[(VertexId, VertexId)],
) -> ResilienceReport {
    let mut report = ResilienceReport {
        pairs: pairs.len(),
        disconnected_pairs: 0,
        delivered: 0,
        failures: FailureBreakdown::default(),
        stretch: StretchStats::new(),
    };
    for &(u, v) in pairs {
        let true_dist = match exact.distance(u, v) {
            Some(d) => d,
            None => {
                report.disconnected_pairs += 1;
                continue;
            }
        };
        match walk_guarded(g, scheme, u, v) {
            Ok(weight) => {
                report.delivered += 1;
                report.stretch.record(weight, true_dist);
            }
            Err(kind) => report.failures.record(kind),
        }
    }
    report
}

/// A lossy variant of [`crate::simulate`]: walks a message hop by hop but
/// classifies every way a stale route can die instead of erroring, and —
/// crucially — refuses to consult the scheme at a vertex it was not built
/// for (`id >= scheme.n()`), which on a mutated graph is reachable through
/// a stale port. Returns the traversed weight on delivery.
fn walk_guarded(
    g: &Graph,
    scheme: &dyn DynScheme,
    source: VertexId,
    dest: VertexId,
) -> Result<Weight, FailureKind> {
    debug_assert!(source.index() < scheme.n() && dest.index() < scheme.n());
    let label = scheme.label_of(dest);
    let mut header = scheme.init_header(source, &label).map_err(|_| FailureKind::SchemeError)?;
    let max_hops = 4 * g.n() + 16;
    let mut at = source;
    let mut weight: Weight = 0;
    let mut hops = 0usize;
    loop {
        if at.index() >= scheme.n() {
            return Err(FailureKind::UnknownVertex);
        }
        match scheme.decide(at, &mut header, &label).map_err(|_| FailureKind::SchemeError)? {
            Decision::Deliver => {
                return if at == dest { Ok(weight) } else { Err(FailureKind::WrongDelivery) };
            }
            Decision::Forward(port) => {
                if hops >= max_hops {
                    return Err(FailureKind::HopBudget);
                }
                if port.index() >= g.degree(at) {
                    return Err(FailureKind::InvalidPort);
                }
                let edge = g.neighbor_at(at, port);
                weight += edge.weight;
                at = edge.to;
                hops += 1;
            }
        }
    }
}

/// Samples `count` ordered pairs with both endpoints alive (and distinct),
/// uniformly at random. Returns fewer than `count` only when fewer than two
/// vertices are alive.
pub fn sample_alive_pairs<R: Rng>(
    alive: &[bool],
    count: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let ids: Vec<VertexId> = alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| VertexId(i as u32))
        .collect();
    if ids.len() < 2 {
        return Vec::new();
    }
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let u = *ids.choose(rng).expect("alive vertices exist");
        let v = *ids.choose(rng).expect("alive vertices exist");
        if u != v {
            pairs.push((u, v));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{HeaderSize, RoutingScheme};
    use crate::RouteError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators;
    use routing_graph::mutate::{apply_events, ChurnEvent};
    use routing_graph::shortest_path::dijkstra;
    use routing_graph::Port;

    /// Full next-hop tables for a fixed graph — the simplest "scheme" whose
    /// staleness behaviour is easy to reason about.
    struct FullTable {
        n: usize,
        next: Vec<Vec<Option<Port>>>,
    }

    impl FullTable {
        fn build(g: &Graph) -> Self {
            let n = g.n();
            let mut next = vec![vec![None; n]; n];
            for v in g.vertices() {
                let sp = dijkstra(g, v);
                for u in g.vertices() {
                    if u != v {
                        if let Some(p) = sp.parent(u) {
                            next[u.index()][v.index()] = g.port_to(u, p);
                        }
                    }
                }
            }
            FullTable { n, next }
        }
    }

    #[derive(Clone)]
    struct H;
    impl HeaderSize for H {
        fn words(&self) -> usize {
            0
        }
    }

    impl RoutingScheme for FullTable {
        type Label = VertexId;
        type Header = H;
        fn name(&self) -> &str {
            "full"
        }
        fn n(&self) -> usize {
            self.n
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<H, RouteError> {
            Ok(H)
        }
        fn decide(&self, at: VertexId, _: &mut H, dest: &VertexId) -> Result<Decision, RouteError> {
            if at == *dest {
                return Ok(Decision::Deliver);
            }
            self.next[at.index()][dest.index()]
                .map(Decision::Forward)
                .ok_or(RouteError::MissingInformation { at, what: "no entry".into() })
        }
        fn table_words(&self, _: VertexId) -> usize {
            self.n
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn fresh_tables_reach_everything() {
        let g = generators::grid(4, 4);
        let scheme = FullTable::build(&g);
        let exact = DistanceMatrix::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = sample_alive_pairs(&vec![true; g.n()], 100, &mut rng);
        let report = route_pairs_lossy(&g, &scheme, &exact, &pairs);
        assert_eq!(report.delivered, 100);
        assert_eq!(report.reachability(), 1.0);
        assert_eq!(report.absolute_reachability(), 1.0);
        assert_eq!(report.failures.total(), 0);
        assert_eq!(report.stretch.max_multiplicative(), Some(1.0));
    }

    #[test]
    fn stale_tables_degrade_but_do_not_error() {
        // Build tables on a cycle, then remove one vertex: routes crossing
        // the removed vertex must fail, the rest keep working.
        let g = generators::cycle(12);
        let scheme = FullTable::build(&g);
        let m = apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(0))]).unwrap();
        let exact = DistanceMatrix::new(&m.graph);
        let pairs: Vec<(VertexId, VertexId)> = (1..12)
            .flat_map(|u| (1..12).filter(move |&v| v != u).map(move |v| (VertexId(u), VertexId(v))))
            .collect();
        let report = route_pairs_lossy(&m.graph, &scheme, &exact, &pairs);
        assert_eq!(report.pairs, 110);
        assert_eq!(report.disconnected_pairs, 0, "the remaining path is connected");
        assert!(report.delivered > 0, "pairs on the surviving arc still route");
        assert!(report.failures.total() > 0, "pairs across the removed vertex fail");
        assert_eq!(report.delivered + report.failures.total(), 110);
        assert!(report.reachability() < 1.0);
    }

    #[test]
    fn disconnected_pairs_are_excluded_from_reachability() {
        let g = generators::path(4);
        let scheme = FullTable::build(&g);
        // Removing vertex 1 splits {0} from {2, 3}.
        let m = apply_events(&g, None, &[ChurnEvent::RemoveVertex(VertexId(1))]).unwrap();
        let exact = DistanceMatrix::new(&m.graph);
        // (0, 2) is disconnected. (3, 2) still routes: vertex 3's only
        // neighbour is 2, so its port survives. (The reverse direction
        // (2, 3) would fail — 2's port to 3 shifts when its smaller-id
        // neighbour 1 is removed — which is exactly the degradation the
        // churn experiments measure.)
        let pairs = vec![(VertexId(0), VertexId(2)), (VertexId(3), VertexId(2))];
        let report = route_pairs_lossy(&m.graph, &scheme, &exact, &pairs);
        assert_eq!(report.disconnected_pairs, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.reachability(), 1.0);
        assert_eq!(report.absolute_reachability(), 0.5);
    }

    #[test]
    fn total_collapse_reads_as_unreachable() {
        // Fewer than two addressable vertices -> no pairs can be sampled ->
        // reachability must be 0.0 (not a vacuous 1.0), so threshold
        // rebuild policies still fire.
        let g = generators::path(4);
        let scheme = FullTable::build(&g);
        let exact = DistanceMatrix::new(&g);
        let report = route_pairs_lossy(&g, &scheme, &exact, &[]);
        assert_eq!(report.pairs, 0);
        assert_eq!(report.reachability(), 0.0);
        assert_eq!(report.absolute_reachability(), 0.0);
    }

    #[test]
    fn sampled_pairs_avoid_dead_vertices() {
        let mut rng = StdRng::seed_from_u64(9);
        let alive = vec![true, false, true, true, false];
        let pairs = sample_alive_pairs(&alive, 50, &mut rng);
        assert_eq!(pairs.len(), 50);
        for (u, v) in pairs {
            assert!(alive[u.index()] && alive[v.index()]);
            assert_ne!(u, v);
        }
        assert!(sample_alive_pairs(&[true, false], 5, &mut rng).is_empty());
    }
}
