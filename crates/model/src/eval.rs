//! End-to-end evaluation of a routing scheme on a graph: route many pairs,
//! compare against exact distances, and aggregate stretch/space/label/header
//! statistics. Used both by integration tests and by the experiment harness.
//!
//! Ground truth is abstracted behind [`routing_graph::DistanceOracle`], so
//! the same evaluation code runs against the dense
//! [`routing_graph::apsp::DistanceMatrix`] (exact for every pair, `O(n^2)`
//! memory — correctness tests) and against
//! [`routing_graph::SampledDistances`] (`k` exact source rows, `O(k·n)` —
//! the scalable path). For the sampled oracle, draw the pair population with
//! [`select_pairs_anchored`] over the oracle's sources so every ground-truth
//! lookup is an `O(1)` exact hit; [`evaluate_sampled`] bundles exactly that
//! protocol.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use routing_graph::{DistanceOracle, Graph, VertexId};

use crate::erased::DynScheme;
use crate::simulator::simulate;
use crate::stats::{SpaceStats, StretchStats};
use crate::RouteError;

/// Which source/destination pairs to route during an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSelection {
    /// Every ordered pair `(u, v)` with `u != v`. Quadratic; use for small
    /// graphs and correctness tests.
    AllPairs,
    /// A fixed number of ordered pairs sampled uniformly at random.
    Sampled(usize),
}

/// Summary of one evaluation run, with everything the paper's Table 1
/// compares: stretch, per-vertex table size, label size and header size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Scheme name.
    pub scheme: String,
    /// Number of vertices of the evaluated graph.
    pub n: usize,
    /// Number of edges of the evaluated graph.
    pub m: usize,
    /// Number of routed pairs.
    pub pairs: usize,
    /// Stretch statistics over the routed pairs.
    pub stretch: StretchStats,
    /// Per-vertex routing-table sizes in `O(log n)`-bit words.
    pub table: SpaceStats,
    /// Largest label size in words.
    pub max_label_words: usize,
    /// Mean label size in words.
    pub mean_label_words: f64,
    /// Largest in-flight header observed, in words.
    pub max_header_words: usize,
}

impl EvalReport {
    /// One-line human-readable summary (used by the harness binaries).
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} n={:<5} pairs={:<6} stretch max={:.3} mean={:.3} | table max={} mean={:.1} | label max={} | header max={}",
            self.scheme,
            self.n,
            self.pairs,
            self.stretch.max_multiplicative().unwrap_or(1.0),
            self.stretch.mean_multiplicative().unwrap_or(1.0),
            self.table.max(),
            self.table.mean(),
            self.max_label_words,
            self.max_header_words,
        )
    }
}

/// Routes the selected pairs through `scheme` and aggregates statistics.
///
/// `exact` is any ground-truth backend for `g` — the dense matrix or the
/// sampled oracle; passing it in (rather than recomputing) lets callers
/// share one oracle across many schemes.
///
/// # Errors
///
/// Propagates the first routing failure — a correct scheme never fails, so
/// tests treat any error as a bug.
pub fn evaluate<O: DistanceOracle, R: Rng>(
    g: &Graph,
    scheme: &dyn DynScheme,
    exact: &O,
    selection: PairSelection,
    rng: &mut R,
) -> Result<EvalReport, RouteError> {
    let pairs = select_pairs(g, selection, rng);
    evaluate_pairs(g, scheme, exact, &pairs)
}

/// [`evaluate`] over an explicit pair population.
///
/// This is the primitive both [`evaluate`] and [`evaluate_sampled`] reduce
/// to; use it directly when the pair population must be shared across
/// schemes (so every row of a comparison table routes the same pairs).
///
/// # Errors
///
/// Propagates the first routing failure, and reports disconnected pairs as
/// [`RouteError::BadLabel`].
pub fn evaluate_pairs<O: DistanceOracle>(
    g: &Graph,
    scheme: &dyn DynScheme,
    exact: &O,
    pairs: &[(VertexId, VertexId)],
) -> Result<EvalReport, RouteError> {
    let mut stretch = StretchStats::new();
    let mut max_header_words = 0usize;
    for &(u, v) in pairs {
        let out = simulate(g, scheme, u, v)?;
        let d = exact
            .distance(u, v)
            .ok_or_else(|| RouteError::BadLabel { what: format!("{u} and {v} are disconnected") })?;
        stretch.record(out.weight, d);
        max_header_words = max_header_words.max(out.max_header_words);
    }
    let table = SpaceStats::from_per_vertex(g.vertices().map(|v| scheme.table_words(v)).collect());
    let label_words: Vec<usize> = g.vertices().map(|v| scheme.label_words(v)).collect();
    let max_label_words = label_words.iter().copied().max().unwrap_or(0);
    let mean_label_words = if label_words.is_empty() {
        0.0
    } else {
        label_words.iter().sum::<usize>() as f64 / label_words.len() as f64
    };
    Ok(EvalReport {
        scheme: scheme.name().to_string(),
        n: g.n(),
        m: g.m(),
        pairs: pairs.len(),
        stretch,
        table,
        max_label_words,
        mean_label_words,
        max_header_words,
    })
}

/// Picks the ordered pairs to route.
pub fn select_pairs<R: Rng>(
    g: &Graph,
    selection: PairSelection,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let n = g.n();
    match selection {
        PairSelection::AllPairs => {
            let mut pairs = Vec::with_capacity(n * n.saturating_sub(1));
            for u in g.vertices() {
                for v in g.vertices() {
                    if u != v {
                        pairs.push((u, v));
                    }
                }
            }
            pairs
        }
        PairSelection::Sampled(k) => {
            if n < 2 {
                return Vec::new();
            }
            let ids: Vec<VertexId> = g.vertices().collect();
            let mut pairs = Vec::with_capacity(k);
            while pairs.len() < k {
                let u = *ids.choose(rng).expect("graph has vertices");
                let v = *ids.choose(rng).expect("graph has vertices");
                if u != v {
                    pairs.push((u, v));
                }
            }
            pairs
        }
    }
}

/// Samples `count` ordered pairs whose **sources** are drawn from `sources`
/// and whose destinations are uniform over `V` — the pair population that
/// makes every ground-truth lookup against a `k`-source oracle an `O(1)`
/// exact hit.
///
/// Returns an empty vector when `sources` is empty or the graph has fewer
/// than two vertices.
pub fn select_pairs_anchored<R: Rng>(
    g: &Graph,
    sources: &[VertexId],
    count: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let ids: Vec<VertexId> = g.vertices().collect();
    sample_pairs_from(sources, &ids, count, rng)
}

/// The sampling primitive behind [`select_pairs_anchored`] (and the churn
/// harness's per-round variant, which restricts both slices to alive
/// vertices): `count` ordered pairs with the source drawn uniformly from
/// `sources`, the destination uniformly from `destinations`, rejecting
/// `u == v`. Empty when either slice is empty or no distinct pair exists.
pub fn sample_pairs_from<R: Rng>(
    sources: &[VertexId],
    destinations: &[VertexId],
    count: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    if sources.is_empty() || destinations.is_empty() {
        return Vec::new();
    }
    // Guard against an unsatisfiable rejection loop: the only way every
    // draw collides is a single shared vertex on both sides.
    if sources.len() == 1 && destinations.len() == 1 && sources[0] == destinations[0] {
        return Vec::new();
    }
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let u = *sources.choose(rng).expect("sources is non-empty");
        let v = *destinations.choose(rng).expect("destinations is non-empty");
        if u != v {
            pairs.push((u, v));
        }
    }
    pairs
}

/// Evaluates `scheme` against a sampled ground-truth oracle using the
/// anchored-pair protocol: `count` pairs whose sources are the oracle's
/// [`DistanceOracle::preferred_sources`] (uniform pairs when the oracle is
/// dense), so stretch measurement costs no extra graph searches at any `n`.
///
/// # Errors
///
/// Propagates the first routing failure, as [`evaluate`].
pub fn evaluate_sampled<O: DistanceOracle, R: Rng>(
    g: &Graph,
    scheme: &dyn DynScheme,
    oracle: &O,
    count: usize,
    rng: &mut R,
) -> Result<EvalReport, RouteError> {
    let pairs = match oracle.preferred_sources() {
        Some(sources) => select_pairs_anchored(g, sources, count, rng),
        None => select_pairs(g, PairSelection::Sampled(count), rng),
    };
    evaluate_pairs(g, scheme, oracle, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Decision, HeaderSize, RoutingScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_graph::apsp::DistanceMatrix;
    use routing_graph::generators;
    use routing_graph::shortest_path::dijkstra;
    use routing_graph::{Port, SampledDistances};

    struct FullTable {
        n: usize,
        next: Vec<Vec<Option<Port>>>,
    }
    impl FullTable {
        fn new(g: &Graph) -> Self {
            let n = g.n();
            let mut next = vec![vec![None; n]; n];
            for v in g.vertices() {
                let sp = dijkstra(g, v);
                for u in g.vertices() {
                    if u != v {
                        if let Some(p) = sp.parent(u) {
                            next[u.index()][v.index()] = g.port_to(u, p);
                        }
                    }
                }
            }
            FullTable { n, next }
        }
    }
    #[derive(Clone)]
    struct H;
    impl HeaderSize for H {
        fn words(&self) -> usize {
            2
        }
    }
    impl RoutingScheme for FullTable {
        type Label = VertexId;
        type Header = H;
        fn name(&self) -> &str {
            "full"
        }
        fn n(&self) -> usize {
            self.n
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<H, RouteError> {
            Ok(H)
        }
        fn decide(&self, at: VertexId, _: &mut H, dest: &VertexId) -> Result<Decision, RouteError> {
            if at == *dest {
                Ok(Decision::Deliver)
            } else {
                Ok(Decision::Forward(self.next[at.index()][dest.index()].expect("connected")))
            }
        }
        fn table_words(&self, _: VertexId) -> usize {
            self.n
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn evaluate_full_table_has_stretch_one() {
        let g = generators::grid(4, 4);
        let exact = DistanceMatrix::new(&g);
        let scheme = FullTable::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let report = evaluate(&g, &scheme, &exact, PairSelection::AllPairs, &mut rng).unwrap();
        assert_eq!(report.pairs, 16 * 15);
        assert_eq!(report.stretch.max_multiplicative(), Some(1.0));
        assert_eq!(report.table.max(), 16);
        assert_eq!(report.max_label_words, 1);
        assert_eq!(report.max_header_words, 2);
        assert!(report.summary_line().contains("full"));
        assert_eq!(report.n, 16);
        assert_eq!(report.m, g.m());
        assert!(report.mean_label_words > 0.9);
    }

    #[test]
    fn sampled_pairs_have_requested_count() {
        let g = generators::cycle(20);
        let mut rng = StdRng::seed_from_u64(7);
        let pairs = select_pairs(&g, PairSelection::Sampled(37), &mut rng);
        assert_eq!(pairs.len(), 37);
        assert!(pairs.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn sampling_from_tiny_graph_is_empty() {
        let g = generators::path(1);
        let mut rng = StdRng::seed_from_u64(7);
        let pairs = select_pairs(&g, PairSelection::Sampled(5), &mut rng);
        assert!(pairs.is_empty());
    }

    #[test]
    fn anchored_pairs_start_at_sources() {
        let g = generators::cycle(20);
        let mut rng = StdRng::seed_from_u64(5);
        let sources = vec![VertexId(3), VertexId(11)];
        let pairs = select_pairs_anchored(&g, &sources, 40, &mut rng);
        assert_eq!(pairs.len(), 40);
        assert!(pairs.iter().all(|(u, v)| sources.contains(u) && u != v));
        assert!(select_pairs_anchored(&g, &[], 10, &mut rng).is_empty());
    }

    #[test]
    fn sampled_oracle_evaluation_matches_dense_ground_truth() {
        // The full-table scheme routes exactly, so stretch must be exactly
        // 1.0 under either ground-truth backend.
        let g = generators::grid(5, 5);
        let scheme = FullTable::new(&g);
        let mut rng = StdRng::seed_from_u64(11);
        let oracle = SampledDistances::sample(&g, 6, &mut rng);
        let report = evaluate_sampled(&g, &scheme, &oracle, 200, &mut rng).unwrap();
        assert_eq!(report.pairs, 200);
        assert_eq!(report.stretch.max_multiplicative(), Some(1.0));
        assert_eq!(oracle.ondemand_searches(), 0, "anchored pairs are always covered");
    }
}
