//! Stretch and space statistics used by tests and by the experiment harness.

use serde::{Deserialize, Serialize};

/// Aggregated multiplicative/affine stretch over a collection of routed
/// pairs.
///
/// Each sample is a pair `(routed, exact)` of path weights. The paper's
/// guarantees are of the form `(α, β)`: every routed path has weight at most
/// `α · d + β`. [`StretchStats::check_affine_bound`] verifies exactly that,
/// and [`StretchStats::max_multiplicative`] / [`StretchStats::mean_multiplicative`]
/// summarise the usual multiplicative stretch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StretchStats {
    samples: Vec<(u64, u64)>,
}

impl StretchStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one routed pair: the routed path weight and the exact
    /// distance. Pairs with `exact == 0` (source equals destination) are
    /// ignored.
    pub fn record(&mut self, routed: u64, exact: u64) {
        if exact > 0 {
            self.samples.push((routed, exact));
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The largest multiplicative stretch `routed / exact`, or `None` if no
    /// samples were recorded.
    pub fn max_multiplicative(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(r, e)| r as f64 / e as f64)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// The mean multiplicative stretch, or `None` if no samples were
    /// recorded.
    pub fn mean_multiplicative(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self.samples.iter().map(|&(r, e)| r as f64 / e as f64).sum();
        Some(sum / self.samples.len() as f64)
    }

    /// The `p`-th percentile (0..=100) of the multiplicative stretch.
    pub fn percentile_multiplicative(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.samples.iter().map(|&(r, e)| r as f64 / e as f64).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("stretch values are finite"));
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[idx.min(v.len() - 1)])
    }

    /// Checks the paper-style affine bound: every sample satisfies
    /// `routed <= alpha * exact + beta` (up to floating-point slack of 1e-9).
    pub fn check_affine_bound(&self, alpha: f64, beta: f64) -> bool {
        self.worst_affine_excess(alpha, beta) <= 1e-9
    }

    /// The largest violation of `routed <= alpha * exact + beta` across all
    /// samples (0.0 when the bound holds everywhere).
    pub fn worst_affine_excess(&self, alpha: f64, beta: f64) -> f64 {
        self.samples
            .iter()
            .map(|&(r, e)| r as f64 - (alpha * e as f64 + beta))
            .fold(0.0_f64, f64::max)
    }

    /// The smallest `alpha` such that `routed <= alpha * exact + beta` holds
    /// for every sample, given a fixed additive term `beta`.
    pub fn tightest_alpha(&self, beta: f64) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(r, e)| ((r as f64 - beta) / e as f64).max(1.0))
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Fraction of samples routed on an exactly shortest path.
    pub fn fraction_exact(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let exact = self.samples.iter().filter(|&&(r, e)| r == e).count();
        Some(exact as f64 / self.samples.len() as f64)
    }

    /// Merges another collection of samples into this one.
    pub fn merge(&mut self, other: &StretchStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Aggregated per-vertex space usage in `O(log n)`-bit words.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpaceStats {
    per_vertex: Vec<usize>,
}

impl SpaceStats {
    /// Builds the statistics from per-vertex word counts.
    pub fn from_per_vertex(per_vertex: Vec<usize>) -> Self {
        SpaceStats { per_vertex }
    }

    /// Number of vertices accounted.
    pub fn len(&self) -> usize {
        self.per_vertex.len()
    }

    /// True if no vertices were accounted.
    pub fn is_empty(&self) -> bool {
        self.per_vertex.is_empty()
    }

    /// The largest per-vertex table, in words.
    pub fn max(&self) -> usize {
        self.per_vertex.iter().copied().max().unwrap_or(0)
    }

    /// The mean per-vertex table size, in words.
    pub fn mean(&self) -> f64 {
        if self.per_vertex.is_empty() {
            return 0.0;
        }
        self.per_vertex.iter().sum::<usize>() as f64 / self.per_vertex.len() as f64
    }

    /// Total space across all vertices, in words.
    pub fn total(&self) -> usize {
        self.per_vertex.iter().sum()
    }

    /// `max() / n^exponent` — the normalized table size the harness prints so
    /// the paper's `Õ(n^exponent)` shape can be read off directly.
    pub fn normalized_max(&self, exponent: f64) -> f64 {
        if self.per_vertex.is_empty() {
            return 0.0;
        }
        self.max() as f64 / (self.per_vertex.len() as f64).powf(exponent)
    }

    /// `mean() / n^exponent`.
    pub fn normalized_mean(&self, exponent: f64) -> f64 {
        if self.per_vertex.is_empty() {
            return 0.0;
        }
        self.mean() / (self.per_vertex.len() as f64).powf(exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_basic_aggregates() {
        let mut s = StretchStats::new();
        s.record(10, 10);
        s.record(15, 10);
        s.record(30, 10);
        s.record(0, 0); // ignored
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.max_multiplicative(), Some(3.0));
        assert!((s.mean_multiplicative().unwrap() - 1.8333333).abs() < 1e-6);
        assert_eq!(s.fraction_exact(), Some(1.0 / 3.0));
    }

    #[test]
    fn stretch_empty() {
        let s = StretchStats::new();
        assert!(s.is_empty());
        assert_eq!(s.max_multiplicative(), None);
        assert_eq!(s.mean_multiplicative(), None);
        assert_eq!(s.percentile_multiplicative(50.0), None);
        assert_eq!(s.fraction_exact(), None);
        assert_eq!(s.tightest_alpha(0.0), None);
        assert!(s.check_affine_bound(1.0, 0.0));
    }

    #[test]
    fn affine_bound_checks() {
        let mut s = StretchStats::new();
        // d=4 routed 9 -> 2d+1 holds exactly; d=5 routed 11 -> 2d+1 holds.
        s.record(9, 4);
        s.record(11, 5);
        assert!(s.check_affine_bound(2.0, 1.0));
        assert!(!s.check_affine_bound(2.0, 0.0));
        assert!(s.worst_affine_excess(2.0, 0.0) > 0.0);
        assert_eq!(s.worst_affine_excess(3.0, 0.0), 0.0);
        let alpha = s.tightest_alpha(1.0).unwrap();
        assert!((alpha - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut s = StretchStats::new();
        for i in 1..=100u64 {
            s.record(i, 1);
        }
        let p50 = s.percentile_multiplicative(50.0).unwrap();
        let p95 = s.percentile_multiplicative(95.0).unwrap();
        let p100 = s.percentile_multiplicative(100.0).unwrap();
        assert!(p50 <= p95 && p95 <= p100);
        assert_eq!(p100, 100.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = StretchStats::new();
        a.record(2, 1);
        let mut b = StretchStats::new();
        b.record(3, 1);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max_multiplicative(), Some(3.0));
    }

    #[test]
    fn space_aggregates() {
        let s = SpaceStats::from_per_vertex(vec![10, 20, 30, 40]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.max(), 40);
        assert_eq!(s.total(), 100);
        assert_eq!(s.mean(), 25.0);
        // n = 4, exponent 0.5 -> normalization by 2.
        assert_eq!(s.normalized_max(0.5), 20.0);
        assert_eq!(s.normalized_mean(0.5), 12.5);
    }

    #[test]
    fn space_empty() {
        let s = SpaceStats::from_per_vertex(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.normalized_max(0.5), 0.0);
        assert_eq!(s.normalized_mean(0.5), 0.0);
    }
}
