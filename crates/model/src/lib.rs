//! The labeled fixed-port routing model used by every scheme in this
//! workspace, together with a message simulator and the space/stretch
//! accounting the experiment harness reports.
//!
//! A *labeled compact routing scheme* (Peleg–Upfal; Thorup–Zwick) consists of
//! a centralized preprocessing phase that assigns every vertex a **routing
//! table** and a short **label**, and a distributed routing phase: when a
//! message for destination `v` (whose label is attached to the message)
//! arrives at a vertex `u`, the scheme must decide — looking only at `u`'s
//! routing table, the message header and `v`'s label — whether to deliver the
//! message or which **port** (local link index) to forward it on.
//!
//! [`RoutingScheme`] captures exactly that interface; [`simulate`] walks a
//! message through a graph enforcing the port semantics and accounting for
//! the traversed weight, and [`stats`] aggregates stretch and table-size
//! measurements across many routed pairs.
//!
//! [`RoutingScheme`] keeps its per-scheme `Label`/`Header` types (and is
//! therefore not object safe); the [`erased`] module provides the
//! object-safe twin [`DynScheme`] — implemented automatically for every
//! scheme — which every driver in this crate ([`simulate`], the
//! evaluators, [`route_pairs_lossy`]) consumes, so heterogeneous scheme
//! collections (`Box<dyn DynScheme>`, as built by the facade's
//! `SchemeRegistry`) route through exactly the same code path as typed
//! schemes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod erased;
pub mod eval;
pub mod scheme;
pub mod simulator;
pub mod stale;
pub mod stats;

pub use erased::{DynScheme, ErasedHeader, ErasedLabel};
pub use error::RouteError;
pub use eval::{
    evaluate, evaluate_pairs, evaluate_sampled, sample_pairs_from, select_pairs_anchored,
};
pub use scheme::{Decision, HeaderSize, RoutingScheme};
pub use simulator::{
    simulate, simulate_lean, simulate_lean_with_label, simulate_with_ttl, LeanOutcome,
    RouteOutcome,
};
pub use stale::{route_pairs_lossy, sample_alive_pairs, FailureBreakdown, ResilienceReport};
