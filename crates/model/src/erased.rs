//! Object-safe type erasure for routing schemes: [`DynScheme`].
//!
//! [`crate::RoutingScheme`] is deliberately *not* object safe — its
//! associated `Label`/`Header` types let every scheme carry exactly the
//! routing state the paper assigns it, with no common denominator forced on
//! them. The price is that nothing can hold "a scheme" without naming its
//! concrete type: before this module existed, every harness binary carried
//! its own per-scheme `match` and every driver (`simulate`, the evaluators,
//! the churn experiment) was generic plumbing monomorphized per scheme.
//!
//! [`DynScheme`] is the erased twin: the same five routing-phase operations
//! over word-accounted [`ErasedLabel`]/[`ErasedHeader`] values, object safe,
//! so a `Box<dyn DynScheme>` built by the facade's `SchemeRegistry` can flow
//! through every driver in the workspace. A blanket adapter implements
//! `DynScheme` for **every** `RoutingScheme` automatically; the adapter only
//! wraps and unwraps — every decision is made by the typed scheme's own
//! code, so routing through the erased surface is bit-identical to routing
//! through the typed one (the erasure-fidelity property tests in
//! `tests/properties.rs` pin this down per registered scheme).
//!
//! # Size accounting across the boundary
//!
//! The paper measures labels and headers in `O(log n)`-bit machine words,
//! and the erased layer preserves that accounting rather than re-deriving
//! it: an [`ErasedLabel`] carries the word count the typed scheme reports
//! for the labelled vertex, and [`ErasedHeader`] implements [`HeaderSize`]
//! by delegating to the live typed header — so the simulator's
//! `max_header_words` tracking sees exactly the numbers it saw before
//! erasure, hop by hop, even for schemes whose header grows in flight.
//!
//! The payload itself crosses the boundary as an opaque owned value
//! (downcast by the blanket adapter), not as a serialized word vector:
//! encoding every label family into words would buy no generality here —
//! the word *count* is what the paper's tables compare — and would put a
//! codec between the typed scheme and its own data on the hot path.

use std::any::Any;

use routing_graph::VertexId;

use crate::scheme::{Decision, HeaderSize, RoutingScheme};
use crate::RouteError;

/// A destination label that has been type-erased for [`DynScheme`].
///
/// Carries the label's size in `O(log n)`-bit words next to the opaque
/// payload, so space accounting survives erasure.
pub struct ErasedLabel {
    inner: Box<dyn ClonableAny>,
    words: usize,
}

impl ErasedLabel {
    /// Erases a typed label, recording its size in words.
    ///
    /// `Send + Sync` on the payload makes the erased label itself
    /// `Send + Sync`, so the serving layer can erase a label on a
    /// dispatcher thread and route with it on a shard thread.
    pub fn new<L: Clone + Send + Sync + 'static>(label: L, words: usize) -> Self {
        ErasedLabel { inner: Box::new(label), words }
    }

    /// The typed label, if this label was produced by a scheme with label
    /// type `L`.
    pub fn downcast_ref<L: 'static>(&self) -> Option<&L> {
        self.inner.as_any().downcast_ref::<L>()
    }

    /// Size of the erased label in `O(log n)`-bit words (as reported by
    /// [`RoutingScheme::label_words`] for the labelled vertex).
    pub fn words(&self) -> usize {
        self.words
    }
}

impl Clone for ErasedLabel {
    fn clone(&self) -> Self {
        ErasedLabel { inner: self.inner.clone_box(), words: self.words }
    }
}

impl std::fmt::Debug for ErasedLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasedLabel").field("words", &self.words).finish_non_exhaustive()
    }
}

/// A message header that has been type-erased for [`DynScheme`].
///
/// Implements [`HeaderSize`] by asking the live typed header, so the
/// simulator's largest-header tracking keeps working through the erased
/// surface even when a header grows while the message is in flight.
pub struct ErasedHeader {
    inner: Box<dyn SizedAny>,
}

impl ErasedHeader {
    /// Erases a typed header.
    ///
    /// `Send` on the payload lets a header travel with its message between
    /// threads; headers are only ever mutated by one thread at a time, so
    /// `Sync` is deliberately not required.
    pub fn new<H: HeaderSize + Send + 'static>(header: H) -> Self {
        ErasedHeader { inner: Box::new(header) }
    }

    /// The typed header, if this header was produced by a scheme with
    /// header type `H`.
    pub fn downcast_mut<H: 'static>(&mut self) -> Option<&mut H> {
        self.inner.as_any_mut().downcast_mut::<H>()
    }

    /// Immutable view of the typed header.
    pub fn downcast_ref<H: 'static>(&self) -> Option<&H> {
        self.inner.as_any().downcast_ref::<H>()
    }
}

impl HeaderSize for ErasedHeader {
    fn words(&self) -> usize {
        self.inner.words()
    }
}

impl std::fmt::Debug for ErasedHeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasedHeader").field("words", &HeaderSize::words(self)).finish_non_exhaustive()
    }
}

/// Object-safe view of a routing scheme: the [`RoutingScheme`] contract
/// with the associated types erased behind [`ErasedLabel`]/[`ErasedHeader`].
///
/// Every `RoutingScheme` implements this automatically through a blanket
/// adapter, so `&ConcreteScheme` coerces to `&dyn DynScheme` at any call
/// site and a `Box<dyn DynScheme>` (as produced by the facade's
/// `SchemeRegistry`) is a first-class citizen of every driver: the
/// simulator, the evaluators, the stale-table walker and the churn
/// experiment all consume `&dyn DynScheme`.
///
/// `Send + Sync` are supertraits: a built scheme is an immutable bundle of
/// routing tables, and the serving layer (`routing-serve`) shares one
/// `Arc<dyn DynScheme>` across every shard thread as a read-only snapshot —
/// so shareability is part of the erased contract, not an opt-in. Every
/// concrete scheme in the workspace holds only owned data (vectors, flat
/// CSR tables), so the bounds cost nothing.
pub trait DynScheme: Send + Sync {
    /// Scheme name; equals the scheme's registry key (see
    /// [`RoutingScheme::name`]).
    fn name(&self) -> &str;

    /// Number of vertices of the preprocessed graph.
    fn n(&self) -> usize;

    /// The erased label of vertex `v`.
    fn label_of(&self, v: VertexId) -> ErasedLabel;

    /// Creates the header for a message injected at `source` towards the
    /// destination described by `dest`.
    ///
    /// # Errors
    ///
    /// As [`RoutingScheme::init_header`]; additionally rejects (as
    /// [`RouteError::BadLabel`]) a label that was produced by a different
    /// scheme type.
    fn init_header(&self, source: VertexId, dest: &ErasedLabel) -> Result<ErasedHeader, RouteError>;

    /// The local routing decision at vertex `at`.
    ///
    /// # Errors
    ///
    /// As [`RoutingScheme::decide`]; additionally rejects (as
    /// [`RouteError::BadLabel`]) a label or header that was produced by a
    /// different scheme type.
    fn decide(
        &self,
        at: VertexId,
        header: &mut ErasedHeader,
        dest: &ErasedLabel,
    ) -> Result<Decision, RouteError>;

    /// Size of the routing table stored at `v`, in `O(log n)`-bit words.
    fn table_words(&self, v: VertexId) -> usize;

    /// Size of the label of `v`, in `O(log n)`-bit words.
    fn label_words(&self, v: VertexId) -> usize;
}

impl std::fmt::Debug for dyn DynScheme + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynScheme")
            .field("name", &self.name())
            .field("n", &self.n())
            .finish_non_exhaustive()
    }
}

/// The blanket adapter: every typed scheme is usable through the erased
/// surface, with no per-scheme code. The `Send + Sync` bound mirrors the
/// supertraits of [`DynScheme`]; every scheme in the workspace satisfies it
/// structurally (owned tables, no interior mutability).
impl<S: RoutingScheme + Send + Sync> DynScheme for S {
    fn name(&self) -> &str {
        RoutingScheme::name(self)
    }

    fn n(&self) -> usize {
        RoutingScheme::n(self)
    }

    fn label_of(&self, v: VertexId) -> ErasedLabel {
        ErasedLabel::new(RoutingScheme::label_of(self, v), RoutingScheme::label_words(self, v))
    }

    fn init_header(&self, source: VertexId, dest: &ErasedLabel) -> Result<ErasedHeader, RouteError> {
        let label =
            dest.downcast_ref::<S::Label>().ok_or_else(|| foreign_label(RoutingScheme::name(self)))?;
        Ok(ErasedHeader::new(RoutingScheme::init_header(self, source, label)?))
    }

    fn decide(
        &self,
        at: VertexId,
        header: &mut ErasedHeader,
        dest: &ErasedLabel,
    ) -> Result<Decision, RouteError> {
        let label =
            dest.downcast_ref::<S::Label>().ok_or_else(|| foreign_label(RoutingScheme::name(self)))?;
        let header =
            header.downcast_mut::<S::Header>().ok_or_else(|| foreign_header(RoutingScheme::name(self)))?;
        RoutingScheme::decide(self, at, header, label)
    }

    fn table_words(&self, v: VertexId) -> usize {
        RoutingScheme::table_words(self, v)
    }

    fn label_words(&self, v: VertexId) -> usize {
        RoutingScheme::label_words(self, v)
    }
}

// Compile-time proof of the serving-layer contract: erased values and
// erased schemes cross shard boundaries. A regression on any of these
// bounds fails the build of this crate, not a downstream user's.
const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
const fn assert_send<T: Send + ?Sized>() {}
const _: () = assert_send_sync::<ErasedLabel>();
const _: () = assert_send::<ErasedHeader>();
const _: () = assert_send_sync::<dyn DynScheme>();

fn foreign_label(scheme: &str) -> RouteError {
    RouteError::BadLabel { what: format!("label was not produced by scheme {scheme}") }
}

fn foreign_header(scheme: &str) -> RouteError {
    RouteError::BadLabel { what: format!("header was not produced by scheme {scheme}") }
}

/// `Any` + `Clone` for boxed label payloads. `Send + Sync` so erased labels
/// can be shared with (and sent to) shard threads.
trait ClonableAny: Send + Sync {
    fn as_any(&self) -> &dyn Any;
    fn clone_box(&self) -> Box<dyn ClonableAny>;
}

impl<T: Clone + Send + Sync + 'static> ClonableAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn clone_box(&self) -> Box<dyn ClonableAny> {
        Box::new(self.clone())
    }
}

/// `Any` + live word accounting for boxed header payloads. `Send` so a
/// header can travel with its message across threads.
trait SizedAny: Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn words(&self) -> usize;
}

impl<T: HeaderSize + Send + 'static> SizedAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn words(&self) -> usize {
        HeaderSize::words(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::Port;

    /// A two-vertex scheme whose header counts traversed hops, to exercise
    /// live header-word accounting through the erased surface.
    struct TwoHop;

    #[derive(Clone)]
    struct CountingHeader(usize);
    impl HeaderSize for CountingHeader {
        fn words(&self) -> usize {
            self.0
        }
    }

    impl RoutingScheme for TwoHop {
        type Label = VertexId;
        type Header = CountingHeader;
        fn name(&self) -> &str {
            "two-hop"
        }
        fn n(&self) -> usize {
            2
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<CountingHeader, RouteError> {
            Ok(CountingHeader(1))
        }
        fn decide(
            &self,
            at: VertexId,
            header: &mut CountingHeader,
            dest: &VertexId,
        ) -> Result<Decision, RouteError> {
            if at == *dest {
                return Ok(Decision::Deliver);
            }
            header.0 += 1;
            Ok(Decision::Forward(Port(0)))
        }
        fn table_words(&self, _: VertexId) -> usize {
            3
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    #[test]
    fn blanket_adapter_round_trips() {
        let scheme = TwoHop;
        let dyn_scheme: &dyn DynScheme = &scheme;
        assert_eq!(dyn_scheme.name(), "two-hop");
        assert_eq!(dyn_scheme.n(), 2);
        assert_eq!(dyn_scheme.table_words(VertexId(0)), 3);
        assert_eq!(dyn_scheme.label_words(VertexId(1)), 1);

        let label = dyn_scheme.label_of(VertexId(1));
        assert_eq!(label.words(), 1);
        assert_eq!(label.downcast_ref::<VertexId>(), Some(&VertexId(1)));
        let cloned = label.clone();
        assert_eq!(cloned.downcast_ref::<VertexId>(), Some(&VertexId(1)));

        let mut header = dyn_scheme.init_header(VertexId(0), &label).unwrap();
        assert_eq!(HeaderSize::words(&header), 1);
        // Forwarding grows the typed header; the erased view must see it.
        let d = dyn_scheme.decide(VertexId(0), &mut header, &label).unwrap();
        assert_eq!(d, Decision::Forward(Port(0)));
        assert_eq!(HeaderSize::words(&header), 2, "live header growth visible through erasure");
        let d = dyn_scheme.decide(VertexId(1), &mut header, &label).unwrap();
        assert_eq!(d, Decision::Deliver);
    }

    #[test]
    fn foreign_labels_are_rejected_not_misread() {
        let scheme = TwoHop;
        let dyn_scheme: &dyn DynScheme = &scheme;
        // A label erased from a different label type.
        let foreign = ErasedLabel::new(42usize, 1);
        let err = dyn_scheme.init_header(VertexId(0), &foreign).unwrap_err();
        assert!(matches!(err, RouteError::BadLabel { .. }));
        let good = dyn_scheme.label_of(VertexId(1));
        let mut header = dyn_scheme.init_header(VertexId(0), &good).unwrap();
        let err = dyn_scheme.decide(VertexId(0), &mut header, &foreign).unwrap_err();
        assert!(matches!(err, RouteError::BadLabel { .. }));
    }

    #[test]
    fn erased_debug_shows_words() {
        let label = ErasedLabel::new(VertexId(3), 2);
        assert!(format!("{label:?}").contains("words: 2"));
        let header = ErasedHeader::new(CountingHeader(5));
        assert!(format!("{header:?}").contains("words: 5"));
    }
}
