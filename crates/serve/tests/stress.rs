//! Satellite 1 — the epoch-swap concurrency stress test.
//!
//! M reader threads hammer a shared [`ShardedEngine`] with a fixed pair
//! set while a writer thread performs K epoch swaps under the load. The
//! schemes are deterministic, so for every published epoch the correct
//! answer to every pair is precomputable; the test asserts that **every**
//! answer observed by any reader at any time is exactly the answer of the
//! epoch it claims to come from — never a blend of two epochs, never an
//! answer no published epoch would give. After the last swap, a quiescent
//! batch must observe the final epoch.
//!
//! Sized to run in the default `cargo test -q` tier: a small graph, a few
//! thousand queries per reader. CI additionally runs it under
//! `RUST_BACKTRACE=1` with a hard timeout (see .github/workflows/ci.yml).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use compact_routing::registry::SchemeRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_core::BuildContext;
use routing_graph::generators::{Family, WeightModel};
use routing_graph::{Graph, VertexId};
use routing_model::{simulate_lean, DynScheme, LeanOutcome};
use routing_serve::{EngineConfig, RouteAnswer, ShardedEngine, ZipfWorkload};

const READERS: usize = 4;
const SWAPS: u64 = 3;
const BATCHES_PER_READER: usize = 30;
const BATCH: usize = 64;
const N: usize = 120;

/// The scheme published at each epoch: epoch e uses EPOCH_KEYS[(e-1) % len]
/// with build seed e, so consecutive epochs genuinely answer differently.
const EPOCH_KEYS: [&str; 4] = ["tz2", "warmup", "thm13", "tz2"];

fn build_epoch(g: &Graph, epoch: u64) -> Arc<dyn DynScheme> {
    let registry = SchemeRegistry::with_defaults();
    let key = EPOCH_KEYS[((epoch - 1) % EPOCH_KEYS.len() as u64) as usize];
    let ctx = BuildContext { seed: epoch, threads: 1, ..BuildContext::default() };
    Arc::from(registry.build(key, g, &ctx).expect("scheme builds"))
}

/// The ground truth for one epoch: every pair's lean outcome under that
/// epoch's scheme, routed directly (single-threaded, canonical simulator).
fn truth_for(
    g: &Graph,
    scheme: &dyn DynScheme,
    pairs: &[(VertexId, VertexId)],
) -> HashMap<(VertexId, VertexId), LeanOutcome> {
    pairs
        .iter()
        .map(|&(u, v)| {
            ((u, v), simulate_lean(g, scheme, u, v, 4 * g.n() + 16).expect("routes"))
        })
        .collect()
}

fn answer_matches(answer: &RouteAnswer, truth: &LeanOutcome) -> bool {
    answer.weight == truth.weight
        && answer.hops == truth.hops
        && answer.max_header_words == truth.max_header_words
}

#[test]
fn readers_never_observe_an_answer_outside_a_published_epoch() {
    let mut rng = StdRng::seed_from_u64(99);
    let g = Arc::new(Family::ErdosRenyi.generate(
        N,
        WeightModel::Uniform { lo: 1, hi: 9 },
        &mut rng,
    ));

    // The fixed pair set every reader routes, Zipf-skewed like real load.
    let mut load = ZipfWorkload::new(N, 0.9, 7);
    let pairs: Vec<(VertexId, VertexId)> = load.next_batch(BATCH);

    // Precompute every epoch's scheme and its ground truth up front: the
    // writer publishes prebuilt snapshots so swaps are fast enough to land
    // in the middle of reader traffic.
    let total_epochs = 1 + SWAPS;
    let schemes: Vec<Arc<dyn DynScheme>> =
        (1..=total_epochs).map(|e| build_epoch(&g, e)).collect();
    let truth: Vec<HashMap<(VertexId, VertexId), LeanOutcome>> =
        schemes.iter().map(|s| truth_for(&g, s.as_ref(), &pairs)).collect();

    // Distinct epochs must answer distinctly for the test to have teeth:
    // at least one pair must distinguish every adjacent epoch pair.
    for w in truth.windows(2) {
        assert!(
            pairs.iter().any(|p| w[0][p] != w[1][p]),
            "two adjacent epochs answer every pair identically; the stress test \
             cannot distinguish them — change EPOCH_KEYS or seeds"
        );
    }

    let engine = Arc::new(
        ShardedEngine::new(Arc::clone(&g), Arc::clone(&schemes[0]), EngineConfig::with_shards(2))
            .unwrap(),
    );

    let writer_done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Writer: publish epochs 2..=total while the readers are routing.
        scope.spawn(|| {
            for e in 2..=total_epochs {
                // A few hundred microseconds between swaps lets reader
                // batches land on both sides of each publication.
                std::thread::sleep(std::time::Duration::from_micros(300));
                let published =
                    engine.publish(Arc::clone(&g), Arc::clone(&schemes[(e - 1) as usize]))
                        .expect("publish succeeds");
                assert_eq!(published, e, "epochs are assigned in publication order");
            }
            writer_done.store(true, Ordering::Release);
        });

        // Readers: route the fixed pair set over and over; every answer
        // must be exactly the precomputed answer of its claimed epoch.
        for reader in 0..READERS {
            let engine = Arc::clone(&engine);
            let pairs = &pairs;
            let truth = &truth;
            scope.spawn(move || {
                let mut seen_epochs = 0u64;
                for round in 0..BATCHES_PER_READER {
                    let answers = engine.route_batch(pairs);
                    for (answer, pair) in answers.iter().zip(pairs) {
                        let answer = answer
                            .as_ref()
                            .unwrap_or_else(|e| panic!("reader {reader} round {round}: {e}"));
                        assert!(
                            answer.epoch >= 1 && answer.epoch <= total_epochs,
                            "epoch {} was never published",
                            answer.epoch
                        );
                        let expected = &truth[(answer.epoch - 1) as usize][pair];
                        assert!(
                            answer_matches(answer, expected),
                            "reader {reader} round {round}: answer {answer:?} for {pair:?} is \
                             not the answer of its claimed epoch {}",
                            answer.epoch
                        );
                        seen_epochs |= 1 << answer.epoch;
                    }
                }
                // Each reader rode through real traffic; it must have seen
                // at least one answer (epoch 1 at minimum).
                assert_ne!(seen_epochs, 0);
            });
        }
    });

    assert!(writer_done.load(Ordering::Acquire));
    assert_eq!(engine.epoch(), total_epochs);

    // Quiescent check: with the writer done, a fresh batch must observe the
    // final epoch — and only the final epoch — with its exact answers.
    let final_truth = &truth[(total_epochs - 1) as usize];
    for (answer, pair) in engine.route_batch(&pairs).iter().zip(&pairs) {
        let answer = answer.as_ref().expect("quiescent routing succeeds");
        assert_eq!(answer.epoch, total_epochs, "stale epoch after the last swap");
        assert!(answer_matches(answer, &final_truth[pair]));
    }

    // Latency accounting covered every query: READERS * rounds * batch
    // + the quiescent batch, across all shards.
    let stats = engine.stats();
    let expected_queries = (READERS * BATCHES_PER_READER * BATCH + BATCH) as u64;
    assert_eq!(stats.iter().map(|s| s.queries).sum::<u64>(), expected_queries);
    assert_eq!(stats.iter().map(|s| s.errors).sum::<u64>(), 0);
    assert_eq!(
        stats.iter().map(|s| s.latency.count()).sum::<u64>(),
        expected_queries,
        "the latency histograms must account for every routed query"
    );
}
