//! Shard-count and batching equivalence: routing through the sharded
//! engine — at any shard count, batched or one-at-a-time — is bit-identical
//! to direct single-threaded routing through the same `DynScheme`. The
//! engine adds provenance (epoch, shard) and throughput, never different
//! answers.

use std::sync::Arc;

use compact_routing::registry::SchemeRegistry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_core::BuildContext;
use routing_graph::generators::{self, WeightModel};
use routing_graph::{Graph, VertexId};
use routing_model::{simulate, DynScheme};
use routing_serve::{EngineConfig, ShardedEngine, ZipfWorkload};

const KEYS: [&str; 3] = ["warmup", "tz2", "thm13"];

fn arb_setup() -> impl Strategy<Value = (Graph, u64, &'static str)> {
    (24usize..60, 1u64..1_000, 0usize..KEYS.len()).prop_map(|(n, seed, key)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(
            n,
            8.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 16 },
            &mut rng,
        );
        (g, seed, KEYS[key])
    })
}

fn build_scheme(g: &Graph, key: &str, seed: u64) -> Arc<dyn DynScheme> {
    let registry = SchemeRegistry::with_defaults();
    let ctx = BuildContext { seed, threads: 1, ..BuildContext::default() };
    Arc::from(registry.build(key, g, &ctx).expect("scheme builds"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Satellite 2: for random graphs and schemes, every pair routed through
    /// the engine at 1, 2 and 4 shards produces exactly the decisions of the
    /// direct simulator — same weight, same hop count, same per-hop header
    /// words, same path.
    #[test]
    fn sharded_routing_is_bit_identical_to_direct((g, seed, key) in arb_setup()) {
        let scheme = build_scheme(&g, key, seed);
        let g = Arc::new(g);
        let pairs: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|u| g.vertices().step_by(5).map(move |v| (u, v)))
            .collect();

        // Ground truth: the canonical single-threaded simulator.
        let want: Vec<_> = pairs
            .iter()
            .map(|&(u, v)| simulate(&g, scheme.as_ref(), u, v).expect("direct routing succeeds"))
            .collect();

        for shards in [1usize, 2, 4] {
            let config = EngineConfig { shards, record_paths: true, max_hops: None };
            let engine =
                ShardedEngine::new(Arc::clone(&g), Arc::clone(&scheme), config).unwrap();
            let answers = engine.route_batch(&pairs);
            for ((answer, truth), &(u, v)) in answers.iter().zip(&want).zip(&pairs) {
                let got = answer.as_ref().unwrap_or_else(|e| {
                    panic!("{shards}-shard engine failed {u:?}->{v:?}: {e}")
                });
                prop_assert_eq!(got.weight, truth.weight);
                prop_assert_eq!(got.hops, truth.hops);
                prop_assert_eq!(got.max_header_words, truth.max_header_words);
                prop_assert_eq!(got.path.as_ref().unwrap(), &truth.path);
                prop_assert_eq!(got.epoch, 1);
                prop_assert_eq!(got.shard, engine.owner_of(u).unwrap());
            }
        }
    }

    /// Satellite 3a: the batched API answers exactly what one-at-a-time
    /// routing answers, in input order, on the lean (no recorded path) hot
    /// path as well.
    #[test]
    fn batched_equals_one_at_a_time((g, seed, key) in arb_setup()) {
        let scheme = build_scheme(&g, key, seed);
        let g = Arc::new(g);
        let engine = ShardedEngine::new(
            Arc::clone(&g),
            Arc::clone(&scheme),
            EngineConfig::with_shards(3),
        )
        .unwrap();

        let mut load = ZipfWorkload::new(g.n(), 0.9, seed);
        let pairs = load.next_batch(300);

        let batched = engine.route_batch(&pairs);
        for (answer, &(u, v)) in batched.iter().zip(&pairs) {
            let single = engine.route(u, v);
            prop_assert_eq!(answer, &single);
        }
    }
}

/// Satellite 3b: the Zipf load generator is byte-reproducible from its seed
/// and its top-1% sources carry a super-proportional share of a long stream
/// (the per-module unit tests check distribution shape; this pins the
/// end-to-end contract the bench binary relies on).
#[test]
fn workload_reproducibility_end_to_end() {
    let n = 2_000;
    let mut a = ZipfWorkload::new(n, 0.99, 1234);
    let mut b = ZipfWorkload::new(n, 0.99, 1234);
    let stream_a = a.next_batch(20_000);
    assert_eq!(stream_a, b.next_batch(20_000));

    let hot: std::collections::HashSet<VertexId> =
        (0..n / 100).map(|r| a.vertex_at_rank(r)).collect();
    let from_hot = stream_a.iter().filter(|(s, _)| hot.contains(s)).count();
    let share = from_hot as f64 / stream_a.len() as f64;
    assert!(share > 0.25, "top 1% of sources carry only {share:.3} of the stream");
}
