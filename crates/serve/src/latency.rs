//! Latency histogram — promoted to [`routing_obs::latency`] (PR 8) so the
//! churn and bench harnesses can record through the same type and the
//! exporters have one histogram shape to render. Re-exported here so every
//! existing `routing_serve::latency::LatencyHistogram` /
//! `routing_serve::LatencyHistogram` caller compiles unchanged.

pub use routing_obs::latency::LatencyHistogram;
