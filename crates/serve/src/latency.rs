//! A fixed-size log-linear latency histogram (HDR-style, two significant
//! hex digits): constant-time recording, mergeable across shards, and
//! quantile queries with a bounded relative error of `1/16`.
//!
//! Per-query latencies on the serving hot path span five orders of
//! magnitude (sub-microsecond cache hits to multi-millisecond cold routes),
//! so a linear histogram is either huge or useless. This one keeps 16
//! linear sub-buckets per power of two: every recorded value lands in a
//! bucket whose width is at most `1/16` of its lower bound, which is more
//! resolution than wall-clock jitter justifies. The whole histogram is a
//! flat `u64` array — recording is two shifts and an increment, merging is
//! element-wise addition (the engine merges per-shard histograms into the
//! aggregate tail-latency report).

/// Linear sub-buckets per octave; also the size of the initial exact range.
const SUB: usize = 16;
/// log2(SUB): values below `SUB` are recorded exactly.
const SUB_BITS: u32 = 4;
/// Octaves above the exact range (`u64` values up to `2^63`).
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// A mergeable log-linear histogram of `u64` samples (nanoseconds, by
/// convention, but any scale works).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: Box::new([0; BUCKETS]), total: 0, sum: 0, max: 0 }
    }

    /// The bucket index of `v`: exact below [`SUB`], log-linear above.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let offset = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (SUB + octave * SUB + offset).min(BUCKETS - 1)
    }

    /// The largest value that maps to bucket `idx` (the value a quantile
    /// query reports for samples in that bucket).
    fn upper_bound(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = ((idx - SUB) / SUB) as u32;
        let offset = ((idx - SUB) % SUB) as u128;
        // The bucket covers [ (16+offset) << octave, (16+offset+1) << octave );
        // the top bucket's bound exceeds u64, so compute wide and saturate.
        let bound = ((SUB as u128 + offset + 1) << octave) - 1;
        bound.min(u64::MAX as u128) as u64
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (exact: bucket counts add).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (exact, from the running sum), or
    /// `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum as f64 / self.total as f64)
    }

    /// The largest recorded sample (exact), or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the target sample — within `1/16` relative error of the true
    /// order statistic, clamped to the exact maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the target sample, 1-based; q=0 hits the first.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 15, 15, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.mean(), Some(51.0 / 7.0));
    }

    #[test]
    fn quantiles_are_within_one_sixteenth() {
        let mut h = LatencyHistogram::new();
        // 1..=100_000: the true q-quantile is q * 100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let want = (q * 100_000.0) as f64;
            let got = h.quantile(q).unwrap() as f64;
            assert!(
                got >= want * (1.0 - 1.0 / 16.0) && got <= want * (1.0 + 1.0 / 8.0),
                "q={q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(h.quantile(1.0), Some(100_000));
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [7u64, 130, 9_000, 1 << 40] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 250_000, u64::MAX / 2] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn huge_values_do_not_overflow_the_bucket_table() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1 << 62);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        // Quantiles clamp to the exact recorded maximum.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn debug_is_compact() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        let s = format!("{h:?}");
        assert!(s.contains("count: 1"), "{s}");
    }
}
