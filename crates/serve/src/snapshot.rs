//! Immutable scheme snapshots and the epoch-based publication cell.
//!
//! A [`SchemeSnapshot`] bundles everything one routed query needs — the
//! graph (ports, weights) and the built scheme (tables, labels) — behind
//! `Arc`s, tagged with the **epoch** at which it was published. Snapshots
//! are immutable by construction: `DynScheme` is a read-only surface and
//! `Send + Sync` by contract (see `routing_model::erased`), so any number
//! of shard threads can route through one snapshot concurrently with no
//! synchronization beyond the initial `Arc` clone.
//!
//! The [`EpochCell`] is the single mutable point of the serving layer: a
//! rebuilt table is published as a whole new snapshot with the next epoch
//! number, swapped in under a write lock that is held only for the pointer
//! store. Readers hold the lock only to clone two `Arc`s — nanoseconds —
//! so a swap never blocks traffic for longer than one pointer exchange,
//! and a shard that loaded the old snapshot keeps routing it consistently
//! until its next load (the `Arc` keeps the retired tables alive). Every
//! answer the engine produces carries the epoch of the snapshot that
//! produced it, which is what the concurrency stress test keys on: an
//! answer must be *exactly* the answer some published epoch gives, never a
//! blend of two.

use std::sync::{Arc, RwLock};

use routing_graph::Graph;
use routing_model::DynScheme;

/// An immutable, shareable unit of serving state: `(graph, scheme)` at a
/// publication epoch.
#[derive(Clone)]
pub struct SchemeSnapshot {
    graph: Arc<Graph>,
    scheme: Arc<dyn DynScheme>,
    epoch: u64,
}

impl SchemeSnapshot {
    /// The graph the scheme was preprocessed for.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The built scheme, through the object-safe surface.
    pub fn scheme(&self) -> &dyn DynScheme {
        self.scheme.as_ref()
    }

    /// The epoch this snapshot was published at (1-based; epochs are
    /// assigned by the [`EpochCell`] in publication order).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::fmt::Debug for SchemeSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeSnapshot")
            .field("scheme", &self.scheme.name())
            .field("n", &self.graph.n())
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// The swap point: holds the currently published [`SchemeSnapshot`] and
/// assigns monotone epochs to new publications.
///
/// Readers ([`EpochCell::load`]) take the read lock just long enough to
/// clone the snapshot's `Arc`s; the writer ([`EpochCell::publish`]) takes
/// the write lock just long enough to store new ones. There is no
/// copy-on-write of tables, no generation counting on the read path, and
/// no reader ever observes a half-swapped state: the lock makes the swap
/// atomic, the `Arc`s make retired snapshots outlive their readers.
pub struct EpochCell {
    slot: RwLock<SchemeSnapshot>,
}

impl EpochCell {
    /// A cell whose first published snapshot is `(graph, scheme)` at
    /// epoch 1.
    pub fn new(graph: Arc<Graph>, scheme: Arc<dyn DynScheme>) -> Self {
        EpochCell { slot: RwLock::new(SchemeSnapshot { graph, scheme, epoch: 1 }) }
    }

    /// The currently published snapshot (cheap: two `Arc` clones under the
    /// read lock).
    ///
    /// Poison-tolerant: the slot always holds a complete snapshot — the
    /// writer only replaces the whole value under the lock — so a publisher
    /// that panicked elsewhere never leaves a torn state, and readers keep
    /// serving the last published epoch.
    pub fn load(&self) -> SchemeSnapshot {
        routing_obs::counters::SERVE_SNAPSHOT_LOADS.inc();
        self.slot.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The current epoch without cloning the snapshot. Poison-tolerant for
    /// the same reason as [`EpochCell::load`].
    pub fn epoch(&self) -> u64 {
        self.slot.read().unwrap_or_else(|p| p.into_inner()).epoch
    }

    /// Publishes a new snapshot, returning its epoch (previous epoch + 1).
    ///
    /// The write lock is held only for the pointer store; readers that
    /// loaded the previous snapshot keep routing it until their next
    /// `load` — that is the designed behavior, not a race: a batch is
    /// always answered under one single epoch.
    pub fn publish(&self, graph: Arc<Graph>, scheme: Arc<dyn DynScheme>) -> u64 {
        routing_obs::counters::SERVE_EPOCH_SWAPS.inc();
        // Poison-tolerant like `load`: the whole-value store below cannot
        // observe or create a torn snapshot.
        let mut slot = self.slot.write().unwrap_or_else(|p| p.into_inner());
        let epoch = slot.epoch + 1;
        *slot = SchemeSnapshot { graph, scheme, epoch };
        epoch
    }
}

impl std::fmt::Debug for EpochCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell").field("current", &self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::{generators, Port, VertexId};
    use routing_model::scheme::{Decision, HeaderSize, RoutingScheme};
    use routing_model::RouteError;

    /// A trivial scheme whose identity is its name, to tell snapshots apart.
    struct Named(String);

    #[derive(Clone)]
    struct NoHeader;
    impl HeaderSize for NoHeader {
        fn words(&self) -> usize {
            0
        }
    }

    impl RoutingScheme for Named {
        type Label = VertexId;
        type Header = NoHeader;
        fn name(&self) -> &str {
            &self.0
        }
        fn n(&self) -> usize {
            3
        }
        fn label_of(&self, v: VertexId) -> VertexId {
            v
        }
        fn init_header(&self, _: VertexId, _: &VertexId) -> Result<NoHeader, RouteError> {
            Ok(NoHeader)
        }
        fn decide(&self, _: VertexId, _: &mut NoHeader, _: &VertexId) -> Result<Decision, RouteError> {
            Ok(Decision::Forward(Port(0)))
        }
        fn table_words(&self, _: VertexId) -> usize {
            0
        }
        fn label_words(&self, _: VertexId) -> usize {
            1
        }
    }

    fn cell() -> EpochCell {
        let g = Arc::new(generators::path(3));
        EpochCell::new(g, Arc::new(Named("first".into())))
    }

    #[test]
    fn epochs_start_at_one_and_increment_per_publish() {
        let c = cell();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.load().epoch(), 1);
        assert_eq!(c.load().scheme().name(), "first");

        let g = Arc::new(generators::path(3));
        let e = c.publish(g.clone(), Arc::new(Named("second".into())));
        assert_eq!(e, 2);
        assert_eq!(c.epoch(), 2);
        assert_eq!(c.load().scheme().name(), "second");

        let e = c.publish(g, Arc::new(Named("third".into())));
        assert_eq!(e, 3);
    }

    #[test]
    fn loaded_snapshots_outlive_later_publishes() {
        let c = cell();
        let old = c.load();
        let g = Arc::new(generators::path(3));
        c.publish(g, Arc::new(Named("new".into())));
        // The retired snapshot is fully usable: its Arcs keep it alive.
        assert_eq!(old.epoch(), 1);
        assert_eq!(old.scheme().name(), "first");
        assert_eq!(old.graph().n(), 3);
        assert_eq!(c.load().epoch(), 2);
    }

    #[test]
    fn debug_output_names_the_scheme_and_epoch() {
        let c = cell();
        let s = format!("{c:?}");
        assert!(s.contains("first") && s.contains("epoch: 1"), "{s}");
    }
}
