//! The sharded engine: resident worker threads, batched routing, and
//! per-shard accounting.
//!
//! # Shard layout
//!
//! The vertex space `0..n` is partitioned into `S` contiguous ranges;
//! shard `s` **owns every query whose source it is resident for**
//! (`owner = source * S / n`). Ownership is by source because that is the
//! natural partition for the ROADMAP's deployment story: a shard holds the
//! routing state of its resident vertices and answers the queries they
//! inject. Destinations are described by labels, which travel with the
//! query — exactly the compact-routing contract (a label is everything a
//! source needs to know about a destination).
//!
//! # Batched queries
//!
//! [`ShardedEngine::route_batch`] partitions a batch by owner shard in one
//! pass, ships one message per involved shard, and reassembles answers in
//! input order. Within a shard's sub-batch, jobs are sorted by destination
//! so consecutive queries towards the same destination reuse one erased
//! label (label erasure is the only allocation on the lean query path).
//! Each sub-batch is routed entirely under **one** snapshot, loaded once
//! per batch — so every answer in it carries the same epoch and the
//! per-query cost of the epoch machinery is one `Arc` clone amortized over
//! the whole sub-batch.
//!
//! # Hot swap
//!
//! [`ShardedEngine::publish`] installs a rebuilt `(graph, scheme)` pair as
//! the next epoch without stopping traffic: in-flight sub-batches finish on
//! the snapshot they loaded (kept alive by its `Arc`s), later sub-batches
//! load the new one. The concurrency stress test in `tests/stress.rs`
//! drives M reader threads against concurrent publishes and asserts every
//! answer is exactly the answer of *some* published epoch.

use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use routing_graph::{Graph, VertexId, Weight};
use routing_model::{
    simulate_lean_with_label, simulate_with_ttl, DynScheme, ErasedLabel, RouteError,
};

use crate::latency::LatencyHistogram;
use crate::snapshot::{EpochCell, SchemeSnapshot};

/// Errors surfaced by the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// A query named a vertex outside the engine's vertex space.
    UnknownVertex {
        /// The offending vertex index.
        vertex: usize,
        /// The engine's vertex count.
        n: usize,
    },
    /// A snapshot's scheme and graph disagree on the vertex count, or a
    /// published snapshot does not match the engine's vertex space.
    SnapshotMismatch {
        /// Vertex count of the offered graph.
        graph_n: usize,
        /// Vertex count the scheme was preprocessed for.
        scheme_n: usize,
        /// Vertex count the engine serves.
        engine_n: usize,
    },
    /// A shard worker is gone (its thread exited); the engine is broken.
    ShardUnavailable {
        /// The shard that did not answer.
        shard: usize,
    },
    /// The scheme failed to route the query (a scheme bug, surfaced rather
    /// than swallowed).
    Route(RouteError),
    /// The OS refused to spawn a shard worker thread at engine startup
    /// (resource exhaustion; the underlying `io::Error` is not carried
    /// because `ServeError` is `Clone + Eq` for cross-channel reporting).
    WorkerSpawn {
        /// The shard whose worker could not be spawned.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownVertex { vertex, n } => {
                write!(f, "vertex {vertex} outside the engine's vertex space 0..{n}")
            }
            ServeError::SnapshotMismatch { graph_n, scheme_n, engine_n } => write!(
                f,
                "snapshot mismatch: graph has {graph_n} vertices, scheme was built for \
                 {scheme_n}, engine serves {engine_n}"
            ),
            ServeError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable (worker thread exited)")
            }
            ServeError::Route(e) => write!(f, "routing failed: {e}"),
            ServeError::WorkerSpawn { shard } => {
                write!(f, "failed to spawn the worker thread for shard {shard}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Route(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouteError> for ServeError {
    fn from(e: RouteError) -> Self {
        ServeError::Route(e)
    }
}

// Serve errors cross shard boundaries by design (workers report them back
// over channels); checked at compile time like the rest of the workspace's
// error types.
const fn assert_send_sync_static<T: Send + Sync + 'static>() {}
const _: () = assert_send_sync_static::<ServeError>();

/// Configuration of a [`ShardedEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of worker shards (clamped to at least 1).
    pub shards: usize,
    /// Record the full traversed path in every answer. Off on the serving
    /// hot path (the path is the only per-query allocation); on in the
    /// equivalence and stress suites, which compare paths hop by hop.
    pub record_paths: bool,
    /// Hop budget per query; `None` uses the simulator default
    /// (`4·n + 16`).
    pub max_hops: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { shards: 1, record_paths: false, max_hops: None }
    }
}

impl EngineConfig {
    /// A config with `shards` worker shards and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig { shards, ..EngineConfig::default() }
    }
}

/// One routed answer.
///
/// Bit-for-bit identical to what direct single-threaded routing through
/// the same snapshot produces ([`routing_model::simulate`] /
/// [`routing_model::simulate_lean`]); the epoch and shard fields add
/// *provenance*, never different routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAnswer {
    /// Total weight of the traversed path.
    pub weight: Weight,
    /// Number of edges traversed.
    pub hops: usize,
    /// Largest header observed in flight, in `O(log n)`-bit words.
    pub max_header_words: usize,
    /// Epoch of the snapshot that produced this answer.
    pub epoch: u64,
    /// Shard that routed the query (the owner of its source).
    pub shard: usize,
    /// The traversed path, when [`EngineConfig::record_paths`] is on.
    pub path: Option<Vec<VertexId>>,
}

/// Per-shard serving statistics, as accumulated by the worker thread.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Queries routed (including failed ones).
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Sub-batches processed.
    pub batches: u64,
    /// Wall-clock the worker spent inside batches, nanoseconds.
    pub busy_ns: u64,
    /// Per-query latency distribution, nanoseconds.
    pub latency: LatencyHistogram,
}

impl ShardStats {
    fn new(shard: usize) -> Self {
        ShardStats {
            shard,
            queries: 0,
            errors: 0,
            batches: 0,
            busy_ns: 0,
            latency: LatencyHistogram::new(),
        }
    }
}

/// One query inside a shard sub-batch: the caller's slot plus the pair.
struct Job {
    slot: usize,
    source: VertexId,
    dest: VertexId,
}

enum ShardMsg {
    Batch { jobs: Vec<Job>, reply: mpsc::Sender<Vec<(usize, Result<RouteAnswer, ServeError>)>> },
    Stats { reply: mpsc::Sender<ShardStats> },
}

/// The sharded, concurrent query-serving engine (see the module docs for
/// the shard layout, batching and hot-swap protocols).
///
/// The engine is `Send + Sync`: any number of threads can call
/// [`ShardedEngine::route_batch`] concurrently on one shared engine — the
/// per-shard channels serialize work *per shard* while different shards
/// proceed in parallel. Dropping the engine shuts the workers down and
/// joins them.
pub struct ShardedEngine {
    cell: Arc<EpochCell>,
    senders: Vec<mpsc::Sender<ShardMsg>>,
    handles: Vec<JoinHandle<()>>,
    n: usize,
    config: EngineConfig,
}

// The whole point of the engine: one instance, shared by reference across
// every reader thread. Regressing this bound breaks the serving layer at
// compile time, here, not at a downstream use site.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<ShardedEngine>();

impl ShardedEngine {
    /// Starts an engine serving `(graph, scheme)` as epoch 1 with
    /// `config.shards` resident worker threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotMismatch`] when the scheme was not built for
    /// this graph's vertex count.
    pub fn new(
        graph: Arc<Graph>,
        scheme: Arc<dyn DynScheme>,
        config: EngineConfig,
    ) -> Result<Self, ServeError> {
        let n = graph.n();
        if scheme.n() != n {
            return Err(ServeError::SnapshotMismatch {
                graph_n: n,
                scheme_n: scheme.n(),
                engine_n: n,
            });
        }
        let shards = config.shards.max(1);
        let config = EngineConfig { shards, ..config };
        let cell = Arc::new(EpochCell::new(graph, scheme));
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel();
            let cell = Arc::clone(&cell);
            let handle = std::thread::Builder::new()
                .name(format!("serve-shard-{shard}"))
                .spawn(move || worker(shard, rx, cell, config))
                .map_err(|_| ServeError::WorkerSpawn { shard })?;
            senders.push(tx);
            handles.push(handle);
        }
        Ok(ShardedEngine { cell, senders, handles, n, config })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Number of vertices of the served vertex space.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The currently published snapshot (what the *next* sub-batch will
    /// route under; in-flight sub-batches may still be on the previous
    /// one).
    pub fn snapshot(&self) -> SchemeSnapshot {
        self.cell.load()
    }

    /// The shard that owns queries sourced at `v` (contiguous balanced
    /// partition of the vertex space).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownVertex`] when `v` is outside the vertex space.
    pub fn owner_of(&self, v: VertexId) -> Result<usize, ServeError> {
        if v.index() >= self.n {
            return Err(ServeError::UnknownVertex { vertex: v.index(), n: self.n });
        }
        Ok(v.index() * self.config.shards / self.n)
    }

    /// Publishes a rebuilt `(graph, scheme)` pair as the next epoch and
    /// returns that epoch. Traffic is never stopped: see the module docs.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotMismatch`] when the new snapshot does not
    /// serve this engine's vertex space (the shard partition is keyed on
    /// `n`; growing or shrinking the vertex space takes a new engine).
    pub fn publish(
        &self,
        graph: Arc<Graph>,
        scheme: Arc<dyn DynScheme>,
    ) -> Result<u64, ServeError> {
        if graph.n() != self.n || scheme.n() != self.n {
            return Err(ServeError::SnapshotMismatch {
                graph_n: graph.n(),
                scheme_n: scheme.n(),
                engine_n: self.n,
            });
        }
        Ok(self.cell.publish(graph, scheme))
    }

    /// Routes one query (a batch of one; prefer [`route_batch`] for
    /// throughput).
    ///
    /// [`route_batch`]: ShardedEngine::route_batch
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::route_batch`].
    pub fn route(&self, source: VertexId, dest: VertexId) -> Result<RouteAnswer, ServeError> {
        // route_batch returns exactly one answer per input pair; an empty
        // vector here is impossible, but the hot path answers with an error
        // rather than panicking.
        match self.route_batch(&[(source, dest)]).pop() {
            Some(answer) => answer,
            None => Err(ServeError::ShardUnavailable { shard: 0 }),
        }
    }

    /// Routes a batch of `(source, destination)` queries and returns one
    /// answer per query, **in input order**.
    ///
    /// The batch is partitioned by owner shard; each involved shard routes
    /// its sub-batch under one snapshot. Per-query failures (unknown
    /// vertices, scheme routing errors) are returned in that query's slot
    /// — they never fail the rest of the batch.
    pub fn route_batch(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Vec<Result<RouteAnswer, ServeError>> {
        let mut out: Vec<Option<Result<RouteAnswer, ServeError>>> =
            pairs.iter().map(|_| None).collect();
        // slot -> owning shard, for attributing failures when a shard dies.
        let mut slot_shard = vec![0usize; pairs.len()];
        let mut per_shard: Vec<Vec<Job>> = (0..self.config.shards).map(|_| Vec::new()).collect();
        for (slot, &(source, dest)) in pairs.iter().enumerate() {
            if dest.index() >= self.n {
                out[slot] =
                    Some(Err(ServeError::UnknownVertex { vertex: dest.index(), n: self.n }));
                continue;
            }
            match self.owner_of(source) {
                Ok(shard) => {
                    slot_shard[slot] = shard;
                    per_shard[shard].push(Job { slot, source, dest });
                }
                Err(e) => out[slot] = Some(Err(e)),
            }
        }

        let (reply_tx, reply_rx) = mpsc::channel();
        let mut outstanding = 0usize;
        for (shard, jobs) in per_shard.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            match self.senders[shard].send(ShardMsg::Batch { jobs, reply: reply_tx.clone() }) {
                Ok(()) => outstanding += 1,
                Err(mpsc::SendError(ShardMsg::Batch { jobs, .. })) => {
                    for job in jobs {
                        out[job.slot] = Some(Err(ServeError::ShardUnavailable { shard }));
                    }
                }
                // A send error hands back the message we just constructed,
                // so it is always a Batch; nothing to attribute otherwise.
                Err(mpsc::SendError(ShardMsg::Stats { .. })) => {}
            }
        }
        drop(reply_tx);
        for _ in 0..outstanding {
            let Ok(results) = reply_rx.recv() else {
                break; // a worker died mid-batch; its slots stay unfilled
            };
            for (slot, answer) in results {
                out[slot] = Some(answer);
            }
        }

        out.into_iter()
            .enumerate()
            .map(|(slot, r)| {
                r.unwrap_or(Err(ServeError::ShardUnavailable { shard: slot_shard[slot] }))
            })
            .collect()
    }

    /// A statistics snapshot from every live shard: queries, errors,
    /// batches, busy wall-clock and the per-query latency histogram.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.senders
            .iter()
            .filter_map(|tx| {
                let (reply, rx) = mpsc::channel();
                tx.send(ShardMsg::Stats { reply }).ok()?;
                rx.recv().ok()
            })
            .collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Closing the channels is the shutdown signal; workers exit their
        // recv loop and are joined so no thread outlives the engine.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("n", &self.n)
            .field("shards", &self.config.shards)
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// The shard worker loop: route batches under one snapshot each, answer
/// stats probes, exit when the engine drops the channel.
fn worker(shard: usize, rx: mpsc::Receiver<ShardMsg>, cell: Arc<EpochCell>, config: EngineConfig) {
    let mut stats = ShardStats::new(shard);
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch { mut jobs, reply } => {
                let batch_start = Instant::now();
                // One snapshot per sub-batch: every answer in it carries
                // this epoch, and a concurrent publish only affects later
                // batches.
                let snap = cell.load();
                // Sort by destination so runs of queries towards the same
                // destination share one erased label; slot as tiebreaker
                // keeps the order deterministic.
                jobs.sort_unstable_by_key(|j| (j.dest, j.slot));
                let mut cached: Option<(VertexId, ErasedLabel)> = None;
                let mut results = Vec::with_capacity(jobs.len());
                // Chained timestamps: one clock read per query, every
                // nanosecond of the loop attributed to exactly one query.
                let mut prev = Instant::now();
                for job in &jobs {
                    let answer = route_one(&snap, job, &config, shard, &mut cached);
                    let now = Instant::now();
                    stats.latency.record(now.duration_since(prev).as_nanos() as u64);
                    prev = now;
                    stats.queries += 1;
                    if answer.is_err() {
                        stats.errors += 1;
                    }
                    results.push((job.slot, answer));
                }
                stats.batches += 1;
                stats.busy_ns += batch_start.elapsed().as_nanos() as u64;
                // A dispatcher that gave up waiting is not an error here.
                let _ = reply.send(results);
            }
            ShardMsg::Stats { reply } => {
                let _ = reply.send(stats.clone());
            }
        }
    }
}

/// Routes one job under one snapshot. The lean path reuses the cached
/// erased label when the destination repeats (jobs arrive dest-sorted).
fn route_one(
    snap: &SchemeSnapshot,
    job: &Job,
    config: &EngineConfig,
    shard: usize,
    cached: &mut Option<(VertexId, ErasedLabel)>,
) -> Result<RouteAnswer, ServeError> {
    let g = snap.graph();
    let scheme = snap.scheme();
    let max_hops = config.max_hops.unwrap_or(4 * g.n() + 16);
    if config.record_paths {
        let out = simulate_with_ttl(g, scheme, job.source, job.dest, max_hops)?;
        return Ok(RouteAnswer {
            weight: out.weight,
            hops: out.hops,
            max_header_words: out.max_header_words,
            epoch: snap.epoch(),
            shard,
            path: Some(out.path),
        });
    }
    let label = match cached {
        Some((d, label)) if *d == job.dest => {
            routing_obs::counters::SERVE_LABEL_CACHE_HITS.inc();
            &*label
        }
        slot => {
            routing_obs::counters::SERVE_LABEL_CACHE_MISSES.inc();
            let label = scheme.label_of(job.dest);
            &slot.insert((job.dest, label)).1
        }
    };
    let out = simulate_lean_with_label(g, scheme, job.source, job.dest, label, max_hops)?;
    Ok(RouteAnswer {
        weight: out.weight,
        hops: out.hops,
        max_header_words: out.max_header_words,
        epoch: snap.epoch(),
        shard,
        path: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use compact_routing::registry::SchemeRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use routing_core::BuildContext;
    use routing_graph::generators::{Family, WeightModel};
    use routing_model::simulate;

    fn build(n: usize, key: &str, seed: u64) -> (Arc<Graph>, Arc<dyn DynScheme>) {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Family::ErdosRenyi.generate(n, WeightModel::Uniform { lo: 1, hi: 9 }, &mut rng);
        let registry = SchemeRegistry::with_defaults();
        let ctx = BuildContext { seed, threads: 1, ..BuildContext::default() };
        let scheme = registry.build(key, &g, &ctx).expect("scheme builds");
        (Arc::new(g), Arc::from(scheme))
    }

    #[test]
    fn engine_answers_match_direct_simulation() {
        let (g, scheme) = build(80, "tz2", 11);
        let engine =
            ShardedEngine::new(Arc::clone(&g), Arc::clone(&scheme), EngineConfig::with_shards(3))
                .unwrap();
        for (u, v) in [(0u32, 79u32), (40, 3), (7, 7), (79, 0)] {
            let (u, v) = (VertexId(u), VertexId(v));
            let got = engine.route(u, v).unwrap();
            let want = simulate(&g, scheme.as_ref(), u, v).unwrap();
            assert_eq!(got.weight, want.weight);
            assert_eq!(got.hops, want.hops);
            assert_eq!(got.max_header_words, want.max_header_words);
            assert_eq!(got.epoch, 1);
            assert_eq!(got.shard, engine.owner_of(u).unwrap());
            assert_eq!(got.path, None);
        }
    }

    #[test]
    fn recorded_paths_match_the_full_simulator() {
        let (g, scheme) = build(60, "warmup", 3);
        let config = EngineConfig { shards: 2, record_paths: true, max_hops: None };
        let engine = ShardedEngine::new(Arc::clone(&g), Arc::clone(&scheme), config).unwrap();
        let pairs: Vec<(VertexId, VertexId)> =
            (0..60u32).map(|i| (VertexId(i), VertexId((i * 7 + 1) % 60))).collect();
        for (answer, &(u, v)) in engine.route_batch(&pairs).iter().zip(&pairs) {
            let want = simulate(&g, scheme.as_ref(), u, v).unwrap();
            let got = answer.as_ref().unwrap();
            assert_eq!(got.path.as_ref().unwrap(), &want.path);
            assert_eq!(got.weight, want.weight);
        }
    }

    #[test]
    fn per_query_failures_stay_in_their_slot() {
        let (g, scheme) = build(40, "tz2", 1);
        let engine = ShardedEngine::new(g, scheme, EngineConfig::with_shards(2)).unwrap();
        let batch = [
            (VertexId(0), VertexId(39)),
            (VertexId(99), VertexId(1)), // unknown source
            (VertexId(1), VertexId(99)), // unknown destination
            (VertexId(5), VertexId(6)),
        ];
        let answers = engine.route_batch(&batch);
        assert!(answers[0].is_ok());
        assert_eq!(
            answers[1],
            Err(ServeError::UnknownVertex { vertex: 99, n: 40 })
        );
        assert_eq!(
            answers[2],
            Err(ServeError::UnknownVertex { vertex: 99, n: 40 })
        );
        assert!(answers[3].is_ok());
    }

    #[test]
    fn empty_batches_are_fine() {
        let (g, scheme) = build(40, "tz2", 1);
        let engine = ShardedEngine::new(g, scheme, EngineConfig::default()).unwrap();
        assert!(engine.route_batch(&[]).is_empty());
    }

    #[test]
    fn shard_ownership_is_a_contiguous_balanced_partition() {
        let (g, scheme) = build(40, "tz2", 1);
        let engine = ShardedEngine::new(g, scheme, EngineConfig::with_shards(4)).unwrap();
        let owners: Vec<usize> =
            (0..40u32).map(|v| engine.owner_of(VertexId(v)).unwrap()).collect();
        // Monotone, covers every shard, each shard owns n/S vertices.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        for s in 0..4 {
            assert_eq!(owners.iter().filter(|&&o| o == s).count(), 10, "shard {s}");
        }
        assert!(engine.owner_of(VertexId(40)).is_err());
    }

    #[test]
    fn stats_account_for_every_routed_query() {
        let (g, scheme) = build(40, "tz2", 1);
        let engine = ShardedEngine::new(g, scheme, EngineConfig::with_shards(2)).unwrap();
        let pairs: Vec<(VertexId, VertexId)> =
            (0..40u32).map(|i| (VertexId(i), VertexId((i + 1) % 40))).collect();
        for _ in 0..3 {
            let answers = engine.route_batch(&pairs);
            assert!(answers.iter().all(Result::is_ok));
        }
        let stats = engine.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.queries).sum::<u64>(), 120);
        assert_eq!(stats.iter().map(|s| s.errors).sum::<u64>(), 0);
        assert_eq!(stats.iter().map(|s| s.batches).sum::<u64>(), 6);
        for s in &stats {
            assert_eq!(s.latency.count(), s.queries, "histogram covers every query");
        }
    }

    #[test]
    fn publish_swaps_the_epoch_for_later_batches() {
        let (g, scheme) = build(40, "tz2", 1);
        let engine =
            ShardedEngine::new(Arc::clone(&g), scheme, EngineConfig::with_shards(2)).unwrap();
        assert_eq!(engine.route(VertexId(0), VertexId(39)).unwrap().epoch, 1);

        let (_, scheme2) = build(40, "warmup", 2);
        let epoch = engine.publish(Arc::clone(&g), scheme2).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(engine.epoch(), 2);
        assert_eq!(engine.route(VertexId(0), VertexId(39)).unwrap().epoch, 2);
        assert_eq!(engine.snapshot().scheme().name(), "warmup");
    }

    #[test]
    fn mismatched_snapshots_are_rejected() {
        let (g, scheme) = build(40, "tz2", 1);
        let (g60, scheme60) = build(60, "tz2", 1);
        let err = ShardedEngine::new(Arc::clone(&g60), Arc::clone(&scheme), EngineConfig::default())
            .unwrap_err();
        assert!(matches!(err, ServeError::SnapshotMismatch { .. }));

        let engine = ShardedEngine::new(g, scheme, EngineConfig::default()).unwrap();
        let err = engine.publish(g60, scheme60).unwrap_err();
        assert_eq!(
            err,
            ServeError::SnapshotMismatch { graph_n: 60, scheme_n: 60, engine_n: 40 }
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::UnknownVertex { vertex: 9, n: 4 };
        assert!(e.to_string().contains("vertex 9"));
        let e = ServeError::ShardUnavailable { shard: 2 };
        assert!(e.to_string().contains("shard 2"));
        let e = ServeError::SnapshotMismatch { graph_n: 1, scheme_n: 2, engine_n: 3 };
        assert!(e.to_string().contains("snapshot mismatch"));
        let e: ServeError = RouteError::HopBudgetExceeded { budget: 7 }.into();
        assert!(e.to_string().contains("routing failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
