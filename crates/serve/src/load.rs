//! A seeded, Zipf-skewed query load generator.
//!
//! Real routing traffic is not uniform: a few vertices (popular services,
//! gateways) originate and receive a super-proportional share of queries.
//! The [`ZipfWorkload`] models that with a Zipf(`s`) distribution over a
//! seeded random *rank permutation* of the vertex space — which vertex is
//! "hot" is itself part of the seed, so two generators with the same
//! `(n, s, seed)` produce byte-identical query streams while different
//! seeds skew different vertices. Sources and destinations are independent
//! draws from the same skewed distribution (redrawn until distinct —
//! self-queries tell nothing about routing); skewed destinations are what
//! the engine's per-batch label cache exploits, since a batch sorted by
//! destination then contains long runs towards the hot vertices.
//!
//! Sampling is a binary search over the cumulative weight table: `O(log n)`
//! per query, no floating-point accumulation at sample time, fully
//! deterministic given the seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use routing_graph::VertexId;

/// A deterministic stream of `(source, destination)` query pairs with
/// Zipf-skewed sources.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// `rank_to_vertex[r]` = the vertex holding popularity rank `r`
    /// (rank 0 is the hottest).
    rank_to_vertex: Vec<u32>,
    /// `cumulative[r]` = sum of `1/(k+1)^s` for `k <= r`, pre-normalized.
    cumulative: Vec<f64>,
    rng: StdRng,
    n: usize,
}

impl ZipfWorkload {
    /// A workload over `n` vertices with Zipf exponent `s` for both
    /// endpoints (use `0.0` for uniform, `~0.99` for web-like skew), fully
    /// determined by `seed`.
    ///
    /// # Panics
    ///
    /// When `n < 2` (a query needs two distinct vertices) or `s` is not
    /// finite.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n >= 2, "a workload needs at least two vertices, got {n}");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0, got {s}");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rank_to_vertex: Vec<u32> = (0..n as u32).collect();
        rank_to_vertex.shuffle(&mut rng);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard the binary search against the last entry rounding below 1.
        *cumulative.last_mut().expect("n >= 2") = 1.0;
        ZipfWorkload { rank_to_vertex, cumulative, rng, n }
    }

    /// Number of vertices the workload draws from.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The vertex holding popularity rank `r` (rank 0 is hottest). Exposed
    /// so tests and benches can check which sources carry the skew.
    pub fn vertex_at_rank(&self, r: usize) -> VertexId {
        VertexId(self.rank_to_vertex[r])
    }

    /// Draws the next query pair: a Zipf-ranked source and an
    /// independently Zipf-ranked destination, redrawn until distinct.
    pub fn next_pair(&mut self) -> (VertexId, VertexId) {
        let source = self.draw();
        loop {
            let dest = self.draw();
            if dest != source {
                return (VertexId(source), VertexId(dest));
            }
        }
    }

    /// One Zipf draw: invert the cumulative table by binary search.
    fn draw(&mut self) -> u32 {
        let u = self.rng.gen_range(0.0..1.0f64);
        let rank = self.cumulative.partition_point(|&c| c < u).min(self.n - 1);
        self.rank_to_vertex[rank]
    }

    /// Draws a batch of `len` pairs (exactly `len` calls to
    /// [`ZipfWorkload::next_pair`], in order).
    pub fn next_batch(&mut self, len: usize) -> Vec<(VertexId, VertexId)> {
        (0..len).map(|_| self.next_pair()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ZipfWorkload::new(500, 0.99, 42);
        let mut b = ZipfWorkload::new(500, 0.99, 42);
        assert_eq!(a.next_batch(2000), b.next_batch(2000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ZipfWorkload::new(500, 0.99, 42);
        let mut b = ZipfWorkload::new(500, 0.99, 43);
        assert_ne!(a.next_batch(2000), b.next_batch(2000));
        // And the hot vertex itself moves with the seed (the rank
        // permutation is seeded, not fixed).
        let hot: Vec<VertexId> = (42..52)
            .map(|seed| ZipfWorkload::new(500, 0.99, seed).vertex_at_rank(0))
            .collect();
        assert!(hot.iter().any(|&v| v != hot[0]), "hot vertex never moved across 10 seeds");
    }

    #[test]
    fn pairs_are_in_range_and_distinct() {
        let mut w = ZipfWorkload::new(100, 1.1, 7);
        for _ in 0..5000 {
            let (s, d) = w.next_pair();
            assert!(s.index() < 100 && d.index() < 100);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn top_sources_carry_a_super_proportional_share() {
        let n = 1000;
        let mut w = ZipfWorkload::new(n, 0.99, 11);
        let mut counts: HashMap<VertexId, u64> = HashMap::new();
        let draws = 50_000u64;
        for _ in 0..draws {
            let (s, _) = w.next_pair();
            *counts.entry(s).or_default() += 1;
        }
        // The top 1% of vertices by rank should carry far more than 1% of
        // the load — for Zipf(0.99) over n=1000 the first 10 ranks carry
        // ~39% of the mass.
        let top: u64 =
            (0..n / 100).map(|r| counts.get(&w.vertex_at_rank(r)).copied().unwrap_or(0)).sum();
        let share = top as f64 / draws as f64;
        assert!(share > 0.25, "top 1% of sources carry {share:.3} of the load, expected > 0.25");
    }

    #[test]
    fn destinations_are_skewed_too() {
        // Destination skew is what makes the engine's per-batch label cache
        // pay off: a dest-sorted batch must contain repeated destinations.
        let n = 1000;
        let mut w = ZipfWorkload::new(n, 0.99, 5);
        let batch = w.next_batch(512);
        let mut dests: Vec<VertexId> = batch.iter().map(|&(_, d)| d).collect();
        dests.sort_unstable();
        dests.dedup();
        assert!(
            dests.len() < 400,
            "512 Zipf destinations over n=1000 hit {} distinct vertices — no reuse",
            dests.len()
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let n = 50;
        let mut w = ZipfWorkload::new(n, 0.0, 3);
        let mut counts = vec![0u64; n];
        let draws = 50_000;
        for _ in 0..draws {
            counts[w.next_pair().0.index()] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.6 && (c as f64) < expected * 1.4,
                "vertex {v} drawn {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn tiny_vertex_spaces_are_rejected() {
        let _ = ZipfWorkload::new(1, 1.0, 0);
    }
}
