//! A sharded, concurrent query-serving engine over immutable scheme
//! snapshots, with epoch-based hot swap — the "many routers, one control
//! plane" deployment story for the compact routing schemes this workspace
//! builds.
//!
//! The paper's schemes are *preprocessing* artifacts: once built, routing
//! is a pure read-only function of `(table, header, label)`. This crate
//! turns that observation into a serving architecture:
//!
//! - [`SchemeSnapshot`] — an immutable `(graph, scheme)` pair behind
//!   `Arc`s, tagged with a publication epoch. `DynScheme` is `Send + Sync`
//!   by contract, so snapshots are shared freely across threads.
//! - [`EpochCell`] — the single mutable point: publishing a rebuilt scheme
//!   is one pointer swap under a lock held for nanoseconds; readers keep
//!   routing the snapshot they loaded (its `Arc`s keep it alive) and pick
//!   up the new epoch at their next batch.
//! - [`ShardedEngine`] — N resident worker threads, each owning a
//!   contiguous slice of the vertex space and answering the queries
//!   sourced there. Batches are partitioned per shard, routed under one
//!   snapshot each, sorted by destination so repeated destinations share
//!   one erased label, and answered through the allocation-free
//!   [`routing_model::simulate_lean_with_label`] path.
//! - [`ZipfWorkload`] — a seeded, byte-reproducible Zipf-skewed load
//!   generator for stress tests and benches.
//! - [`LatencyHistogram`] — HDR-style log-linear histogram backing the
//!   per-shard p50/p99/p999 latency accounting in [`ShardStats`]
//!   (re-exported from `routing-obs`, the workspace telemetry crate, which
//!   also hosts the serving-path counters this crate increments:
//!   label-cache hits, epoch swaps, snapshot loads).
//!
//! Every [`RouteAnswer`] carries the epoch of the snapshot that produced
//! it and is bit-identical to direct single-threaded simulation under that
//! snapshot — the property the crate's equivalence proptests and the
//! epoch-swap stress test (`tests/`) pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod latency;
pub mod load;
pub mod snapshot;

pub use engine::{EngineConfig, RouteAnswer, ServeError, ShardStats, ShardedEngine};
pub use latency::LatencyHistogram;
pub use load::ZipfWorkload;
pub use snapshot::{EpochCell, SchemeSnapshot};
